//! # spinstreams-serve
//!
//! The multi-tenant serving layer: one long-lived [`StreamService`] hosts
//! many topologies on ONE shared pool executor, the way a production
//! deployment would serve "heavy traffic from millions of users" instead
//! of spinning a private engine per pipeline.
//!
//! Three pieces make repeat submissions cheap and co-tenancy safe:
//!
//! * **Plan cache** ([`PlanCache`]) — every submission is keyed by a
//!   canonical FNV checksum of its topology structure + annotations +
//!   optimizer settings ([`spinstreams_codegen::plan_cache_key`]). A hit
//!   skips profiling, Algorithms 1–3 and plan construction entirely and
//!   reuses the cached optimized plan; byte equality of the cached
//!   canonical plan text is the identity guarantee.
//! * **Shared-pool multiplexing** — admitted tenants deploy together via
//!   [`spinstreams_runtime::run_tenants`]: one worker pool, tenant-tagged
//!   tasks, weighted-fair (deficit-round-robin) ready-queue scheduling,
//!   and per-tenant reports/telemetry/dead-letters.
//! * **Model-driven admission** — at submission the service runs
//!   Algorithm 1 on the optimized candidate and compares its core demand
//!   (`Σ ρ·replicas`, [`spinstreams_analysis::plan_demand_cores`]) against
//!   the pool's free capacity: admit, queue behind running tenants, or
//!   reject with the predicted core deficit
//!   ([`spinstreams_analysis::AdmissionVerdict`]).
//!
//! ```
//! use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
//! use spinstreams_runtime::{EngineConfig, ExecutorKind};
//! use spinstreams_serve::{ServeConfig, StreamService, SubmitRequest, TenantState};
//!
//! fn pipeline() -> Topology {
//!     let mut b = Topology::builder();
//!     let src = b.add_operator(
//!         OperatorSpec::source("src", ServiceTime::from_millis(0.1)).with_kind("source"),
//!     );
//!     let work = b.add_operator(
//!         OperatorSpec::stateless("work", ServiceTime::from_millis(0.05))
//!             .with_kind("identity-map"),
//!     );
//!     b.add_edge(src, work, 1.0).unwrap();
//!     b.build().unwrap()
//! }
//!
//! let mut engine = EngineConfig::default();
//! engine.executor = ExecutorKind::Pool { workers: 2 };
//! let mut cfg = ServeConfig::new(engine);
//! cfg.calibration_items = 0; // trust the annotations in this example
//!
//! let mut svc = StreamService::new(cfg);
//! let cold = svc
//!     .submit(SubmitRequest::new("alpha", pipeline()).with_items(200))
//!     .unwrap();
//! assert_eq!(cold.state, TenantState::Admitted);
//! let runs = svc.launch().unwrap();
//! assert_eq!(runs.len(), 1);
//! // Same topology again: the optimizer is skipped, the plan is identical.
//! let warm = svc
//!     .submit(SubmitRequest::new("beta", pipeline()).with_items(200))
//!     .unwrap();
//! assert!(warm.cache_hit);
//! assert_eq!(warm.plan_checksum, cold.plan_checksum);
//! ```

#![warn(missing_docs)]

mod cache;
mod service;

pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use service::{
    ServeConfig, ServeError, StreamService, SubmitReceipt, SubmitRequest, TenantState, TenantStatus,
};
