//! The checksum-keyed plan cache.

use spinstreams_analysis::SteadyStateReport;
use spinstreams_codegen::FusionGroup;
use spinstreams_core::{KeyDistribution, Topology};
use std::collections::HashMap;

/// One fully optimized plan, ready to redeploy without re-profiling or
/// re-running Algorithms 1–3.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The cache key ([`spinstreams_codegen::plan_cache_key`] of the
    /// submitted topology + settings).
    pub key: u64,
    /// The topology with profiled annotations folded in (identical to the
    /// submission when calibration is disabled).
    pub calibrated: Topology,
    /// Source key distribution used at deployment, if any.
    pub source_keys: Option<KeyDistribution>,
    /// Algorithm 2 replication degrees per operator.
    pub replicas: Vec<usize>,
    /// Algorithm 3 fusion groups.
    pub fusions: Vec<FusionGroup>,
    /// Canonical plan text ([`spinstreams_codegen::serialize_plan`]); byte
    /// equality of this string is the "identical plan" oracle.
    pub plan_text: String,
    /// FNV checksum of `plan_text`.
    pub plan_checksum: u64,
    /// Algorithm 1 report of the optimized plan — the admission model's
    /// input.
    pub predicted: SteadyStateReport,
    /// Times this entry was served from cache.
    pub hits: u64,
}

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to run the optimizer.
    pub misses: u64,
    /// Entries replaced in place (plan migrations).
    pub updates: u64,
    /// Entries evicted.
    pub evictions: u64,
}

/// Checksum-keyed store of optimized plans.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: HashMap<u64, CachedPlan>,
    hits: u64,
    misses: u64,
    updates: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&mut self, key: u64) -> Option<&CachedPlan> {
        match self.entries.get_mut(&key) {
            Some(p) => {
                p.hits += 1;
                self.hits += 1;
                Some(p)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Reads `key` without touching the hit/miss counters.
    pub fn peek(&self, key: u64) -> Option<&CachedPlan> {
        self.entries.get(&key)
    }

    /// Inserts a freshly optimized plan.
    pub fn insert(&mut self, plan: CachedPlan) {
        self.entries.insert(plan.key, plan);
    }

    /// Replaces the entry under `plan.key` in place (the migration hook),
    /// counting an update. Inserts if absent.
    pub fn update(&mut self, plan: CachedPlan) {
        self.updates += 1;
        self.entries.insert(plan.key, plan);
    }

    /// Evicts `key`. Returns whether an entry was removed.
    pub fn evict(&mut self, key: u64) -> bool {
        let removed = self.entries.remove(&key).is_some();
        if removed {
            self.evictions += 1;
        }
        removed
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            hits: self.hits,
            misses: self.misses,
            updates: self.updates,
            evictions: self.evictions,
        }
    }
}
