//! Canonical plan serialization and checksums for the plan cache.
//!
//! The serving layer caches optimized plans keyed by a checksum of
//! everything that influences optimization: the topology *structure*
//! (operators, edges), its *annotations* (service times, selectivities,
//! state classes, key distributions, kinds, factory params), and the
//! *settings* the optimizer ran under. Two submissions with the same
//! checksum get the same plan without re-profiling or re-running
//! Algorithms 1–3.
//!
//! Both serializers produce a deterministic line-oriented text form:
//! operators and edges in id order, params in [`BTreeMap`] order, floats in
//! Rust's shortest round-trip notation. Byte equality of
//! [`serialize_plan`] outputs is the test oracle for "the cache returned
//! the identical plan".
//!
//! [`BTreeMap`]: std::collections::BTreeMap

use crate::build::{CodegenOptions, FusionGroup, FusionStrategy};
use spinstreams_core::{StateClass, Topology};
use std::fmt::Write as _;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a checksum of a byte string.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical text form of a topology: structure plus every annotation the
/// optimizer reads.
pub fn serialize_topology(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "topology v1 ops={}", topo.num_operators());
    for (i, op) in topo.operators().iter().enumerate() {
        let _ = write!(
            out,
            "op {i} name={} svc_s={} sel_in={} sel_out={} kind={} state=",
            op.name,
            op.service_time.as_secs(),
            op.selectivity.input,
            op.selectivity.output,
            op.kind,
        );
        match &op.state {
            StateClass::Stateless => {
                let _ = write!(out, "stateless");
            }
            StateClass::PartitionedStateful { keys } => {
                let _ = write!(out, "partitioned[");
                for (k, f) in keys.frequencies().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{f}");
                }
                let _ = write!(out, "]");
            }
            StateClass::Stateful => {
                let _ = write!(out, "stateful");
            }
        }
        for (k, v) in &op.params {
            let _ = write!(out, " p:{k}={v}");
        }
        out.push('\n');
    }
    for e in topo.edges() {
        let _ = writeln!(
            out,
            "edge {}->{} p={}",
            e.from.index(),
            e.to.index(),
            e.probability
        );
    }
    out
}

/// Canonical text form of one *optimized* plan: the topology plus the
/// replica vector, fusion groups, and codegen settings that produced it.
///
/// Deterministic byte-for-byte: same inputs, same string. The serving
/// layer's cache tests compare these strings for identity.
pub fn serialize_plan(
    topo: &Topology,
    replicas: &[usize],
    fusions: &[FusionGroup],
    opts: &CodegenOptions,
) -> String {
    let mut out = serialize_topology(topo);
    let _ = write!(out, "replicas=[");
    for (i, r) in replicas.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{r}");
    }
    let _ = writeln!(out, "]");
    // Fusion groups in a canonical order: by front, then member set.
    let mut groups: Vec<&FusionGroup> = fusions.iter().collect();
    groups.sort_by(|a, b| {
        a.front
            .index()
            .cmp(&b.front.index())
            .then_with(|| a.members.cmp(&b.members))
    });
    for g in groups {
        let _ = write!(out, "fuse front={} members=[", g.front.index());
        for (i, m) in g.members.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", m.index());
        }
        let _ = writeln!(out, "]");
    }
    let strategy = match opts.fusion {
        FusionStrategy::Monomorphize => "monomorphize",
        FusionStrategy::Interpret => "interpret",
    };
    let _ = write!(
        out,
        "opts items={} seed={} fusion={strategy} provision=[",
        opts.items, opts.seed
    );
    for (i, p) in opts.provision.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{p}");
    }
    let _ = writeln!(out, "]");
    out
}

/// Cache key for a submission: checksum of the canonical topology text
/// combined with the optimizer settings text.
pub fn plan_cache_key(topo: &Topology, opts: &CodegenOptions) -> u64 {
    let mut text = serialize_topology(topo);
    let strategy = match opts.fusion {
        FusionStrategy::Monomorphize => "monomorphize",
        FusionStrategy::Interpret => "interpret",
    };
    let _ = write!(
        text,
        "settings items={} seed={} fusion={strategy}",
        opts.items, opts.seed
    );
    checksum(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{KeyDistribution, OperatorSpec, Selectivity, ServiceTime};
    use std::collections::BTreeSet;

    fn sample_topology(work_ms: f64) -> Topology {
        let mut b = Topology::builder();
        let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(0.5)));
        let filt = b.add_operator(
            OperatorSpec::stateless("filter", ServiceTime::from_millis(work_ms))
                .with_selectivity(Selectivity::output(0.75))
                .with_kind("filter")
                .with_param("threshold", 0.25),
        );
        let agg = b.add_operator(OperatorSpec::partitioned(
            "agg",
            ServiceTime::from_millis(1.0),
            KeyDistribution::uniform(4),
        ));
        b.add_edge(src, filt, 1.0).unwrap();
        b.add_edge(filt, agg, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fnv_vectors() {
        assert_eq!(checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(checksum(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(checksum(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn serialization_is_deterministic() {
        let t = sample_topology(2.0);
        let opts = CodegenOptions::default();
        let groups = vec![FusionGroup {
            members: BTreeSet::from([t.operator_by_name("filter").unwrap()]),
            front: t.operator_by_name("filter").unwrap(),
        }];
        let a = serialize_plan(&t, &[1, 2, 4], &groups, &opts);
        let b = serialize_plan(&sample_topology(2.0), &[1, 2, 4], &groups, &opts);
        assert_eq!(a, b);
        assert_eq!(
            plan_cache_key(&t, &opts),
            plan_cache_key(&sample_topology(2.0), &opts)
        );
    }

    #[test]
    fn annotation_changes_change_the_key() {
        let opts = CodegenOptions::default();
        let base = plan_cache_key(&sample_topology(2.0), &opts);
        assert_ne!(base, plan_cache_key(&sample_topology(2.5), &opts));
        let mut other = opts.clone();
        other.seed ^= 1;
        assert_ne!(base, plan_cache_key(&sample_topology(2.0), &other));
    }

    #[test]
    fn replica_and_fusion_changes_change_the_plan_text() {
        let t = sample_topology(2.0);
        let opts = CodegenOptions::default();
        let a = serialize_plan(&t, &[1, 2, 4], &[], &opts);
        let b = serialize_plan(&t, &[1, 3, 4], &[], &opts);
        assert_ne!(a, b);
        let g = FusionGroup {
            members: BTreeSet::from([t.operator_by_name("filter").unwrap()]),
            front: t.operator_by_name("filter").unwrap(),
        };
        let c = serialize_plan(&t, &[1, 2, 4], &[g], &opts);
        assert_ne!(a, c);
    }
}
