//! Deployment construction: topology → actor graph.

use spinstreams_analysis::key_partitioning;
use spinstreams_core::{KeyDistribution, OperatorId, StateClass, Topology};
use spinstreams_operators::{
    build_kernel, build_operator, OperatorKind, OperatorParams, StatelessKernel,
};
use spinstreams_runtime::operators::PassThrough;
use spinstreams_runtime::{
    ActorGraph, ActorId, Behavior, FusedChain, MetaDest, MetaOperator, MetaRoute, Route,
    SourceConfig, StreamOperator,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A sub-graph to deploy as one fused meta-operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionGroup {
    /// The member operators (must not include the source).
    pub members: BTreeSet<OperatorId>,
    /// The unique front-end member.
    pub front: OperatorId,
}

/// How fusion groups are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionStrategy {
    /// Compile eligible groups (stateless known kinds forming a linear
    /// all-unicast chain with one external output) to a statically
    /// dispatched [`FusedChain`]; everything else falls back to the
    /// interpreted [`MetaOperator`]. The default.
    #[default]
    Monomorphize,
    /// Run every group through the interpreted [`MetaOperator`]
    /// (differential-testing and debugging knob).
    Interpret,
}

/// Options for the generated deployment.
#[derive(Debug, Clone)]
pub struct CodegenOptions {
    /// Number of items the source generates.
    pub items: u64,
    /// RNG seed for the source's keys/values (and the meta-operators'
    /// internal routing).
    pub seed: u64,
    /// Execution strategy for fusion groups.
    pub fusion: FusionStrategy,
    /// Pre-provisioned replica *slots* per operator (empty = exactly the
    /// active degrees). A slot count above the active degree deploys spare
    /// replica actors up front — wired for EOS and checkpoint markers via a
    /// never-emitting emitter port, but receiving no data — so an adaptive
    /// re-scale is a pure route swap with no graph surgery (the Flink
    /// max-parallelism trick). Entries below the active degree are raised
    /// to it; the source cannot be provisioned.
    pub provision: Vec<usize>,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            items: 10_000,
            seed: 0xFEED,
            fusion: FusionStrategy::Monomorphize,
            provision: Vec::new(),
        }
    }
}

/// Why code generation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodegenError {
    /// `replicas` does not have one entry per operator, or an entry is 0.
    BadReplicaVector {
        /// Description of the problem.
        reason: String,
    },
    /// An operator's `kind` tag is empty or unknown to the registry.
    UnknownKind {
        /// The operator.
        operator: OperatorId,
        /// The offending tag.
        kind: String,
    },
    /// A fusion group is structurally invalid (overlap, contains the
    /// source, front not a member, or an external edge enters a non-front
    /// member).
    BadFusionGroup {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::BadReplicaVector { reason } => {
                write!(f, "bad replica vector: {reason}")
            }
            CodegenError::UnknownKind { operator, kind } => {
                write!(f, "operator {operator} has unknown kind {kind:?}")
            }
            CodegenError::BadFusionGroup { reason } => write!(f, "bad fusion group: {reason}"),
        }
    }
}

impl std::error::Error for CodegenError {}

/// The generated deployment.
#[derive(Debug)]
pub struct GeneratedPlan {
    /// The executable actor graph.
    pub graph: ActorGraph,
    /// For each original operator, the actor whose `items_out` measures the
    /// operator's logical *departure rate*: the worker itself, the
    /// collector of a replicated operator, or the meta actor of its fusion
    /// group.
    pub departure_actor: Vec<ActorId>,
    /// For each original operator, the actor receiving its logical input
    /// stream (worker, emitter, or meta actor).
    pub input_actor: Vec<ActorId>,
    /// Every replica slot (active then spare, in slot order) of each
    /// operator deployed behind an emitter/collector pair; empty for plain
    /// and fused operators.
    pub replica_slots: Vec<Vec<ActorId>>,
    /// The emitter in front of each replicated operator, if any — the actor
    /// reconfiguration ops are posted to.
    pub emitter_actor: Vec<Option<ActorId>>,
    /// The collector behind each replicated operator, if any.
    pub collector_actor: Vec<Option<ActorId>>,
    /// The *active* replication degree each operator was built with.
    pub active_replicas: Vec<usize>,
    /// Total number of actors (including emitters/collectors and spare
    /// slots).
    pub num_actors: usize,
}

fn kind_of(
    topo: &Topology,
    id: OperatorId,
) -> Result<(OperatorKind, OperatorParams), CodegenError> {
    let spec = topo.operator(id);
    let kind: OperatorKind = spec.kind.parse().map_err(|_| CodegenError::UnknownKind {
        operator: id,
        kind: spec.kind.clone(),
    })?;
    Ok((kind, OperatorParams::from_spec_params(&spec.params)))
}

fn instantiate(topo: &Topology, id: OperatorId) -> Result<Box<dyn StreamOperator>, CodegenError> {
    let (kind, params) = kind_of(topo, id)?;
    Ok(build_operator(kind, &params))
}

/// Compiles a fusion group to a monomorphized [`FusedChain`] when it is
/// eligible: the internal routes walk a linear, all-[`MetaRoute::Unicast`]
/// chain from the front that covers every member exactly once and ends on
/// a single external output, and every member kind has a static kernel
/// (stateless, known to the registry). Returns `None` — fall back to the
/// interpreted [`MetaOperator`] — otherwise.
///
/// Eligible groups draw no internal-routing randomness and visit items in
/// stage-sequential order under both executors, so the chain's output is
/// byte-identical to the meta-operator it replaces.
fn maybe_monomorphize(
    name: &str,
    kinds: &[(OperatorKind, OperatorParams)],
    routes: &[Vec<MetaRoute>],
    front: usize,
) -> Option<FusedChain<StatelessKernel>> {
    let n = kinds.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut cur = front;
    let out_port = loop {
        if visited[cur] {
            return None; // cycle (impossible for valid groups, but cheap to guard)
        }
        visited[cur] = true;
        order.push(cur);
        let [route] = routes[cur].as_slice() else {
            return None; // fan-out, or a dead-end member that drops items
        };
        match route {
            MetaRoute::Unicast(MetaDest::Member(j)) => cur = *j,
            MetaRoute::Unicast(MetaDest::Output(p)) => break *p,
            MetaRoute::Probabilistic { .. } => return None,
        }
    };
    if order.len() != n {
        return None; // members off the front's path
    }
    let kernels: Vec<StatelessKernel> = order
        .iter()
        .map(|&i| build_kernel(kinds[i].0, &kinds[i].1))
        .collect::<Option<_>>()?;
    Some(FusedChain::new(name, kernels, out_port))
}

/// Builds the executable actor graph for `topo`.
///
/// * `source_keys` — key distribution for the source's generated stream;
/// * `replicas` — replication degree per operator (`&[]` = all ones);
/// * `fusions` — disjoint fusion groups to deploy as meta-operators.
///
/// # Errors
///
/// See [`CodegenError`].
pub fn build_actor_graph(
    topo: &Topology,
    source_keys: Option<KeyDistribution>,
    replicas: &[usize],
    fusions: &[FusionGroup],
    opts: &CodegenOptions,
) -> Result<GeneratedPlan, CodegenError> {
    let n = topo.num_operators();
    let ones = vec![1usize; n];
    let replicas: &[usize] = if replicas.is_empty() { &ones } else { replicas };
    if replicas.len() != n {
        return Err(CodegenError::BadReplicaVector {
            reason: format!("{} entries for {} operators", replicas.len(), n),
        });
    }
    if let Some(zero) = replicas.iter().position(|r| *r == 0) {
        return Err(CodegenError::BadReplicaVector {
            reason: format!("operator {zero} has replication degree 0"),
        });
    }
    if replicas[topo.source().0] != 1 {
        return Err(CodegenError::BadReplicaVector {
            reason: "the source cannot be replicated".into(),
        });
    }
    if !opts.provision.is_empty() {
        if opts.provision.len() != n {
            return Err(CodegenError::BadReplicaVector {
                reason: format!(
                    "{} provision entries for {} operators",
                    opts.provision.len(),
                    n
                ),
            });
        }
        if opts.provision[topo.source().0] > 1 {
            return Err(CodegenError::BadReplicaVector {
                reason: "the source cannot be provisioned with spare slots".into(),
            });
        }
    }
    // Slots per operator: the active degree, plus any provisioned spares.
    let slots_of = |i: usize| opts.provision.get(i).copied().unwrap_or(0).max(replicas[i]);

    // Validate fusion groups.
    let mut group_of: BTreeMap<OperatorId, usize> = BTreeMap::new();
    for (gi, g) in fusions.iter().enumerate() {
        if !g.members.contains(&g.front) {
            return Err(CodegenError::BadFusionGroup {
                reason: format!("front {} is not a member", g.front),
            });
        }
        if g.members.contains(&topo.source()) {
            return Err(CodegenError::BadFusionGroup {
                reason: "fusion group contains the source".into(),
            });
        }
        for m in &g.members {
            if m.0 >= n {
                return Err(CodegenError::BadFusionGroup {
                    reason: format!("unknown member {m}"),
                });
            }
            if slots_of(m.0) != 1 {
                return Err(CodegenError::BadFusionGroup {
                    reason: format!(
                        "member {m} is replicated or provisioned; meta-operators cannot be fissioned"
                    ),
                });
            }
            if group_of.insert(*m, gi).is_some() {
                return Err(CodegenError::BadFusionGroup {
                    reason: format!("operator {m} belongs to two fusion groups"),
                });
            }
            // External edges may only enter through the front.
            if *m != g.front {
                for &e in topo.in_edges(*m) {
                    if !g.members.contains(&topo.edge(e).from) {
                        return Err(CodegenError::BadFusionGroup {
                            reason: format!("external edge enters non-front member {m}"),
                        });
                    }
                }
            }
        }
    }

    let mut graph = ActorGraph::new();
    let mut input_actor = vec![ActorId(usize::MAX); n];
    let mut departure_actor = vec![ActorId(usize::MAX); n];
    // Per original operator: the actor that performs its *output routing*
    // (route configured later, once all input actors exist), or, for fused
    // members, deferred to the meta actor's external ports.
    let mut routing_actor = vec![None::<ActorId>; n];
    // Replica actors of replicated ops (to wire replica -> collector).
    let mut replica_actors: Vec<Vec<ActorId>> = vec![Vec::new(); n];
    let mut collector_actor = vec![None::<ActorId>; n];
    let mut emitter_actor = vec![None::<ActorId>; n];
    // Meta actor per fusion group + its external edge->port map.
    let mut meta_actor: Vec<Option<ActorId>> = vec![None; fusions.len()];
    let mut meta_external: Vec<Vec<(OperatorId, OperatorId, f64, usize)>> =
        vec![Vec::new(); fusions.len()];

    // --- Create actors -----------------------------------------------------
    for id in topo.operator_ids() {
        let spec = topo.operator(id);
        if id == topo.source() {
            // The source ingests at µ but *emits* at µ scaled by its own
            // selectivity rate factor (§3.4 applies selectivity to
            // departures); the runtime source only models the emission side.
            let emit_rate = spec.service_rate().items_per_sec() * spec.selectivity.rate_factor();
            let mut cfg = SourceConfig::new(emit_rate, opts.items).with_seed(opts.seed);
            if let Some(keys) = &source_keys {
                cfg = cfg.with_keys(keys.clone());
            }
            let a = graph.add_actor(spec.name.clone(), Behavior::Source(cfg));
            input_actor[id.0] = a;
            departure_actor[id.0] = a;
            routing_actor[id.0] = Some(a);
            continue;
        }
        if let Some(&gi) = group_of.get(&id) {
            // Member of a fusion group: the group's meta actor is created
            // when its front is visited (BTreeSet order is stable).
            if fusions[gi].front == id {
                let g = &fusions[gi];
                let members: Vec<OperatorId> = g.members.iter().cloned().collect();
                let index_of = |m: OperatorId| members.iter().position(|x| *x == m).unwrap();
                // External edges get sequential meta output ports.
                let mut externals: Vec<(OperatorId, OperatorId, f64, usize)> = Vec::new();
                for e in topo.edges() {
                    if g.members.contains(&e.from) && !g.members.contains(&e.to) {
                        let port = externals.len();
                        externals.push((e.from, e.to, e.probability, port));
                    }
                }
                // Internal routing tables (member port 0 only — all library
                // operators emit on the default port).
                let mut routes: Vec<Vec<MetaRoute>> = Vec::with_capacity(members.len());
                let mut kinds: Vec<(OperatorKind, OperatorParams)> =
                    Vec::with_capacity(members.len());
                for &m in &members {
                    kinds.push(kind_of(topo, m)?);
                    let mut choices: Vec<(MetaDest, f64)> = Vec::new();
                    for &eid in topo.out_edges(m) {
                        let e = topo.edge(eid);
                        let dest = if g.members.contains(&e.to) {
                            MetaDest::Member(index_of(e.to))
                        } else {
                            let port = externals
                                .iter()
                                .find(|(f2, t2, _, _)| *f2 == m && *t2 == e.to)
                                .map(|(_, _, _, p)| *p)
                                .expect("external edge registered");
                            MetaDest::Output(port)
                        };
                        choices.push((dest, e.probability));
                    }
                    let table = match choices.len() {
                        0 => vec![],
                        1 => vec![MetaRoute::Unicast(choices[0].0)],
                        _ => vec![MetaRoute::Probabilistic { choices }],
                    };
                    routes.push(table);
                }
                let fused_names: Vec<&str> = members
                    .iter()
                    .map(|m| topo.operator(*m).name.as_str())
                    .collect();
                let fused_name = format!("F({})", fused_names.join("+"));
                // Monomorphize when eligible and asked for; otherwise (or
                // under `FusionStrategy::Interpret`) build the interpreted
                // meta-operator. Same actor and operator names either way,
                // so the two strategies produce identical telemetry.
                let chain = match opts.fusion {
                    FusionStrategy::Monomorphize => {
                        maybe_monomorphize(&fused_name, &kinds, &routes, index_of(g.front))
                    }
                    FusionStrategy::Interpret => None,
                };
                let op: Box<dyn StreamOperator> = match chain {
                    Some(chain) => Box::new(chain),
                    None => {
                        let ops: Vec<Box<dyn StreamOperator>> = kinds
                            .iter()
                            .map(|(kind, params)| build_operator(*kind, params))
                            .collect();
                        Box::new(MetaOperator::new(
                            fused_name,
                            ops,
                            routes,
                            index_of(g.front),
                            opts.seed ^ (0x4D45_5441 + gi as u64),
                        ))
                    }
                };
                let a = graph.add_actor(format!("meta-g{gi}"), Behavior::Worker(op));
                meta_actor[gi] = Some(a);
                meta_external[gi] = externals;
                for &m in &members {
                    input_actor[m.0] = a;
                    departure_actor[m.0] = a;
                }
            }
            continue;
        }
        let nrep = replicas[id.0];
        let slots = slots_of(id.0);
        if slots == 1 {
            let a = graph.add_actor(spec.name.clone(), Behavior::Worker(instantiate(topo, id)?));
            input_actor[id.0] = a;
            departure_actor[id.0] = a;
            routing_actor[id.0] = Some(a);
        } else {
            // Emitter -> n replicas -> collector (§4.2), plus any spare
            // provisioned slots behind the same pair.
            let emitter = graph.add_actor(
                format!("{}-emitter", spec.name),
                Behavior::worker(PassThrough),
            );
            let mut reps = Vec::with_capacity(slots);
            for r in 0..slots {
                let a = graph.add_actor(
                    format!("{}-r{r}", spec.name),
                    Behavior::Worker(instantiate(topo, id)?),
                );
                reps.push(a);
            }
            let collector = graph.add_actor(
                format!("{}-collector", spec.name),
                Behavior::worker(PassThrough),
            );
            // Emitter policy: round-robin for stateless, key map for
            // partitioned-stateful. Only the first `nrep` slots carry data.
            let active = &reps[..nrep];
            let route = match &spec.state {
                StateClass::PartitionedStateful { keys } => {
                    let assign = key_partitioning(keys, nrep);
                    // `assign.replicas` may be < nrep for tiny key spaces;
                    // use only the replicas the assignment references.
                    Route::KeyMap {
                        key_map: assign.owner.clone(),
                        destinations: active[..assign.replicas].to_vec(),
                    }
                }
                _ if nrep == 1 => Route::Unicast(active[0]),
                _ => Route::RoundRobin(active.to_vec()),
            };
            graph.connect(emitter, route);
            if slots > nrep {
                // Spare slots hang off a port the pass-through emitter never
                // emits on: no data flows, but the slots are wired senders
                // and EOS/marker targets, so they stay alive, aligned with
                // every checkpoint, and reachable by a later route swap.
                graph.connect(emitter, Route::RoundRobin(reps[nrep..].to_vec()));
            }
            for &r in &reps {
                graph.connect(r, Route::Unicast(collector));
            }
            input_actor[id.0] = emitter;
            departure_actor[id.0] = collector;
            routing_actor[id.0] = Some(collector);
            replica_actors[id.0] = reps;
            emitter_actor[id.0] = Some(emitter);
            collector_actor[id.0] = Some(collector);
        }
    }

    // --- Wire the logical edges --------------------------------------------
    for id in topo.operator_ids() {
        if group_of.contains_key(&id) {
            continue; // fused members' outputs are wired via the meta actor
        }
        let Some(actor) = routing_actor[id.0] else {
            continue;
        };
        let outs = topo.out_edges(id);
        if outs.is_empty() {
            continue;
        }
        let choices: Vec<(ActorId, f64)> = outs
            .iter()
            .map(|&eid| {
                let e = topo.edge(eid);
                (input_actor[e.to.0], e.probability)
            })
            .collect();
        let route = if choices.len() == 1 {
            Route::Unicast(choices[0].0)
        } else {
            Route::Probabilistic { choices }
        };
        graph.connect(actor, route);
    }
    // Meta actors: one route per external port, in port order.
    for (gi, externals) in meta_external.iter().enumerate() {
        if let Some(a) = meta_actor[gi] {
            for (_, to, _, _port) in externals {
                graph.connect(a, Route::Unicast(input_actor[to.0]));
            }
        }
    }

    let num_actors = graph.num_actors();
    Ok(GeneratedPlan {
        graph,
        departure_actor,
        input_actor,
        replica_slots: replica_actors,
        emitter_actor,
        collector_actor,
        active_replicas: replicas.to_vec(),
        num_actors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{OperatorSpec, ServiceTime};
    use spinstreams_runtime::{run, EngineConfig};

    fn spec(name: &str, kind: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms)).with_kind(kind)
    }

    /// source -> identity -> filter(0.5) -> sink(identity)
    fn small_topology() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(spec("src", "source", 0.05));
        let a = b.add_operator(spec("map", "identity-map", 0.01));
        let f = b.add_operator(
            spec("filter", "filter", 0.01)
                .with_param("threshold", 0.5)
                .with_selectivity(spinstreams_core::Selectivity::output(0.5)),
        );
        let k = b.add_operator(spec("sink", "identity-map", 0.01));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, f, 1.0).unwrap();
        b.add_edge(f, k, 1.0).unwrap();
        b.build().unwrap()
    }

    fn engine() -> EngineConfig {
        EngineConfig {
            mailbox_capacity: 64,
            ..Default::default()
        }
    }

    #[test]
    fn plain_topology_builds_one_actor_per_operator() {
        let t = small_topology();
        let plan = build_actor_graph(
            &t,
            None,
            &[],
            &[],
            &CodegenOptions {
                items: 500,
                seed: 1,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plan.num_actors, 4);
        let report = run(plan.graph, &engine()).unwrap();
        // Filter halves the stream.
        let sink_in = report.actor(plan.input_actor[3]).items_in;
        assert!((sink_in as f64 - 250.0).abs() < 40.0, "sink got {sink_in}");
        assert_eq!(report.actor(plan.departure_actor[1]).items_out, 500);
    }

    #[test]
    fn replicated_operator_gets_emitter_and_collector() {
        let t = small_topology();
        let plan = build_actor_graph(
            &t,
            None,
            &[1, 3, 1, 1],
            &[],
            &CodegenOptions {
                items: 600,
                seed: 2,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        // 4 logical - 1 replicated = 3 plain actors + 3 replicas + 2 aux.
        assert_eq!(plan.num_actors, 3 + 3 + 2);
        let report = run(plan.graph, &engine()).unwrap();
        // The collector sees every item exactly once.
        assert_eq!(report.actor(plan.departure_actor[1]).items_in, 600);
        assert_eq!(report.actor(plan.departure_actor[1]).items_out, 600);
    }

    #[test]
    fn partitioned_replicas_preserve_key_locality() {
        // keyed-sum with 2 replicas: every key must stay on one replica, so
        // per-key sums are identical to the unreplicated run.
        let mut b = Topology::builder();
        let s = b.add_operator(spec("src", "source", 0.05));
        let keys = KeyDistribution::uniform(8);
        let a = b.add_operator(
            OperatorSpec::partitioned("agg", ServiceTime::from_millis(0.01), keys.clone())
                .with_kind("keyed-sum")
                .with_param("window", 4.0)
                .with_param("slide", 4.0),
        );
        b.add_edge(s, a, 1.0).unwrap();
        let t = b.build().unwrap();
        let opts = CodegenOptions {
            items: 800,
            seed: 3,
            ..CodegenOptions::default()
        };
        let plan = build_actor_graph(&t, Some(keys), &[1, 2], &[], &opts).unwrap();
        let report = run(plan.graph, &engine()).unwrap();
        // Both replicas together consumed everything.
        let consumed: u64 = (0..report.actors.len())
            .filter(|i| report.actors[*i].name.starts_with("agg-r"))
            .map(|i| report.actors[i].items_in)
            .sum();
        assert_eq!(consumed, 800);
    }

    #[test]
    fn fusion_group_becomes_single_meta_actor() {
        let t = small_topology();
        let group = FusionGroup {
            members: [OperatorId(1), OperatorId(2)].into_iter().collect(),
            front: OperatorId(1),
        };
        let plan = build_actor_graph(
            &t,
            None,
            &[],
            &[group],
            &CodegenOptions {
                items: 400,
                seed: 4,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plan.num_actors, 3); // source, meta, sink
        assert_eq!(plan.input_actor[1], plan.input_actor[2]);
        let report = run(plan.graph, &engine()).unwrap();
        // Meta applies map then filter: the sink sees about half.
        let sink_in = report.actor(plan.input_actor[3]).items_in;
        assert!((sink_in as f64 - 200.0).abs() < 40.0, "sink got {sink_in}");
    }

    #[test]
    fn fused_and_unfused_outputs_are_semantically_equivalent() {
        // Deterministic operators: identity-map then projection. Compare
        // item counts through both deployments.
        let mut b = Topology::builder();
        let s = b.add_operator(spec("src", "source", 0.05));
        let a = b.add_operator(spec("m1", "identity-map", 0.01));
        let c = b.add_operator(spec("m2", "projection", 0.01).with_param("keep", 2.0));
        let k = b.add_operator(spec("sink", "identity-map", 0.01));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let opts = CodegenOptions {
            items: 300,
            seed: 5,
            ..CodegenOptions::default()
        };

        let plain = build_actor_graph(&t, None, &[], &[], &opts).unwrap();
        let r1 = run(plain.graph, &engine()).unwrap();
        let plain_sink = r1.actor(plain.input_actor[3]).items_in;

        let group = FusionGroup {
            members: [OperatorId(1), OperatorId(2)].into_iter().collect(),
            front: OperatorId(1),
        };
        let fused = build_actor_graph(&t, None, &[], &[group], &opts).unwrap();
        let r2 = run(fused.graph, &engine()).unwrap();
        let fused_sink = r2.actor(fused.input_actor[3]).items_in;

        assert_eq!(plain_sink, fused_sink);
        assert_eq!(plain_sink, 300);
    }

    #[test]
    fn codegen_validation_errors() {
        let t = small_topology();
        let opts = CodegenOptions::default();
        // Wrong replica vector length.
        assert!(matches!(
            build_actor_graph(&t, None, &[1, 1], &[], &opts).unwrap_err(),
            CodegenError::BadReplicaVector { .. }
        ));
        // Zero degree.
        assert!(matches!(
            build_actor_graph(&t, None, &[1, 0, 1, 1], &[], &opts).unwrap_err(),
            CodegenError::BadReplicaVector { .. }
        ));
        // Replicated source.
        assert!(matches!(
            build_actor_graph(&t, None, &[2, 1, 1, 1], &[], &opts).unwrap_err(),
            CodegenError::BadReplicaVector { .. }
        ));
        // Fusion containing the source.
        let g = FusionGroup {
            members: [OperatorId(0), OperatorId(1)].into_iter().collect(),
            front: OperatorId(1),
        };
        assert!(matches!(
            build_actor_graph(&t, None, &[], &[g], &opts).unwrap_err(),
            CodegenError::BadFusionGroup { .. }
        ));
        // Front not a member.
        let g = FusionGroup {
            members: [OperatorId(1)].into_iter().collect(),
            front: OperatorId(2),
        };
        assert!(matches!(
            build_actor_graph(&t, None, &[], &[g], &opts).unwrap_err(),
            CodegenError::BadFusionGroup { .. }
        ));
        // Replicated fusion member.
        let g = FusionGroup {
            members: [OperatorId(1), OperatorId(2)].into_iter().collect(),
            front: OperatorId(1),
        };
        assert!(matches!(
            build_actor_graph(&t, None, &[1, 2, 1, 1], &[g], &opts).unwrap_err(),
            CodegenError::BadFusionGroup { .. }
        ));
        // Unknown kind.
        let mut b = Topology::builder();
        let s = b.add_operator(spec("src", "source", 1.0));
        let w = b.add_operator(spec("w", "no-such-kind", 1.0));
        b.add_edge(s, w, 1.0).unwrap();
        let bad = b.build().unwrap();
        assert!(matches!(
            build_actor_graph(&bad, None, &[], &[], &opts).unwrap_err(),
            CodegenError::UnknownKind { .. }
        ));
    }

    #[test]
    fn provisioned_spare_slots_stay_idle_but_wired() {
        let t = small_topology();
        let plan = build_actor_graph(
            &t,
            None,
            &[1, 2, 1, 1],
            &[],
            &CodegenOptions {
                items: 600,
                seed: 7,
                provision: vec![1, 4, 1, 1],
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        // 3 plain actors + emitter + 4 slots + collector.
        assert_eq!(plan.num_actors, 3 + 6);
        assert_eq!(plan.replica_slots[1].len(), 4);
        assert_eq!(plan.active_replicas, vec![1, 2, 1, 1]);
        assert!(plan.emitter_actor[1].is_some());
        assert!(plan.collector_actor[1].is_some());
        let report = run(plan.graph, &engine()).unwrap();
        // The collector still sees every item exactly once...
        assert_eq!(report.actor(plan.departure_actor[1]).items_in, 600);
        // ...and the spare slots never received data.
        for &spare in &plan.replica_slots[1][2..] {
            assert_eq!(report.actor(spare).items_in, 0, "spare {spare:?} got data");
        }
    }

    #[test]
    fn provisioning_a_single_replica_builds_the_full_harness() {
        // provision > 1 with an active degree of 1 still deploys the
        // emitter/collector pair, so a later re-scale is a pure route swap.
        let t = small_topology();
        let plan = build_actor_graph(
            &t,
            None,
            &[],
            &[],
            &CodegenOptions {
                items: 300,
                seed: 8,
                provision: vec![1, 3, 1, 1],
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plan.num_actors, 3 + 5);
        assert_eq!(plan.active_replicas, vec![1, 1, 1, 1]);
        let report = run(plan.graph, &engine()).unwrap();
        assert_eq!(report.actor(plan.departure_actor[1]).items_out, 300);
        assert_eq!(report.actor(plan.replica_slots[1][0]).items_in, 300);
        assert_eq!(report.actor(plan.replica_slots[1][1]).items_in, 0);
    }

    #[test]
    fn provision_validation_errors() {
        let t = small_topology();
        // Wrong provision length.
        assert!(matches!(
            build_actor_graph(
                &t,
                None,
                &[],
                &[],
                &CodegenOptions {
                    provision: vec![1, 2],
                    ..CodegenOptions::default()
                }
            )
            .unwrap_err(),
            CodegenError::BadReplicaVector { .. }
        ));
        // Provisioned source.
        assert!(matches!(
            build_actor_graph(
                &t,
                None,
                &[],
                &[],
                &CodegenOptions {
                    provision: vec![2, 1, 1, 1],
                    ..CodegenOptions::default()
                }
            )
            .unwrap_err(),
            CodegenError::BadReplicaVector { .. }
        ));
        // Provisioned fusion member.
        let g = FusionGroup {
            members: [OperatorId(1), OperatorId(2)].into_iter().collect(),
            front: OperatorId(1),
        };
        assert!(matches!(
            build_actor_graph(
                &t,
                None,
                &[],
                &[g],
                &CodegenOptions {
                    provision: vec![1, 3, 1, 1],
                    ..CodegenOptions::default()
                }
            )
            .unwrap_err(),
            CodegenError::BadFusionGroup { .. }
        ));
    }

    #[test]
    fn probabilistic_split_wired_from_collector() {
        // Replicated op with two downstream branches: the collector must
        // carry the probabilistic split.
        let mut b = Topology::builder();
        let s = b.add_operator(spec("src", "source", 0.05));
        let m = b.add_operator(spec("map", "identity-map", 0.01));
        let x = b.add_operator(spec("x", "identity-map", 0.01));
        let y = b.add_operator(spec("y", "identity-map", 0.01));
        b.add_edge(s, m, 1.0).unwrap();
        b.add_edge(m, x, 0.25).unwrap();
        b.add_edge(m, y, 0.75).unwrap();
        let t = b.build().unwrap();
        let plan = build_actor_graph(
            &t,
            None,
            &[1, 2, 1, 1],
            &[],
            &CodegenOptions {
                items: 4000,
                seed: 6,
                ..CodegenOptions::default()
            },
        )
        .unwrap();
        let report = run(plan.graph, &engine()).unwrap();
        let xin = report.actor(plan.input_actor[2]).items_in as f64;
        assert!((xin / 4000.0 - 0.25).abs() < 0.05, "x got {xin}");
    }
}
