//! # spinstreams-codegen
//!
//! Code generation: from an *optimized abstract topology* to an executable
//! deployment — the analogue of the paper's SS2Akka code generator (§4.2).
//!
//! The generator consumes:
//!
//! * the abstract [`Topology`] (operator kinds + factory parameters in each
//!   spec, as produced by hand, by `spinstreams-topogen`, or parsed from
//!   XML),
//! * a replication degree per operator (from Algorithm 2's
//!   [`FissionPlan`]), and
//! * a set of [`FusionGroup`]s (from Algorithm 3 / the user),
//!
//! and produces an [`ActorGraph`] for `spinstreams-runtime` in which:
//!
//! * every single-replica operator becomes one worker actor;
//! * every replicated operator becomes `n` replica actors behind an
//!   *emitter* (round-robin for stateless, key-hash for
//!   partitioned-stateful, §4.2 "Generation of parallel operators") and a
//!   *collector*;
//! * every fusion group becomes one actor executing a [`MetaOperator`]
//!   (Algorithm 4, "Generation with operator fusion").
//!
//! [`emit_rust_source`] additionally renders the deployment as a standalone
//! Rust program — the human-readable artifact corresponding to the
//! generated Akka classes.
//!
//! [`Topology`]: spinstreams_core::Topology
//! [`FissionPlan`]: spinstreams_analysis::FissionPlan
//! [`ActorGraph`]: spinstreams_runtime::ActorGraph
//! [`MetaOperator`]: spinstreams_runtime::MetaOperator

#![warn(missing_docs)]

mod build;
mod emit;
mod serialize;

pub use build::{
    build_actor_graph, CodegenError, CodegenOptions, FusionGroup, FusionStrategy, GeneratedPlan,
};
pub use emit::emit_rust_source;
pub use serialize::{checksum, plan_cache_key, serialize_plan, serialize_topology};
