//! Oracle configuration: scenario generation knobs and tolerance bands.

use spinstreams_runtime::PinningConfig;
use spinstreams_topogen::TopogenConfig;

/// Tolerance bands for the three-way comparison.
///
/// The sim-vs-analysis bands are tight — the discrete-event simulator under
/// pure synthetic time realizes the §3 cost model almost exactly, with
/// residual error from the mailbox-fill transient before backpressure
/// engages (§5.2 attributes its own outliers to the same effect). The
/// threaded band is statistical: thread scheduling on an arbitrary host
/// cannot reproduce modeled parallelism, so only load-independent
/// selectivity ratios are held to it.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Relative error allowed between predicted and sim-measured topology
    /// throughput (items ingested per second).
    pub throughput_rel: f64,
    /// Relative error allowed between predicted and sim-measured
    /// per-operator departure rates.
    pub departure_rel: f64,
    /// Absolute error allowed between predicted utilization `ρ` and the
    /// sim-measured busy fraction.
    pub utilization_abs: f64,
    /// Minimum items an operator must have consumed in a layer before its
    /// rates take part in the comparison (starved low-probability branches
    /// produce meaningless rate estimates).
    pub min_samples: u64,
    /// Relative error allowed between the sim and threaded layers'
    /// measured per-operator selectivity ratios (`items_out / items_in`).
    pub threaded_ratio_rel: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            throughput_rel: 0.06,
            departure_rel: 0.08,
            utilization_abs: 0.15,
            min_samples: 200,
            threaded_ratio_rel: 0.35,
        }
    }
}

/// Configuration of a differential-oracle sweep.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Scenario generator settings. The default uses the fast testbed
    /// profile with a non-identity source-selectivity range, so the sweep
    /// exercises the §3.4 source code paths the hand-written tests miss.
    pub topogen: TopogenConfig,
    /// Items generated per measurement run.
    pub items: u64,
    /// Items generated for the calibration run (§4.1 profiling step).
    pub calibration_items: u64,
    /// Minimum consumed items before calibration rewrites an operator's
    /// annotations.
    pub min_calibration_samples: u64,
    /// Tolerance bands.
    pub tolerances: Tolerances,
    /// Also validate the Algorithm 2 fission plan (`evaluate_with_replicas`
    /// vs a replicated sim deployment) when the plan replicates anything.
    pub check_fission: bool,
    /// Also differential-test the Algorithm 3 fusion path: deploy the
    /// longest fusable stateless chain once monomorphized and once
    /// force-interpreted and require exact per-operator count equality
    /// (skipped when the scenario has no such chain).
    pub check_fusion: bool,
    /// Number of leading seeds that additionally get a smoke-scale
    /// *threaded* run (0 disables the layer; it spins real CPU time).
    pub threaded_runs: usize,
    /// Items for the threaded smoke run. Keep this equal to `items`:
    /// windowed operators' realized selectivity is run-length-dependent
    /// (shorter runs fill fewer windows), and the threaded layer's
    /// selectivity ratios are compared against the sim run's.
    pub threaded_items: u64,
    /// Worker-pool executor for the threaded smoke layer: `Some(n)` runs
    /// actors on a pool of `n` cooperative workers (`Some(0)` = one per
    /// core), `None` keeps thread-per-actor. The oracle's comparisons must
    /// hold under either scheduling discipline.
    pub workers: Option<usize>,
    /// Core-pinning policy for the threaded smoke layer
    /// (`EngineConfig::pinning`): the comparisons must also hold when the
    /// engine pins its threads and shards actors by stage.
    pub pinning: PinningConfig,
    /// Delta-debug divergent scenarios down to a minimal counterexample.
    pub minimize: bool,
    /// Hard cap on pipeline evaluations spent minimizing one scenario.
    pub minimize_budget: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            topogen: TopogenConfig {
                source_selectivity_range: Some((0.6, 1.4)),
                ..TopogenConfig::fast()
            },
            items: 6_000,
            calibration_items: 6_000,
            min_calibration_samples: 100,
            tolerances: Tolerances::default(),
            check_fission: true,
            check_fusion: true,
            threaded_runs: 4,
            threaded_items: 6_000,
            workers: None,
            pinning: PinningConfig::default(),
            minimize: true,
            minimize_budget: 200,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OracleConfig::default();
        assert!(c.tolerances.throughput_rel < c.tolerances.threaded_ratio_rel);
        assert!(c.items >= c.calibration_items);
        assert!(c.topogen.source_selectivity_range.is_some());
        assert!(c.minimize_budget > 0);
    }
}
