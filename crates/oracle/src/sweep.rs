//! The oracle sweep: seeded scenario evaluation and the driver loop.

use crate::{
    annotate, compare_layer, compare_threaded, measure, measure_with, minimize, scenario,
    sim_executor, threaded_executor, Divergence, DivergenceKind, Layer, MinimalCase, OracleConfig,
    RateTable, Scenario,
};
use spinstreams_analysis::{eliminate_bottlenecks, evaluate_with_replicas, steady_state};
use spinstreams_codegen::{FusionGroup, FusionStrategy};
use spinstreams_core::{KeyDistribution, OperatorId, Topology};
use spinstreams_operators::OperatorKind;

/// The outcome of evaluating one scenario through every oracle layer.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario seed.
    pub seed: u64,
    /// Three-way rate tables, one per layer that ran.
    pub tables: Vec<RateTable>,
    /// Every tolerance violation found.
    pub divergences: Vec<Divergence>,
}

impl ScenarioReport {
    /// True if no layer diverged.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Finds the longest fusable stateless chain in `topo`: consecutive
/// non-source operators, each of a stateless registry kind (so it has a
/// static kernel form), each with exactly one out-edge, and each non-front
/// member fed only by its predecessor. Such a group passes codegen's
/// fusion-group validation and — under [`FusionStrategy::Monomorphize`] —
/// compiles to a statically dispatched chain, so deploying it under both
/// strategies differential-tests the kernel layer against the interpreted
/// meta-operator. Returns `None` when no two adjacent operators qualify.
fn fusable_chain(topo: &Topology) -> Option<FusionGroup> {
    let eligible = |id: OperatorId| {
        id != topo.source()
            && topo.out_edges(id).len() == 1
            && topo
                .operator(id)
                .kind
                .parse::<OperatorKind>()
                .is_ok_and(|k| k.is_stateless())
    };
    let mut best: Option<Vec<OperatorId>> = None;
    for start in topo.operator_ids() {
        if !eligible(start) {
            continue;
        }
        let mut chain = vec![start];
        let mut cur = start;
        loop {
            let next = topo.edge(topo.out_edges(cur)[0]).to;
            if !eligible(next) || topo.in_edges(next).len() != 1 || chain.contains(&next) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        if chain.len() >= 2 && best.as_ref().is_none_or(|b| chain.len() > b.len()) {
            best = Some(chain);
        }
    }
    best.map(|chain| FusionGroup {
        front: chain[0],
        members: chain.into_iter().collect(),
    })
}

/// Runs the full differential pipeline on one (possibly hand-modified)
/// topology: calibrate on the simulator, predict with Algorithm 1, measure
/// on the simulator, compare; optionally repeat for the Algorithm 2 fission
/// plan, and fold in a threaded smoke run.
///
/// Pipeline failures (codegen/engine/build errors) are reported as
/// [`DivergenceKind::Pipeline`] divergences rather than propagated — an
/// oracle input that crashes a layer *is* a counterexample.
pub fn evaluate(
    topo: &Topology,
    source_keys: &KeyDistribution,
    seed: u64,
    cfg: &OracleConfig,
    threaded: bool,
) -> ScenarioReport {
    let mut tables = Vec::new();
    let mut divergences = Vec::new();
    fn pipeline_failure(
        out: &mut Vec<Divergence>,
        seed: u64,
        layer: Layer,
        stage: &str,
        err: String,
    ) {
        out.push(Divergence {
            seed,
            layer,
            kind: DivergenceKind::Pipeline,
            detail: format!("{stage} failed: {err}"),
        });
    }

    // Base layer: one deterministic sim run of the declared topology.
    // Annotations are profiled from this very run (§4.1 — see [`annotate`]
    // for why sharing the trace matters), then Algorithm 1's prediction on
    // those annotations is held against the run's measured rates.
    let base = match measure(topo, source_keys, &[], cfg.items, seed, &sim_executor(seed)) {
        Ok(m) => m,
        Err(e) => {
            pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "sim run",
                e.to_string(),
            );
            return ScenarioReport {
                seed,
                tables,
                divergences,
            };
        }
    };
    let cal = match annotate(topo, &base, None, cfg.min_calibration_samples) {
        Ok(t) => t,
        Err(e) => {
            pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "annotation",
                e.to_string(),
            );
            return ScenarioReport {
                seed,
                tables,
                divergences,
            };
        }
    };
    let prediction = steady_state(&cal);
    let (mut table, divs) = compare_layer(
        seed,
        Layer::Base,
        &cal,
        &prediction,
        &[],
        &base,
        &cfg.tolerances,
    );
    divergences.extend(divs);

    // Threaded smoke layer, folded into the base table.
    if threaded && cfg.threaded_items > 0 {
        match measure(
            topo,
            source_keys,
            &[],
            cfg.threaded_items,
            seed,
            &threaded_executor(seed, cfg.workers, &cfg.pinning),
        ) {
            Ok(thr) => {
                divergences.extend(compare_threaded(
                    seed,
                    &cal,
                    &mut table,
                    &base,
                    &thr,
                    &cfg.tolerances,
                ));
            }
            Err(e) => pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "threaded run",
                e.to_string(),
            ),
        }
    }
    tables.push(table);

    // Fission layer: Algorithm 2's replicated deployment, when it
    // replicates anything. The replicated run gets its own trace-derived
    // annotations (a join's realized match rate shifts when its input
    // streams interleave differently), falling back to the base layer's
    // where replication hides the per-operator counters.
    if cfg.check_fission {
        let plan = eliminate_bottlenecks(&cal);
        if plan.replicas.iter().any(|&r| r > 1) {
            // The replicated deployment runs up to speedup× faster in
            // virtual time; at a fixed item count the run compresses until
            // the pipeline fill/drain transient dominates the wall clock
            // (at 1M items/s, cfg.items lasts single-digit milliseconds).
            // Scale the run length to hold the measured duration — and
            // thus the transient's relative weight — at the base layer's.
            let speedup = (plan.throughput.items_per_sec()
                / prediction.throughput.items_per_sec().max(1e-12))
            .clamp(1.0, 32.0);
            let fis_items = (cfg.items as f64 * speedup) as u64;
            match measure(
                topo,
                source_keys,
                &plan.replicas,
                fis_items,
                seed,
                &sim_executor(seed),
            ) {
                Ok(fis) => match annotate(topo, &fis, Some(&cal), cfg.min_calibration_samples) {
                    Ok(cal_fis) => {
                        let pred = evaluate_with_replicas(&cal_fis, &plan.replicas);
                        let (table, divs) = compare_layer(
                            seed,
                            Layer::Fission,
                            &cal_fis,
                            &pred,
                            &plan.replicas,
                            &fis,
                            &cfg.tolerances,
                        );
                        divergences.extend(divs);
                        tables.push(table);
                    }
                    Err(e) => pipeline_failure(
                        &mut divergences,
                        seed,
                        Layer::Fission,
                        "annotation",
                        e.to_string(),
                    ),
                },
                Err(e) => pipeline_failure(
                    &mut divergences,
                    seed,
                    Layer::Fission,
                    "sim run",
                    e.to_string(),
                ),
            }
        }
    }

    // Fusion layer: deploy the longest fusable stateless chain twice on
    // the deterministic simulator — once with the group compiled to a
    // monomorphized kernel chain, once forced through the interpreted
    // meta-operator — and require the per-operator item counters to agree
    // *exactly*. Both runs share the seed and the sim is bit-for-bit
    // deterministic, so any difference is a kernel-vs-interpreter
    // semantics bug, not noise. Skipped when the scenario has no chain.
    if cfg.check_fusion {
        if let Some(group) = fusable_chain(&cal) {
            let groups = [group];
            let run = |strategy| {
                measure_with(
                    &cal,
                    source_keys,
                    &[],
                    &groups,
                    strategy,
                    cfg.items,
                    seed,
                    &sim_executor(seed),
                )
            };
            match (
                run(FusionStrategy::Monomorphize),
                run(FusionStrategy::Interpret),
            ) {
                (Ok(mono), Ok(interp)) => {
                    for id in cal.operator_ids() {
                        if mono.items_in[id.0] != interp.items_in[id.0]
                            || mono.items_out[id.0] != interp.items_out[id.0]
                        {
                            divergences.push(Divergence {
                                seed,
                                layer: Layer::Fusion,
                                kind: DivergenceKind::FusionCounts(id),
                                detail: format!(
                                    "{} ({id}): monomorphized {}/{} vs interpreted {}/{} \
                                     items in/out (group {:?})",
                                    cal.operator(id).name,
                                    mono.items_in[id.0],
                                    mono.items_out[id.0],
                                    interp.items_in[id.0],
                                    interp.items_out[id.0],
                                    groups[0].members,
                                ),
                            });
                        }
                    }
                }
                (Err(e), _) | (_, Err(e)) => pipeline_failure(
                    &mut divergences,
                    seed,
                    Layer::Fusion,
                    "fused run",
                    e.to_string(),
                ),
            }
        }
    }

    ScenarioReport {
        seed,
        tables,
        divergences,
    }
}

/// Generates the scenario for `seed` and evaluates it.
pub fn run_scenario(seed: u64, cfg: &OracleConfig, threaded: bool) -> (Scenario, ScenarioReport) {
    let s = scenario(seed, cfg);
    let report = evaluate(&s.topology, &s.source_keys, seed, cfg, threaded);
    (s, report)
}

/// One divergent scenario with its minimized counterexample.
#[derive(Debug, Clone)]
pub struct DivergentCase {
    /// The original generated scenario.
    pub scenario: Scenario,
    /// Its full evaluation report.
    pub report: ScenarioReport,
    /// The delta-debugged minimal counterexample, when minimization ran.
    pub minimized: Option<MinimalCase>,
}

/// The outcome of a full seed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Seeds evaluated, in order.
    pub seeds: Vec<u64>,
    /// Seeds that passed every check.
    pub clean: usize,
    /// Divergent scenarios, in seed order.
    pub cases: Vec<DivergentCase>,
}

impl SweepReport {
    /// True if every seed passed.
    pub fn is_clean(&self) -> bool {
        self.cases.is_empty()
    }
}

/// Sweeps `num_seeds` consecutive seeds starting at `seed_start`. The first
/// [`OracleConfig::threaded_runs`] seeds additionally get the threaded
/// smoke layer. `progress` is invoked after each seed with its report.
pub fn run_sweep(
    cfg: &OracleConfig,
    seed_start: u64,
    num_seeds: u64,
    progress: &mut dyn FnMut(&ScenarioReport),
) -> SweepReport {
    let mut seeds = Vec::new();
    let mut clean = 0usize;
    let mut cases = Vec::new();
    for i in 0..num_seeds {
        let seed = seed_start + i;
        seeds.push(seed);
        let threaded = (i as usize) < cfg.threaded_runs;
        let (s, report) = run_scenario(seed, cfg, threaded);
        progress(&report);
        if report.is_clean() {
            clean += 1;
        } else {
            let minimized = cfg.minimize.then(|| minimize(&s, cfg));
            cases.push(DivergentCase {
                scenario: s,
                report,
                minimized,
            });
        }
    }
    SweepReport {
        seeds,
        clean,
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> OracleConfig {
        OracleConfig {
            items: 4_000,
            calibration_items: 3_000,
            threaded_runs: 0,
            minimize: false,
            ..OracleConfig::default()
        }
    }

    #[test]
    fn sim_vs_analysis_agrees_on_seeded_scenarios() {
        let cfg = quick_cfg();
        for seed in [11, 12, 13] {
            let (_, report) = run_scenario(seed, &cfg, false);
            assert!(
                report.is_clean(),
                "seed {seed} diverged: {:?}",
                report.divergences
            );
            assert!(!report.tables.is_empty());
        }
    }

    #[test]
    fn fusable_chain_finds_the_longest_stateless_run() {
        use spinstreams_core::{OperatorSpec, Selectivity, ServiceTime};
        let mut b = Topology::builder();
        let src = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(1.0)).with_kind("source"),
        );
        let a = b.add_operator(
            OperatorSpec::stateless("a", ServiceTime::from_micros(1.0)).with_kind("identity-map"),
        );
        let f = b.add_operator(
            OperatorSpec::stateless("f", ServiceTime::from_micros(1.0))
                .with_kind("filter")
                .with_selectivity(Selectivity::output(0.5)),
        );
        let agg = b.add_operator(
            OperatorSpec::stateful("agg", ServiceTime::from_micros(1.0)).with_kind("global-sum"),
        );
        let sink = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(1.0))
                .with_kind("identity-map"),
        );
        b.add_edge(src, a, 1.0).unwrap();
        b.add_edge(a, f, 1.0).unwrap();
        b.add_edge(f, agg, 1.0).unwrap();
        b.add_edge(agg, sink, 1.0).unwrap();
        let topo = b.build().unwrap();
        // a → f is the only stateless run of length ≥ 2: the source is
        // excluded, the aggregate is stateful, and the sink has no
        // out-edge to carry the chain's output.
        let g = fusable_chain(&topo).expect("chain");
        assert_eq!(g.front, a);
        assert_eq!(g.members, [a, f].into_iter().collect());
        // A purely stateful pipeline has no chain at all.
        let mut b = Topology::builder();
        let src = b.add_operator(
            OperatorSpec::source("src", ServiceTime::from_micros(1.0)).with_kind("source"),
        );
        let j = b.add_operator(
            OperatorSpec::stateful("join", ServiceTime::from_micros(1.0)).with_kind("equi-join"),
        );
        let sink = b.add_operator(
            OperatorSpec::stateless("sink", ServiceTime::from_micros(1.0))
                .with_kind("identity-map"),
        );
        b.add_edge(src, j, 1.0).unwrap();
        b.add_edge(j, sink, 1.0).unwrap();
        assert!(fusable_chain(&b.build().unwrap()).is_none());
    }

    #[test]
    fn generated_scenarios_exercise_the_fusion_layer() {
        // The fusion layer silently skips scenarios without a fusable
        // chain; if the generator stopped producing adjacent stateless
        // operators the differential check would quietly stop running.
        let cfg = quick_cfg();
        let hits = (0..20)
            .filter(|&seed| fusable_chain(&scenario(seed, &cfg).topology).is_some())
            .count();
        assert!(
            hits >= 3,
            "only {hits}/20 generated scenarios have a fusable chain"
        );
    }

    #[test]
    fn sweep_counts_clean_seeds() {
        let cfg = quick_cfg();
        let mut seen = 0;
        let sweep = run_sweep(&cfg, 20, 2, &mut |_| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(sweep.seeds, vec![20, 21]);
        assert_eq!(sweep.clean + sweep.cases.len(), 2);
    }
}
