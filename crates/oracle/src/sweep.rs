//! The oracle sweep: seeded scenario evaluation and the driver loop.

use crate::{
    annotate, compare_layer, compare_threaded, measure, minimize, scenario, sim_executor,
    threaded_executor, Divergence, DivergenceKind, Layer, MinimalCase, OracleConfig, RateTable,
    Scenario,
};
use spinstreams_analysis::{eliminate_bottlenecks, evaluate_with_replicas, steady_state};
use spinstreams_core::{KeyDistribution, Topology};

/// The outcome of evaluating one scenario through every oracle layer.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario seed.
    pub seed: u64,
    /// Three-way rate tables, one per layer that ran.
    pub tables: Vec<RateTable>,
    /// Every tolerance violation found.
    pub divergences: Vec<Divergence>,
}

impl ScenarioReport {
    /// True if no layer diverged.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs the full differential pipeline on one (possibly hand-modified)
/// topology: calibrate on the simulator, predict with Algorithm 1, measure
/// on the simulator, compare; optionally repeat for the Algorithm 2 fission
/// plan, and fold in a threaded smoke run.
///
/// Pipeline failures (codegen/engine/build errors) are reported as
/// [`DivergenceKind::Pipeline`] divergences rather than propagated — an
/// oracle input that crashes a layer *is* a counterexample.
pub fn evaluate(
    topo: &Topology,
    source_keys: &KeyDistribution,
    seed: u64,
    cfg: &OracleConfig,
    threaded: bool,
) -> ScenarioReport {
    let mut tables = Vec::new();
    let mut divergences = Vec::new();
    fn pipeline_failure(
        out: &mut Vec<Divergence>,
        seed: u64,
        layer: Layer,
        stage: &str,
        err: String,
    ) {
        out.push(Divergence {
            seed,
            layer,
            kind: DivergenceKind::Pipeline,
            detail: format!("{stage} failed: {err}"),
        });
    }

    // Base layer: one deterministic sim run of the declared topology.
    // Annotations are profiled from this very run (§4.1 — see [`annotate`]
    // for why sharing the trace matters), then Algorithm 1's prediction on
    // those annotations is held against the run's measured rates.
    let base = match measure(topo, source_keys, &[], cfg.items, seed, &sim_executor(seed)) {
        Ok(m) => m,
        Err(e) => {
            pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "sim run",
                e.to_string(),
            );
            return ScenarioReport {
                seed,
                tables,
                divergences,
            };
        }
    };
    let cal = match annotate(topo, &base, None, cfg.min_calibration_samples) {
        Ok(t) => t,
        Err(e) => {
            pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "annotation",
                e.to_string(),
            );
            return ScenarioReport {
                seed,
                tables,
                divergences,
            };
        }
    };
    let prediction = steady_state(&cal);
    let (mut table, divs) = compare_layer(
        seed,
        Layer::Base,
        &cal,
        &prediction,
        &[],
        &base,
        &cfg.tolerances,
    );
    divergences.extend(divs);

    // Threaded smoke layer, folded into the base table.
    if threaded && cfg.threaded_items > 0 {
        match measure(
            topo,
            source_keys,
            &[],
            cfg.threaded_items,
            seed,
            &threaded_executor(seed, cfg.workers),
        ) {
            Ok(thr) => {
                divergences.extend(compare_threaded(
                    seed,
                    &cal,
                    &mut table,
                    &base,
                    &thr,
                    &cfg.tolerances,
                ));
            }
            Err(e) => pipeline_failure(
                &mut divergences,
                seed,
                Layer::Base,
                "threaded run",
                e.to_string(),
            ),
        }
    }
    tables.push(table);

    // Fission layer: Algorithm 2's replicated deployment, when it
    // replicates anything. The replicated run gets its own trace-derived
    // annotations (a join's realized match rate shifts when its input
    // streams interleave differently), falling back to the base layer's
    // where replication hides the per-operator counters.
    if cfg.check_fission {
        let plan = eliminate_bottlenecks(&cal);
        if plan.replicas.iter().any(|&r| r > 1) {
            // The replicated deployment runs up to speedup× faster in
            // virtual time; at a fixed item count the run compresses until
            // the pipeline fill/drain transient dominates the wall clock
            // (at 1M items/s, cfg.items lasts single-digit milliseconds).
            // Scale the run length to hold the measured duration — and
            // thus the transient's relative weight — at the base layer's.
            let speedup = (plan.throughput.items_per_sec()
                / prediction.throughput.items_per_sec().max(1e-12))
            .clamp(1.0, 32.0);
            let fis_items = (cfg.items as f64 * speedup) as u64;
            match measure(
                topo,
                source_keys,
                &plan.replicas,
                fis_items,
                seed,
                &sim_executor(seed),
            ) {
                Ok(fis) => match annotate(topo, &fis, Some(&cal), cfg.min_calibration_samples) {
                    Ok(cal_fis) => {
                        let pred = evaluate_with_replicas(&cal_fis, &plan.replicas);
                        let (table, divs) = compare_layer(
                            seed,
                            Layer::Fission,
                            &cal_fis,
                            &pred,
                            &plan.replicas,
                            &fis,
                            &cfg.tolerances,
                        );
                        divergences.extend(divs);
                        tables.push(table);
                    }
                    Err(e) => pipeline_failure(
                        &mut divergences,
                        seed,
                        Layer::Fission,
                        "annotation",
                        e.to_string(),
                    ),
                },
                Err(e) => pipeline_failure(
                    &mut divergences,
                    seed,
                    Layer::Fission,
                    "sim run",
                    e.to_string(),
                ),
            }
        }
    }

    ScenarioReport {
        seed,
        tables,
        divergences,
    }
}

/// Generates the scenario for `seed` and evaluates it.
pub fn run_scenario(seed: u64, cfg: &OracleConfig, threaded: bool) -> (Scenario, ScenarioReport) {
    let s = scenario(seed, cfg);
    let report = evaluate(&s.topology, &s.source_keys, seed, cfg, threaded);
    (s, report)
}

/// One divergent scenario with its minimized counterexample.
#[derive(Debug, Clone)]
pub struct DivergentCase {
    /// The original generated scenario.
    pub scenario: Scenario,
    /// Its full evaluation report.
    pub report: ScenarioReport,
    /// The delta-debugged minimal counterexample, when minimization ran.
    pub minimized: Option<MinimalCase>,
}

/// The outcome of a full seed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Seeds evaluated, in order.
    pub seeds: Vec<u64>,
    /// Seeds that passed every check.
    pub clean: usize,
    /// Divergent scenarios, in seed order.
    pub cases: Vec<DivergentCase>,
}

impl SweepReport {
    /// True if every seed passed.
    pub fn is_clean(&self) -> bool {
        self.cases.is_empty()
    }
}

/// Sweeps `num_seeds` consecutive seeds starting at `seed_start`. The first
/// [`OracleConfig::threaded_runs`] seeds additionally get the threaded
/// smoke layer. `progress` is invoked after each seed with its report.
pub fn run_sweep(
    cfg: &OracleConfig,
    seed_start: u64,
    num_seeds: u64,
    progress: &mut dyn FnMut(&ScenarioReport),
) -> SweepReport {
    let mut seeds = Vec::new();
    let mut clean = 0usize;
    let mut cases = Vec::new();
    for i in 0..num_seeds {
        let seed = seed_start + i;
        seeds.push(seed);
        let threaded = (i as usize) < cfg.threaded_runs;
        let (s, report) = run_scenario(seed, cfg, threaded);
        progress(&report);
        if report.is_clean() {
            clean += 1;
        } else {
            let minimized = cfg.minimize.then(|| minimize(&s, cfg));
            cases.push(DivergentCase {
                scenario: s,
                report,
                minimized,
            });
        }
    }
    SweepReport {
        seeds,
        clean,
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> OracleConfig {
        OracleConfig {
            items: 4_000,
            calibration_items: 3_000,
            threaded_runs: 0,
            minimize: false,
            ..OracleConfig::default()
        }
    }

    #[test]
    fn sim_vs_analysis_agrees_on_seeded_scenarios() {
        let cfg = quick_cfg();
        for seed in [11, 12, 13] {
            let (_, report) = run_scenario(seed, &cfg, false);
            assert!(
                report.is_clean(),
                "seed {seed} diverged: {:?}",
                report.divergences
            );
            assert!(!report.tables.is_empty());
        }
    }

    #[test]
    fn sweep_counts_clean_seeds() {
        let cfg = quick_cfg();
        let mut seen = 0;
        let sweep = run_sweep(&cfg, 20, 2, &mut |_| seen += 1);
        assert_eq!(seen, 2);
        assert_eq!(sweep.seeds, vec![20, 21]);
        assert_eq!(sweep.clean + sweep.cases.len(), 2);
    }
}
