//! # spinstreams-oracle
//!
//! A differential oracle that cross-validates the three independent
//! implementations of the SpinStreams cost model (§3) against each other:
//!
//! 1. the **analytical prediction** — Algorithm 1 steady-state analysis and
//!    Algorithm 2 fission planning from `spinstreams-analysis`;
//! 2. the **discrete-event simulator** — the virtual-time executor under
//!    pure synthetic service times, which realizes the model's assumptions
//!    almost exactly;
//! 3. the **threaded runtime** — a smoke-scale thread-per-actor run, held
//!    only to load-independent invariants (selectivity ratios, no drops).
//!
//! For each seeded [`scenario`] the [`sweep`](run_sweep) calibrates on the
//! simulator (§4.1), predicts, measures, and [`compares`](compare_layer)
//! throughput, per-operator departure rates, and utilizations within
//! configurable [`Tolerances`]. Scenario generation re-derives every
//! service-time annotation from seed-drawn quantities, so the
//! sim-vs-analysis layers are bit-for-bit reproducible — any divergence is
//! a genuine model/implementation mismatch, not noise.
//!
//! On divergence, the scenario is [`delta-debugged`](minimize) to a minimal
//! counterexample and dumped as a reproducible [`artifact`](write_artifacts)
//! (seed, minimized XML, three-way rate table).

#![warn(missing_docs)]

mod artifact;
mod compare;
mod config;
mod layers;
mod minimize;
mod scenario;
mod sweep;

pub use artifact::{format_report, write_artifacts};
pub use compare::{
    compare_layer, compare_threaded, format_table, Divergence, DivergenceKind, Layer, RateRow,
    RateTable,
};
pub use config::{OracleConfig, Tolerances};
pub use layers::{
    annotate, calibrate, measure, measure_with, sim_executor, threaded_executor, LayerMeasurement,
    OracleError,
};
pub use minimize::{minimize, MinimalCase};
pub use scenario::{scenario, Scenario};
pub use sweep::{evaluate, run_scenario, run_sweep, DivergentCase, ScenarioReport, SweepReport};
