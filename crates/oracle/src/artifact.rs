//! Reproducible counterexample artifacts.
//!
//! Each divergent seed dumps:
//!
//! * `seed-<N>.xml` — the generated scenario (topology + source key
//!   distribution) in the tool's XML schema;
//! * `seed-<N>-min.xml` — the delta-debugged minimal counterexample, when
//!   minimization ran;
//! * `seed-<N>.txt` — the human-readable report: repro command, the
//!   divergence list, and the three-way rate tables.

use crate::{format_table, DivergentCase};
use spinstreams_xml::scenario_to_xml;
use std::io;
use std::path::{Path, PathBuf};

/// Renders the text report of a divergent case.
pub fn format_report(case: &DivergentCase) -> String {
    let seed = case.scenario.seed;
    let mut out = String::new();
    out.push_str("SpinStreams differential oracle — divergent scenario\n");
    out.push_str(&format!("seed: {seed}\n"));
    out.push_str(&format!(
        "reproduce: spinstreams-cli oracle --seed-start {seed} --seeds 1 --no-threaded\n\n"
    ));

    out.push_str(&format!(
        "divergences ({}):\n",
        case.report.divergences.len()
    ));
    for d in &case.report.divergences {
        out.push_str(&format!("  [{}] {}\n", d.layer, d.detail));
    }
    out.push('\n');

    for table in &case.report.tables {
        out.push_str(&format_table(table));
        out.push('\n');
    }

    if let Some(min) = &case.minimized {
        out.push_str(&format!(
            "minimized: {} operators, {} edges (from {} operators, {} edges; \
             {} pipeline evaluations)\n",
            min.scenario.topology.num_operators(),
            min.scenario.topology.num_edges(),
            case.scenario.topology.num_operators(),
            case.scenario.topology.num_edges(),
            min.checks,
        ));
        out.push_str(&format!(
            "surviving divergences ({}):\n",
            min.divergences.len()
        ));
        for d in &min.divergences {
            out.push_str(&format!("  [{}] {}\n", d.layer, d.detail));
        }
        out.push('\n');
        out.push_str(&min.scenario.topology.to_string());
    }
    out
}

/// Writes the artifact files for one divergent case into `dir` (created if
/// missing). Returns the paths written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifacts(dir: &Path, case: &DivergentCase) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let seed = case.scenario.seed;
    let mut written = Vec::new();

    let xml = scenario_to_xml(
        &case.scenario.topology,
        &format!("oracle-seed-{seed}"),
        Some(&case.scenario.source_keys),
    );
    let path = dir.join(format!("seed-{seed}.xml"));
    std::fs::write(&path, xml)?;
    written.push(path);

    if let Some(min) = &case.minimized {
        let xml = scenario_to_xml(
            &min.scenario.topology,
            &format!("oracle-seed-{seed}-min"),
            Some(&min.scenario.source_keys),
        );
        let path = dir.join(format!("seed-{seed}-min.xml"));
        std::fs::write(&path, xml)?;
        written.push(path);
    }

    let path = dir.join(format!("seed-{seed}.txt"));
    std::fs::write(&path, format_report(case))?;
    written.push(path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, MinimalCase, OracleConfig, ScenarioReport};
    use spinstreams_xml::scenario_from_xml;

    fn fake_case(minimized: bool) -> DivergentCase {
        let cfg = OracleConfig::default();
        let s = scenario(9, &cfg);
        DivergentCase {
            report: ScenarioReport {
                seed: s.seed,
                tables: Vec::new(),
                divergences: Vec::new(),
            },
            minimized: minimized.then(|| MinimalCase {
                scenario: s.clone(),
                divergences: Vec::new(),
                checks: 1,
            }),
            scenario: s,
        }
    }

    #[test]
    fn artifacts_round_trip_through_the_xml_schema() {
        let dir = std::env::temp_dir().join(format!("oracle-artifact-test-{}", std::process::id()));
        let case = fake_case(true);
        let written = write_artifacts(&dir, &case).unwrap();
        assert_eq!(written.len(), 3);
        let text = std::fs::read_to_string(&written[0]).unwrap();
        let (topo, keys) = scenario_from_xml(&text).unwrap();
        assert_eq!(topo.num_operators(), case.scenario.topology.num_operators());
        assert_eq!(keys, Some(case.scenario.source_keys.clone()));
        let report = std::fs::read_to_string(&written[2]).unwrap();
        assert!(report.contains("reproduce: spinstreams-cli oracle --seed-start 9"));
        assert!(report.contains("minimized:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_without_minimization_omits_that_section() {
        let case = fake_case(false);
        let report = format_report(&case);
        assert!(!report.contains("minimized:"));
    }
}
