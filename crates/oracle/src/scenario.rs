//! Deterministic oracle scenarios.
//!
//! `topogen` profiles operators against the wall clock, so its service-time
//! annotations jitter run to run. The oracle re-derives every annotation
//! from seed-drawn quantities instead: each operator's service time becomes
//! its declared synthetic `work_ns` (exactly what the simulator charges
//! under pure synthetic time), and the source rate is re-anchored to the
//! fastest such rate. The resulting scenario — structure, parameters,
//! selectivities, key skew, rates — is a pure function of the seed, which
//! makes the sim-vs-analysis layers of the sweep fully reproducible.

use crate::OracleConfig;
use spinstreams_core::{KeyDistribution, OperatorId, ServiceRate, ServiceTime, Topology};
use spinstreams_topogen::generate;

/// One seeded oracle scenario: a topology plus its source key stream.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// The (pre-calibration) topology, with deterministic annotations.
    pub topology: Topology,
    /// Key-frequency distribution of the source stream.
    pub source_keys: KeyDistribution,
}

/// Generates the deterministic scenario for `seed`.
pub fn scenario(seed: u64, cfg: &OracleConfig) -> Scenario {
    let g = generate(seed, &cfg.topogen);
    let source = g.topology.source();
    let mut b = g.topology.to_builder();
    let mut fastest = 0.0f64;
    for id in g.topology.operator_ids() {
        if id == source {
            continue;
        }
        let spec = b.operator_mut(id);
        let work_ns = spec
            .params
            .get("work_ns")
            .copied()
            .unwrap_or(1_000.0)
            .max(1.0);
        spec.service_time = ServiceTime::from_secs(work_ns * 1e-9);
        fastest = fastest.max(spec.service_time.rate().items_per_sec());
    }
    // Source: §5.3's testbed rule, re-applied on the deterministic rates.
    let src_rate = fastest * cfg.topogen.source_rate_factor;
    b.operator_mut(source).service_time = ServiceRate::per_sec(src_rate).service_time();
    let topology = b
        .build()
        .expect("re-annotating service times preserves structure");
    Scenario {
        seed,
        topology,
        source_keys: g.source_keys,
    }
}

impl Scenario {
    /// The source operator's id (always [`Topology::source`]).
    pub fn source(&self) -> OperatorId {
        self.topology.source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_fully_deterministic() {
        let cfg = OracleConfig::default();
        let a = scenario(42, &cfg);
        let b = scenario(42, &cfg);
        // Unlike raw topogen output, *every* annotation matches — service
        // times included.
        assert_eq!(a.topology, b.topology);
        assert_eq!(a.source_keys, b.source_keys);
    }

    #[test]
    fn source_rate_anchored_to_fastest_deterministic_rate() {
        let cfg = OracleConfig::default();
        let s = scenario(7, &cfg);
        let fastest = s
            .topology
            .operator_ids()
            .skip(1)
            .map(|id| s.topology.operator(id).service_rate().items_per_sec())
            .fold(0.0, f64::max);
        let src = s
            .topology
            .operator(s.source())
            .service_rate()
            .items_per_sec();
        assert!((src - fastest * cfg.topogen.source_rate_factor).abs() / src < 1e-9);
    }

    #[test]
    fn some_scenarios_have_non_identity_sources() {
        let cfg = OracleConfig::default();
        let non_identity = (0..10)
            .map(|seed| scenario(seed, &cfg))
            .filter(|s| {
                let f = s.topology.operator(s.source()).selectivity.rate_factor();
                (f - 1.0).abs() > 1e-9
            })
            .count();
        assert!(non_identity >= 5, "only {non_identity}/10 non-identity");
    }
}
