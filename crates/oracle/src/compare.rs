//! The three-way comparison: analytical prediction vs simulator vs
//! threaded runtime.

use crate::{LayerMeasurement, Tolerances};
use spinstreams_analysis::SteadyStateReport;
use spinstreams_core::{OperatorId, Topology};

/// Which deployment a rate table describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// The topology as generated (one replica per operator, Algorithm 1).
    Base,
    /// The Algorithm 2 fission plan (replicated deployment).
    Fission,
    /// The Algorithm 3 fusion group, deployed once monomorphized and once
    /// force-interpreted (differential check of the static kernel layer).
    Fusion,
}

impl std::fmt::Display for Layer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Layer::Base => write!(f, "base"),
            Layer::Fission => write!(f, "fission"),
            Layer::Fusion => write!(f, "fusion"),
        }
    }
}

/// One operator's row in the three-way rate table.
#[derive(Debug, Clone)]
pub struct RateRow {
    /// The operator.
    pub operator: OperatorId,
    /// Operator name.
    pub name: String,
    /// Replication degree in this layer's deployment.
    pub replicas: usize,
    /// Model-predicted departure rate (items/s).
    pub predicted_departure: f64,
    /// Sim-measured departure rate (items/s).
    pub sim_departure: Option<f64>,
    /// Threaded-measured departure rate (items/s), when the layer ran.
    pub threaded_departure: Option<f64>,
    /// Model-predicted utilization `ρ`.
    pub predicted_utilization: f64,
    /// Sim-measured busy fraction.
    pub sim_utilization: Option<f64>,
    /// Items the operator consumed in the sim run (sample-size guard).
    pub sim_items_in: u64,
}

/// The three-way rate table of one layer of one scenario.
#[derive(Debug, Clone)]
pub struct RateTable {
    /// Which deployment this table describes.
    pub layer: Layer,
    /// Model-predicted throughput (items ingested per second, §5.2).
    pub predicted_throughput: f64,
    /// Sim-measured throughput (source emission rate divided by the
    /// source's selectivity rate factor).
    pub sim_throughput: Option<f64>,
    /// Threaded-measured throughput, when the layer ran.
    pub threaded_throughput: Option<f64>,
    /// Per-operator rows, indexed by operator id.
    pub rows: Vec<RateRow>,
}

/// What diverged.
#[derive(Debug, Clone, PartialEq)]
pub enum DivergenceKind {
    /// Predicted vs sim-measured topology throughput.
    Throughput,
    /// Predicted vs sim-measured departure rate of one operator.
    Departure(OperatorId),
    /// Predicted utilization vs sim-measured busy fraction of one operator.
    Utilization(OperatorId),
    /// Sim vs threaded measured selectivity ratio of one operator.
    ThreadedRatio(OperatorId),
    /// The threaded run dropped items (BAS timeout fired).
    ThreadedDrops,
    /// Monomorphized vs interpreted deployment of the same fusion group
    /// disagreed on one operator's exact item counters.
    FusionCounts(OperatorId),
    /// A pipeline stage failed outright (codegen/engine error).
    Pipeline,
}

/// One tolerance violation.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The scenario seed.
    pub seed: u64,
    /// Which deployment layer.
    pub layer: Layer,
    /// What diverged.
    pub kind: DivergenceKind,
    /// Human-readable account with both values and the band.
    pub detail: String,
}

fn rel_err(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured.abs().max(f64::MIN_POSITIVE)
}

/// Compares one layer's analytical prediction against its sim measurement,
/// producing the rate table and any tolerance violations.
///
/// Operators that consumed fewer than [`Tolerances::min_samples`] items in
/// the sim run are reported in the table but excluded from the checks.
pub fn compare_layer(
    seed: u64,
    layer: Layer,
    topo: &Topology,
    prediction: &SteadyStateReport,
    replicas: &[usize],
    sim: &LayerMeasurement,
    tol: &Tolerances,
) -> (RateTable, Vec<Divergence>) {
    let src = topo.source();
    let src_factor = topo.operator(src).selectivity.rate_factor();
    let mut divergences = Vec::new();

    // Throughput: predicted ingestion vs measured emission / factor.
    let sim_throughput = sim.departures[src.0].map(|emit| emit / src_factor.max(f64::MIN_POSITIVE));
    let predicted_throughput = prediction.throughput.items_per_sec();
    if let Some(meas) = sim_throughput {
        let err = rel_err(predicted_throughput, meas);
        if err > tol.throughput_rel {
            divergences.push(Divergence {
                seed,
                layer,
                kind: DivergenceKind::Throughput,
                detail: format!(
                    "throughput: predicted {predicted_throughput:.1}/s, sim {meas:.1}/s \
                     (rel err {err:.3} > {:.3})",
                    tol.throughput_rel
                ),
            });
        }
    }

    let mut rows = Vec::with_capacity(topo.num_operators());
    for id in topo.operator_ids() {
        let m = prediction.metric(id);
        let row = RateRow {
            operator: id,
            name: topo.operator(id).name.clone(),
            replicas: replicas.get(id.0).copied().unwrap_or(1),
            predicted_departure: m.departure,
            sim_departure: sim.departures[id.0],
            threaded_departure: None,
            predicted_utilization: m.utilization,
            sim_utilization: sim.utilizations[id.0],
            sim_items_in: sim.items_in[id.0],
        };

        // Sample-size guard: sources never consume, so gate them on
        // emissions instead.
        let samples = if id == src {
            sim.items_out[id.0]
        } else {
            sim.items_in[id.0]
        };
        if samples >= tol.min_samples {
            if let Some(meas) = row.sim_departure {
                let err = rel_err(row.predicted_departure, meas);
                if err > tol.departure_rel {
                    divergences.push(Divergence {
                        seed,
                        layer,
                        kind: DivergenceKind::Departure(id),
                        detail: format!(
                            "{} departure: predicted {:.1}/s, sim {meas:.1}/s \
                             (rel err {err:.3} > {:.3})",
                            row.name, row.predicted_departure, tol.departure_rel
                        ),
                    });
                }
            }
            if let Some(util) = row.sim_utilization {
                let err = (row.predicted_utilization - util).abs();
                if err > tol.utilization_abs {
                    divergences.push(Divergence {
                        seed,
                        layer,
                        kind: DivergenceKind::Utilization(id),
                        detail: format!(
                            "{} utilization: predicted {:.3}, sim busy fraction {util:.3} \
                             (abs err {err:.3} > {:.3})",
                            row.name, row.predicted_utilization, tol.utilization_abs
                        ),
                    });
                }
            }
        }
        rows.push(row);
    }

    (
        RateTable {
            layer,
            predicted_throughput,
            sim_throughput,
            threaded_throughput: None,
            rows,
        },
        divergences,
    )
}

/// Folds a threaded smoke measurement into `table` and checks the
/// load-independent invariants: no drops, and per-operator selectivity
/// ratios within the statistical band of the sim layer's. Departure rates
/// are recorded in the table for the report, but not gated — on a loaded
/// or small host the threaded engine cannot exhibit modeled parallelism.
pub fn compare_threaded(
    seed: u64,
    topo: &Topology,
    table: &mut RateTable,
    sim: &LayerMeasurement,
    threaded: &LayerMeasurement,
    tol: &Tolerances,
) -> Vec<Divergence> {
    let src = topo.source();
    let src_factor = topo.operator(src).selectivity.rate_factor();
    let mut divergences = Vec::new();

    table.threaded_throughput =
        threaded.departures[src.0].map(|emit| emit / src_factor.max(f64::MIN_POSITIVE));
    for row in table.rows.iter_mut() {
        row.threaded_departure = threaded.departures[row.operator.0];
    }

    if threaded.dropped > 0 {
        divergences.push(Divergence {
            seed,
            layer: table.layer,
            kind: DivergenceKind::ThreadedDrops,
            detail: format!("threaded run dropped {} items", threaded.dropped),
        });
    }

    // Selectivity ratios are timing-free: they must agree between the
    // layers wherever both saw enough traffic.
    let guard = tol.min_samples.min(50);
    for id in topo.operator_ids() {
        if id == src {
            continue;
        }
        if sim.items_in[id.0] < tol.min_samples || threaded.items_in[id.0] < guard {
            continue;
        }
        let (Some(a), Some(b)) = (sim.selectivity_ratio(id), threaded.selectivity_ratio(id)) else {
            continue;
        };
        let err = rel_err(a, b);
        if err > tol.threaded_ratio_rel {
            divergences.push(Divergence {
                seed,
                layer: table.layer,
                kind: DivergenceKind::ThreadedRatio(id),
                detail: format!(
                    "{} selectivity ratio: sim {a:.3}, threaded {b:.3} \
                     (rel err {err:.3} > {:.3})",
                    topo.operator(id).name,
                    tol.threaded_ratio_rel
                ),
            });
        }
    }
    divergences
}

/// Renders a rate table as fixed-width text (the artifact/report format).
pub fn format_table(table: &RateTable) -> String {
    fn opt(v: Option<f64>) -> String {
        v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
    }
    let mut out = String::new();
    out.push_str(&format!(
        "layer: {}\nthroughput (items ingested/s): predicted {:.1}  sim {}  threaded {}\n",
        table.layer,
        table.predicted_throughput,
        opt(table.sim_throughput),
        opt(table.threaded_throughput),
    ));
    out.push_str(&format!(
        "{:<4} {:<28} {:>3} {:>12} {:>12} {:>12} {:>7} {:>7} {:>8}\n",
        "op", "name", "n", "pred δ/s", "sim δ/s", "thr δ/s", "pred ρ", "sim ρ", "items"
    ));
    for r in &table.rows {
        out.push_str(&format!(
            "{:<4} {:<28} {:>3} {:>12.1} {:>12} {:>12} {:>7.3} {:>7} {:>8}\n",
            r.operator.0,
            r.name,
            r.replicas,
            r.predicted_departure,
            opt(r.sim_departure),
            opt(r.threaded_departure),
            r.predicted_utilization,
            r.sim_utilization
                .map(|u| format!("{u:.3}"))
                .unwrap_or_else(|| "-".into()),
            r.sim_items_in,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_analysis::steady_state;
    use spinstreams_core::{OperatorSpec, ServiceTime, Topology};

    fn two_op_topo() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let k = b.add_operator(OperatorSpec::stateless(
            "sink",
            ServiceTime::from_millis(2.0),
        ));
        b.add_edge(s, k, 1.0).unwrap();
        b.build().unwrap()
    }

    fn exact_measurement(report: &SteadyStateReport) -> LayerMeasurement {
        LayerMeasurement {
            departures: report.metrics.iter().map(|m| Some(m.departure)).collect(),
            utilizations: report
                .metrics
                .iter()
                .enumerate()
                .map(|(i, m)| if i == 0 { None } else { Some(m.utilization) })
                .collect(),
            items_in: report.metrics.iter().map(|_| 10_000).collect(),
            items_out: report.metrics.iter().map(|_| 10_000).collect(),
            busy_secs: report.metrics.iter().map(|_| None).collect(),
            dropped: 0,
        }
    }

    #[test]
    fn exact_agreement_produces_no_divergence() {
        let t = two_op_topo();
        let report = steady_state(&t);
        let sim = exact_measurement(&report);
        let (table, divs) = compare_layer(
            1,
            Layer::Base,
            &t,
            &report,
            &[],
            &sim,
            &Tolerances::default(),
        );
        assert!(divs.is_empty(), "{divs:?}");
        assert_eq!(table.rows.len(), 2);
        assert!(table.sim_throughput.is_some());
    }

    #[test]
    fn out_of_band_throughput_is_flagged() {
        let t = two_op_topo();
        let report = steady_state(&t);
        let mut sim = exact_measurement(&report);
        sim.departures[0] = sim.departures[0].map(|d| d * 1.5);
        let (_, divs) = compare_layer(
            1,
            Layer::Base,
            &t,
            &report,
            &[],
            &sim,
            &Tolerances::default(),
        );
        assert!(divs
            .iter()
            .any(|d| matches!(d.kind, DivergenceKind::Throughput)));
        // The source departure row diverges with it.
        assert!(divs
            .iter()
            .any(|d| matches!(d.kind, DivergenceKind::Departure(OperatorId(0)))));
    }

    #[test]
    fn starved_operators_are_exempt() {
        let t = two_op_topo();
        let report = steady_state(&t);
        let mut sim = exact_measurement(&report);
        sim.departures[1] = Some(1.0); // wildly off...
        sim.items_in[1] = 3; // ...but starved: only 3 items seen
        let (_, divs) = compare_layer(
            1,
            Layer::Base,
            &t,
            &report,
            &[],
            &sim,
            &Tolerances::default(),
        );
        assert!(divs.is_empty(), "{divs:?}");
    }

    #[test]
    fn threaded_ratio_mismatch_is_flagged() {
        let t = two_op_topo();
        let report = steady_state(&t);
        let sim = exact_measurement(&report);
        let (mut table, _) = compare_layer(
            1,
            Layer::Base,
            &t,
            &report,
            &[],
            &sim,
            &Tolerances::default(),
        );
        let mut thr = exact_measurement(&report);
        thr.items_out[1] = 5_000; // ratio 0.5 vs sim's 1.0
        let divs = compare_threaded(1, &t, &mut table, &sim, &thr, &Tolerances::default());
        assert!(divs
            .iter()
            .any(|d| matches!(d.kind, DivergenceKind::ThreadedRatio(OperatorId(1)))));
        assert!(table.threaded_throughput.is_some());
    }

    #[test]
    fn table_formats_without_panicking() {
        let t = two_op_topo();
        let report = steady_state(&t);
        let sim = exact_measurement(&report);
        let (table, _) = compare_layer(
            1,
            Layer::Base,
            &t,
            &report,
            &[],
            &sim,
            &Tolerances::default(),
        );
        let text = format_table(&table);
        assert!(text.contains("sink"));
        assert!(text.contains("base"));
    }
}
