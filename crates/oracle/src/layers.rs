//! The three measurement layers: calibration, virtual-time simulation, and
//! threaded smoke runs.

use crate::OracleConfig;
use spinstreams_codegen::{
    build_actor_graph, CodegenError, CodegenOptions, FusionGroup, FusionStrategy,
};
use spinstreams_core::{KeyDistribution, OperatorId, Selectivity, ServiceTime, Topology};
use spinstreams_runtime::{
    execute, EngineConfig, EngineError, Executor, ExecutorKind, PinningConfig, SimConfig,
};
use std::fmt;

/// Errors from an oracle pipeline stage.
#[derive(Debug)]
#[non_exhaustive]
pub enum OracleError {
    /// Code generation failed.
    Codegen(CodegenError),
    /// The runtime rejected or failed the actor graph.
    Engine(EngineError),
    /// A rebuilt topology failed validation.
    Build {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Codegen(e) => write!(f, "codegen: {e}"),
            OracleError::Engine(e) => write!(f, "engine: {e}"),
            OracleError::Build { reason } => write!(f, "build: {reason}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<CodegenError> for OracleError {
    fn from(e: CodegenError) -> Self {
        OracleError::Codegen(e)
    }
}

impl From<EngineError> for OracleError {
    fn from(e: EngineError) -> Self {
        OracleError::Engine(e)
    }
}

/// The deterministic virtual-time executor used by the sim layer: pure
/// synthetic service times (bit-for-bit reproducible) and mailboxes deep
/// enough to absorb bursty emission patterns (flatmaps, joins) at
/// near-saturation stages — head-of-line blocking on a shallow buffer
/// throttles throughput in a way the fluid model deliberately ignores.
/// The buffer-fill transient this costs is amortized by scaling run
/// lengths with predicted throughput (see the fission layer in `sweep`).
pub fn sim_executor(seed: u64) -> Executor {
    Executor::VirtualTime(SimConfig {
        mailbox_capacity: 256,
        seed,
        intrinsic_time: false,
        ..SimConfig::default()
    })
}

/// The threaded executor used by the smoke layer: thread-per-actor by
/// default, or the worker-pool executor when `workers` is set (`Some(0)`
/// = one worker per core). The oracle's rate comparisons must hold under
/// either scheduling discipline — and under core pinning, which reorders
/// nothing semantically but changes every thread's placement.
pub fn threaded_executor(seed: u64, workers: Option<usize>, pinning: &PinningConfig) -> Executor {
    Executor::Threads(EngineConfig {
        seed,
        executor: match workers {
            Some(n) => ExecutorKind::Pool { workers: n },
            None => ExecutorKind::ThreadPerActor,
        },
        pinning: pinning.clone(),
        ..EngineConfig::default()
    })
}

/// Per-operator rates measured in one layer run.
#[derive(Debug, Clone)]
pub struct LayerMeasurement {
    /// Measured departure rate per operator (items/s; `None` below two
    /// departures). For the source this is the *emission* rate.
    pub departures: Vec<Option<f64>>,
    /// Measured busy fraction per operator (`None` for the source, for
    /// replicated/fused operators spanning several actors, or when the run
    /// had no measurable span).
    pub utilizations: Vec<Option<f64>>,
    /// Items consumed per operator (at its logical input actor).
    pub items_in: Vec<u64>,
    /// Items emitted per operator (at its logical departure actor).
    pub items_out: Vec<u64>,
    /// Busy seconds per operator (`None` under the same conditions as
    /// `utilizations`).
    pub busy_secs: Vec<Option<f64>>,
    /// Items dropped on send timeout anywhere in the run.
    pub dropped: u64,
}

impl LayerMeasurement {
    /// Measured `items_out / items_in` selectivity ratio of one operator,
    /// if it consumed anything.
    pub fn selectivity_ratio(&self, id: OperatorId) -> Option<f64> {
        let inn = self.items_in[id.0];
        if inn == 0 {
            None
        } else {
            Some(self.items_out[id.0] as f64 / inn as f64)
        }
    }
}

/// Deploys `topo` (optionally replicated) and measures per-operator rates
/// on the given executor.
///
/// # Errors
///
/// Propagates codegen/engine failures.
pub fn measure(
    topo: &Topology,
    source_keys: &KeyDistribution,
    replicas: &[usize],
    items: u64,
    seed: u64,
    executor: &Executor,
) -> Result<LayerMeasurement, OracleError> {
    measure_with(
        topo,
        source_keys,
        replicas,
        &[],
        FusionStrategy::Monomorphize,
        items,
        seed,
        executor,
    )
}

/// [`measure`] generalized with fusion groups and an explicit
/// [`FusionStrategy`] — the fusion layer deploys the same groups once
/// monomorphized and once force-interpreted and compares the two.
///
/// # Errors
///
/// Propagates codegen/engine failures.
#[allow(clippy::too_many_arguments)]
pub fn measure_with(
    topo: &Topology,
    source_keys: &KeyDistribution,
    replicas: &[usize],
    fusions: &[FusionGroup],
    fusion: FusionStrategy,
    items: u64,
    seed: u64,
    executor: &Executor,
) -> Result<LayerMeasurement, OracleError> {
    let opts = CodegenOptions {
        items,
        seed,
        fusion,
        ..CodegenOptions::default()
    };
    let plan = build_actor_graph(topo, Some(source_keys.clone()), replicas, fusions, &opts)?;
    let report = execute(plan.graph, executor)?;

    let n = topo.num_operators();
    let wall = report.wall.as_secs_f64();
    let mut departures = Vec::with_capacity(n);
    let mut utilizations = Vec::with_capacity(n);
    let mut items_in = Vec::with_capacity(n);
    let mut items_out = Vec::with_capacity(n);
    let mut busy_secs = Vec::with_capacity(n);
    for id in topo.operator_ids() {
        let dep = report.actor(plan.departure_actor[id.0]);
        let inp = report.actor(plan.input_actor[id.0]);
        // All rates share the run's wall clock as timebase. The per-actor
        // first-to-last emission span (`ActorReport::departure_rate`) would
        // overstate bursty low-rate emitters — a windowed aggregate's
        // fill delay falls outside its span — and the comparison needs
        // flow-consistent rates across operators.
        departures.push(if dep.items_out >= 2 && wall > 0.0 {
            Some(dep.items_out as f64 / wall)
        } else {
            None
        });
        items_in.push(inp.items_in);
        items_out.push(dep.items_out);
        // Utilization is only well-defined when the operator is exactly one
        // actor (sources have no measured busy time; emitter/collector
        // chains split it).
        let single_actor = plan.input_actor[id.0] == plan.departure_actor[id.0];
        if id == topo.source() || !single_actor || wall <= 0.0 {
            utilizations.push(None);
            busy_secs.push(None);
        } else {
            utilizations.push(Some(inp.busy.as_secs_f64() / wall));
            busy_secs.push(Some(inp.busy.as_secs_f64()));
        }
    }

    Ok(LayerMeasurement {
        departures,
        utilizations,
        items_in,
        items_out,
        busy_secs,
        dropped: report.total_dropped(),
    })
}

/// Rewrites a topology's measured annotations from one run's counters —
/// the §4.1 profiling step: per-operator service times (busy seconds per
/// consumed item), selectivities (`items_out / items_in`), and routing
/// probabilities (observable wherever an edge's target has no other
/// input; the rest keep their declared weights, rescaled to the leftover
/// mass).
///
/// Annotating from the very run the oracle then compares against is
/// deliberate: realized selectivities and routing splits are
/// trace-dependent (a band-join's match rate depends on how its two input
/// streams interleave; routers split by key hash, not by the declared
/// weights), so annotations profiled on any *other* run cannot describe
/// this one exactly. Sharing the trace removes profiling bias from the
/// comparison — whatever still diverges is the prediction math itself.
///
/// Operators below `min_samples` consumed items — and annotations a
/// replicated deployment cannot observe per-operator (busy time split
/// across replica actors) — fall back to `fallback`'s values (typically
/// the base layer's calibrated topology) when given, else keep their
/// declared ones.
///
/// # Errors
///
/// Fails with [`OracleError::Build`] if the annotated topology no longer
/// validates.
pub fn annotate(
    topo: &Topology,
    meas: &LayerMeasurement,
    fallback: Option<&Topology>,
    min_samples: u64,
) -> Result<Topology, OracleError> {
    let mut ops = topo.operators().to_vec();
    for id in topo.operator_ids() {
        if id == topo.source() {
            continue;
        }
        let inn = meas.items_in[id.0];
        let spec = &mut ops[id.0];
        if inn >= min_samples {
            match meas.busy_secs[id.0] {
                Some(busy) => spec.service_time = ServiceTime::from_secs(busy / inn as f64),
                None => {
                    if let Some(f) = fallback {
                        spec.service_time = f.operator(id).service_time;
                    }
                }
            }
            spec.selectivity = Selectivity::output(meas.items_out[id.0] as f64 / inn as f64);
        } else if let Some(f) = fallback {
            spec.service_time = f.operator(id).service_time;
            spec.selectivity = f.operator(id).selectivity;
        }
    }

    let mut edges = topo.edges().to_vec();
    for u in topo.operator_ids() {
        let out = topo.out_edges(u);
        if out.len() < 2 {
            continue; // a single out-edge always carries probability 1
        }
        let emitted = meas.items_out[u.0];
        if emitted < min_samples {
            continue;
        }
        let mut probs: Vec<(usize, f64, bool)> = Vec::with_capacity(out.len());
        for e in out {
            let edge = topo.edge(*e);
            if topo.in_edges(edge.to).len() == 1 {
                probs.push((e.0, meas.items_in[edge.to.0] as f64 / emitted as f64, true));
            } else {
                probs.push((e.0, edge.probability, false));
            }
        }
        let measured_mass: f64 = probs.iter().filter(|p| p.2).map(|p| p.1).sum();
        let declared_rest: f64 = probs.iter().filter(|p| !p.2).map(|p| p.1).sum();
        if declared_rest > 0.0 {
            let scale = (1.0 - measured_mass).max(0.0) / declared_rest;
            for p in probs.iter_mut().filter(|p| !p.2) {
                p.1 *= scale;
            }
        }
        // Renormalize exactly (in-flight items make counts sum slightly
        // short) and keep every probability valid in (0, 1].
        let total: f64 = probs.iter().map(|p| p.1.max(1e-9)).sum();
        for (idx, p, _) in probs {
            edges[idx].probability = (p.max(1e-9) / total).min(1.0);
        }
    }

    Topology::from_parts(ops, edges).map_err(|e| OracleError::Build {
        reason: format!("annotated topology failed validation: {e}"),
    })
}

/// The §4.1 calibration step: executes the topology once on the
/// deterministic simulator and [`annotate`]s it from the measured
/// counters. Operators that consumed fewer than
/// `cfg.min_calibration_samples` items keep their declared annotations.
///
/// # Errors
///
/// Propagates codegen/engine failures; fails with [`OracleError::Build`] if
/// the calibrated topology no longer validates.
pub fn calibrate(
    topo: &Topology,
    source_keys: &KeyDistribution,
    cfg: &OracleConfig,
    seed: u64,
) -> Result<Topology, OracleError> {
    let meas = measure(
        topo,
        source_keys,
        &[],
        cfg.calibration_items,
        seed,
        &sim_executor(seed),
    )?;
    annotate(topo, &meas, None, cfg.min_calibration_samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario;

    #[test]
    fn sim_measurement_is_deterministic() {
        let cfg = OracleConfig::default();
        let s = scenario(3, &cfg);
        let run = || {
            let cal = calibrate(&s.topology, &s.source_keys, &cfg, s.seed).unwrap();
            measure(
                &cal,
                &s.source_keys,
                &[],
                2_000,
                s.seed,
                &sim_executor(s.seed),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.items_in, b.items_in);
        assert_eq!(a.items_out, b.items_out);
        assert_eq!(a.departures, b.departures);
    }

    #[test]
    fn calibration_recovers_declared_work() {
        let cfg = OracleConfig::default();
        let s = scenario(5, &cfg);
        let cal = calibrate(&s.topology, &s.source_keys, &cfg, s.seed).unwrap();
        // Under pure synthetic time, every sufficiently-fed operator's
        // calibrated service time is at least its declared work_ns (joins
        // and windows may add per-invocation synthetic cost on top).
        for id in cal.operator_ids().skip(1) {
            let declared = s.topology.operator(id).service_time.as_secs();
            let measured = cal.operator(id).service_time.as_secs();
            if measured != declared {
                // rewritten: must not have shrunk below the declared work
                assert!(
                    measured >= declared * 0.99,
                    "{id}: measured {measured} declared {declared}"
                );
            }
        }
    }
}
