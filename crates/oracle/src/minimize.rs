//! Greedy delta-debugging of a divergent scenario down to a minimal
//! counterexample.
//!
//! The minimizer works on the *pre-calibration* scenario (the seed's
//! deterministic topology), shrinking it while the full oracle pipeline
//! still reports a divergence. Reduction steps, in priority order:
//!
//! 1. remove a vertex (with incident edges; upstream routing probabilities
//!    renormalized),
//! 2. remove an edge (target must keep an input; origin renormalized),
//! 3. replace an operator with a plain `identity-map` of the same service
//!    time (drops selectivity, state, and factory parameters),
//! 4. reset the source key distribution to uniform,
//! 5. reset the source selectivity to identity.
//!
//! Every candidate is validated through [`Topology::from_parts`] before it
//! is evaluated; structurally invalid candidates are rejected without
//! spending budget. The search re-runs its pass list from the top after
//! every accepted reduction and stops at a fixpoint or when
//! [`OracleConfig::minimize_budget`] pipeline evaluations are spent.

use crate::{evaluate, Divergence, OracleConfig, Scenario};
use spinstreams_core::{
    Edge, KeyDistribution, OperatorId, OperatorSpec, Selectivity, StateClass, Topology,
};

/// A minimized counterexample.
#[derive(Debug, Clone)]
pub struct MinimalCase {
    /// The shrunken scenario (same seed as the original).
    pub scenario: Scenario,
    /// Divergences the minimized scenario still exhibits.
    pub divergences: Vec<Divergence>,
    /// Pipeline evaluations spent.
    pub checks: usize,
}

/// Shrinks a divergent scenario with the real oracle pipeline (threaded
/// layer excluded — minimization must be deterministic and cheap).
pub fn minimize(divergent: &Scenario, cfg: &OracleConfig) -> MinimalCase {
    let seed = divergent.seed;
    minimize_with(divergent, cfg.minimize_budget, |topo, keys| {
        let report = evaluate(topo, keys, seed, cfg, false);
        (!report.divergences.is_empty()).then_some(report.divergences)
    })
}

/// Candidate state during minimization.
#[derive(Clone)]
struct Candidate {
    ops: Vec<OperatorSpec>,
    edges: Vec<Edge>,
    keys: KeyDistribution,
}

impl Candidate {
    /// Removes vertex `v` and its incident edges, renormalizing the
    /// remaining output probabilities of every predecessor.
    fn remove_vertex(&self, v: usize) -> Candidate {
        let mut ops = self.ops.clone();
        ops.remove(v);
        let mut lost = vec![0.0f64; self.ops.len()];
        for e in self.edges.iter().filter(|e| e.to.0 == v) {
            lost[e.from.0] += e.probability;
        }
        let remap = |id: OperatorId| OperatorId(if id.0 > v { id.0 - 1 } else { id.0 });
        let edges = self
            .edges
            .iter()
            .filter(|e| e.from.0 != v && e.to.0 != v)
            .map(|e| {
                let scale = 1.0 - lost[e.from.0];
                Edge {
                    from: remap(e.from),
                    to: remap(e.to),
                    probability: if scale > 0.0 {
                        (e.probability / scale).min(1.0)
                    } else {
                        e.probability
                    },
                }
            })
            .collect();
        Candidate {
            ops,
            edges,
            keys: self.keys.clone(),
        }
    }

    /// Removes edge index `idx`, renormalizing the origin's remaining
    /// output probabilities.
    fn remove_edge(&self, idx: usize) -> Candidate {
        let gone = self.edges[idx];
        let edges = self
            .edges
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != idx)
            .map(|(_, e)| {
                if e.from == gone.from {
                    let scale = 1.0 - gone.probability;
                    Edge {
                        probability: if scale > 0.0 {
                            (e.probability / scale).min(1.0)
                        } else {
                            e.probability
                        },
                        ..*e
                    }
                } else {
                    *e
                }
            })
            .collect();
        Candidate {
            ops: self.ops.clone(),
            edges,
            keys: self.keys.clone(),
        }
    }

    fn in_degree(&self, v: usize) -> usize {
        self.edges.iter().filter(|e| e.to.0 == v).count()
    }

    /// The current source: the unique vertex without input edges.
    fn source(&self) -> usize {
        (0..self.ops.len())
            .find(|&v| self.in_degree(v) == 0)
            .unwrap_or(0)
    }
}

/// True if `spec` is already the trivial identity-map reduction target.
fn is_trivial(spec: &OperatorSpec) -> bool {
    spec.kind == "identity-map"
        && matches!(spec.state, StateClass::Stateless)
        && spec.selectivity == Selectivity::ONE
}

/// Replaces `spec` with a plain identity-map of the same service time.
fn trivialize(spec: &OperatorSpec) -> OperatorSpec {
    let work_ns = (spec.service_time.as_secs() * 1e9).max(1.0);
    OperatorSpec::stateless(spec.name.clone(), spec.service_time)
        .with_kind("identity-map")
        .with_param("work_ns", work_ns)
}

/// The generic greedy loop: `still_divergent` returns the surviving
/// divergences of a candidate, or `None` once the mismatch disappears.
pub(crate) fn minimize_with(
    divergent: &Scenario,
    budget: usize,
    mut still_divergent: impl FnMut(&Topology, &KeyDistribution) -> Option<Vec<Divergence>>,
) -> MinimalCase {
    let mut checks = 0usize;
    let mut best = Candidate {
        ops: divergent.topology.operators().to_vec(),
        edges: divergent.topology.edges().to_vec(),
        keys: divergent.source_keys.clone(),
    };
    checks += 1;
    let mut best_divs =
        still_divergent(&divergent.topology, &divergent.source_keys).unwrap_or_default();

    let mut try_accept = |cand: Candidate,
                          best: &mut Candidate,
                          best_divs: &mut Vec<Divergence>,
                          checks: &mut usize|
     -> bool {
        let Ok(topo) = Topology::from_parts(cand.ops.clone(), cand.edges.clone()) else {
            return false;
        };
        *checks += 1;
        match still_divergent(&topo, &cand.keys) {
            Some(divs) => {
                *best = cand;
                *best_divs = divs;
                true
            }
            None => false,
        }
    };

    'outer: loop {
        if checks >= budget {
            break;
        }
        // Pass 1: vertex removal, largest subgraphs first.
        let src = best.source();
        for v in (0..best.ops.len()).rev() {
            if v == src || best.ops.len() <= 2 {
                continue;
            }
            if checks >= budget {
                break 'outer;
            }
            let cand = best.remove_vertex(v);
            if try_accept(cand, &mut best, &mut best_divs, &mut checks) {
                continue 'outer;
            }
        }
        // Pass 2: edge removal (only where the target keeps an input).
        for idx in (0..best.edges.len()).rev() {
            if best.in_degree(best.edges[idx].to.0) < 2 {
                continue;
            }
            if checks >= budget {
                break 'outer;
            }
            let cand = best.remove_edge(idx);
            if try_accept(cand, &mut best, &mut best_divs, &mut checks) {
                continue 'outer;
            }
        }
        // Pass 3: operator trivialization.
        let src = best.source();
        for v in 0..best.ops.len() {
            if v == src || is_trivial(&best.ops[v]) {
                continue;
            }
            if checks >= budget {
                break 'outer;
            }
            let mut cand = best.clone();
            cand.ops[v] = trivialize(&best.ops[v]);
            if try_accept(cand, &mut best, &mut best_divs, &mut checks) {
                continue 'outer;
            }
        }
        // Pass 4: uniform keys.
        let uniform = KeyDistribution::uniform(best.keys.num_keys());
        if best.keys != uniform && checks < budget {
            let mut cand = best.clone();
            cand.keys = uniform;
            if try_accept(cand, &mut best, &mut best_divs, &mut checks) {
                continue 'outer;
            }
        }
        // Pass 5: identity source selectivity.
        let src = best.source();
        if best.ops[src].selectivity != Selectivity::ONE && checks < budget {
            let mut cand = best.clone();
            cand.ops[src].selectivity = Selectivity::ONE;
            if try_accept(cand, &mut best, &mut best_divs, &mut checks) {
                continue 'outer;
            }
        }
        break;
    }

    let topology =
        Topology::from_parts(best.ops, best.edges).expect("accepted candidates are validated");
    MinimalCase {
        scenario: Scenario {
            seed: divergent.seed,
            topology,
            source_keys: best.keys,
        },
        divergences: best_divs,
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{scenario, DivergenceKind, Layer, OracleConfig};

    fn fake_div(seed: u64) -> Vec<Divergence> {
        vec![Divergence {
            seed,
            layer: Layer::Base,
            kind: DivergenceKind::Throughput,
            detail: "synthetic".into(),
        }]
    }

    #[test]
    fn shrinks_to_the_smallest_graph_containing_the_trigger() {
        // Find a seeded scenario with a reasonably wide graph.
        let cfg = OracleConfig::default();
        let s = (0..20)
            .map(|seed| scenario(seed, &cfg))
            .max_by_key(|s| s.topology.num_operators())
            .unwrap();
        assert!(s.topology.num_operators() > 3);
        // Synthetic trigger: "divergent" while the slowest non-source
        // operator survives with its original kind.
        let slowest = s
            .topology
            .operator_ids()
            .skip(1)
            .max_by(|a, b| {
                let t = |id: &OperatorId| s.topology.operator(*id).service_time.as_secs();
                t(a).total_cmp(&t(b))
            })
            .unwrap();
        let name = s.topology.operator(slowest).name.clone();
        let kind = s.topology.operator(slowest).kind.clone();
        let min = minimize_with(&s, 500, |topo, _| {
            topo.operators()
                .iter()
                .any(|op| op.name == name && op.kind == kind)
                .then(|| fake_div(s.seed))
        });
        // Everything except source → … → trigger chain must be gone.
        assert!(
            min.scenario.topology.num_operators() < s.topology.num_operators(),
            "no shrink: {} ops",
            min.scenario.topology.num_operators()
        );
        assert!(min
            .scenario
            .topology
            .operators()
            .iter()
            .any(|op| op.name == name));
        // Every survivor except the trigger (and source) is trivialized.
        let src = min.scenario.topology.source();
        for id in min.scenario.topology.operator_ids() {
            let op = min.scenario.topology.operator(id);
            if id != src && op.name != name {
                assert!(is_trivial(op), "{} not trivialized", op.name);
            }
        }
        assert!(!min.divergences.is_empty());
    }

    #[test]
    fn respects_the_budget() {
        let cfg = OracleConfig::default();
        let s = scenario(2, &cfg);
        let mut calls = 0usize;
        let min = minimize_with(&s, 5, |_, _| {
            calls += 1;
            Some(fake_div(s.seed))
        });
        assert!(min.checks <= 5, "spent {}", min.checks);
        assert_eq!(calls, min.checks);
    }

    #[test]
    fn non_divergent_candidates_are_rejected() {
        let cfg = OracleConfig::default();
        let s = scenario(4, &cfg);
        let n = s.topology.num_operators();
        // Divergent only at full size: any reduction kills the mismatch.
        let min = minimize_with(&s, 200, |topo, keys| {
            (topo.num_operators() == n
                && topo.num_edges() == s.topology.num_edges()
                && *keys == s.source_keys
                && topo == &s.topology)
                .then(|| fake_div(s.seed))
        });
        assert_eq!(min.scenario.topology, s.topology);
        assert_eq!(min.scenario.source_keys, s.source_keys);
    }

    #[test]
    fn renormalized_probabilities_stay_valid() {
        let cfg = OracleConfig::default();
        for seed in 0..10 {
            let s = scenario(seed, &cfg);
            // Accept every structurally valid candidate: drives maximal
            // shrinking through all passes.
            let min = minimize_with(&s, 400, |_, _| Some(fake_div(seed)));
            let t = &min.scenario.topology;
            assert!(t.num_operators() >= 2);
            for id in t.operator_ids() {
                let sum: f64 = t.out_edges(id).iter().map(|e| t.edge(*e).probability).sum();
                assert!(
                    t.out_edges(id).is_empty() || (sum - 1.0).abs() < 1e-6,
                    "seed {seed}: {id} out-probs sum {sum}"
                );
            }
        }
    }
}
