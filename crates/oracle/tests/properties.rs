//! Property tests over seeded topologies: the §3 invariants the analytical
//! model promises, checked across the same scenario generator the oracle
//! sweeps, plus the paper's running example (Table 1 / Figure 11) pinned as
//! an end-to-end oracle scenario.

use spinstreams_analysis::{eliminate_bottlenecks, evaluate_with_replicas, steady_state};
use spinstreams_core::{
    Edge, KeyDistribution, OperatorId, OperatorSpec, Selectivity, ServiceTime, Topology,
};
use spinstreams_oracle::{evaluate, scenario, OracleConfig};

/// Seeded topologies each property is checked over.
const SEEDS: u64 = 60;

fn cfg() -> OracleConfig {
    OracleConfig {
        threaded_runs: 0,
        minimize: false,
        ..OracleConfig::default()
    }
}

/// Invariant 3.1: at the steady state no operator's utilization exceeds 1 —
/// backpressure throttles upstream departures until every `ρ = λ/µ_eff` is
/// feasible. Holds for plain Algorithm 1 and for Algorithm 2's replicated
/// evaluation alike.
#[test]
fn invariant_3_1_utilization_never_exceeds_one() {
    let cfg = cfg();
    for seed in 0..SEEDS {
        let s = scenario(seed, &cfg);
        let report = steady_state(&s.topology);
        for id in s.topology.operator_ids() {
            let rho = report.metric(id).utilization;
            assert!(
                rho <= 1.0 + 1e-9,
                "seed {seed}: {id} has ρ = {rho} > 1 (base)"
            );
        }
        let plan = eliminate_bottlenecks(&s.topology);
        let fis = evaluate_with_replicas(&s.topology, &plan.replicas);
        for id in s.topology.operator_ids() {
            let rho = fis.metric(id).utilization;
            assert!(
                rho <= 1.0 + 1e-9,
                "seed {seed}: {id} has ρ = {rho} > 1 (fission)"
            );
        }
    }
}

/// Proposition 3.5: with identity selectivities the steady-state flow is
/// conserved — every operator's departure rate equals the probability-
/// weighted sum of its predecessors' departures, even when backpressure
/// rescales the whole flow.
#[test]
fn proposition_3_5_flow_conservation_under_identity_selectivities() {
    let cfg = cfg();
    for seed in 0..SEEDS {
        let s = scenario(seed, &cfg);
        let mut ops = s.topology.operators().to_vec();
        for op in &mut ops {
            op.selectivity = Selectivity::ONE;
        }
        let topo = Topology::from_parts(ops, s.topology.edges().to_vec())
            .expect("identity-selectivity rewrite must stay valid");
        let report = steady_state(&topo);
        for id in topo.operator_ids() {
            if id == topo.source() {
                continue;
            }
            let arrival: f64 = topo
                .in_edges(id)
                .iter()
                .map(|e| {
                    let edge = topo.edge(*e);
                    report.metric(edge.from).departure * edge.probability
                })
                .sum();
            let departure = report.metric(id).departure;
            assert!(
                (departure - arrival).abs() <= 1e-6 * arrival.max(1.0),
                "seed {seed}: {id} departs {departure}/s but receives {arrival}/s"
            );
        }
    }
}

/// The paper's running example (Table 1 operators on the Figure 11 graph),
/// pinned as a full oracle scenario: Algorithm 1's prediction, the
/// virtual-time simulator, and Algorithm 2's replicated deployment must
/// agree within the sweep's default tolerance bands.
#[test]
fn the_papers_running_example_passes_the_oracle() {
    let topo = running_example(1.0);
    let report = evaluate(&topo, &KeyDistribution::uniform(32), 0, &cfg(), false);
    assert!(
        report.is_clean(),
        "the running example diverged: {:#?}",
        report.divergences
    );
}

/// The same graph with the source sped up 4× saturates three operators, so
/// Algorithm 2 must replicate — pinning the fission layer of the oracle to
/// the paper's topology too.
#[test]
fn the_saturated_running_example_exercises_the_fission_layer() {
    let topo = running_example(0.25);
    let report = evaluate(&topo, &KeyDistribution::uniform(32), 0, &cfg(), false);
    assert!(
        report.is_clean(),
        "the saturated running example diverged: {:#?}",
        report.divergences
    );
    assert_eq!(
        report.tables.len(),
        2,
        "expected base + fission layers for the saturated variant"
    );
}

/// Table 1's service times on Figure 11's graph, with the source scaled by
/// `source_scale` (1.0 = the paper's 1 ms ingestion period).
fn running_example(source_scale: f64) -> Topology {
    let ms = [1.0 * source_scale, 1.2, 0.7, 2.0, 1.5, 0.2];
    let mut ops =
        vec![OperatorSpec::source("source", ServiceTime::from_millis(ms[0])).with_kind("source")];
    for (i, &m) in ms.iter().enumerate().skip(1) {
        let st = ServiceTime::from_millis(m);
        ops.push(
            OperatorSpec::stateless(format!("op{i}"), st)
                .with_kind("identity-map")
                .with_param("work_ns", st.as_secs() * 1e9),
        );
    }
    let e = |from: usize, to: usize, probability: f64| Edge {
        from: OperatorId(from),
        to: OperatorId(to),
        probability,
    };
    let edges = vec![
        e(0, 1, 0.7),
        e(0, 2, 0.3),
        e(1, 5, 1.0),
        e(2, 3, 0.5),
        e(2, 4, 0.5),
        e(4, 3, 0.35),
        e(4, 5, 0.65),
        e(3, 5, 1.0),
    ];
    Topology::from_parts(ops, edges).expect("the paper's topology is valid")
}
