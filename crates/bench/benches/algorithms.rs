//! Criterion micro-benchmarks of the SpinStreams analysis algorithms — the
//! cost of the *tool itself*.
//!
//! Proposition 3.4 bounds Algorithm 1 by `O(|V|·|E|)`; these benches verify
//! the cost is negligible at the paper's scale (tens of operators,
//! "most stream processing topologies have usually tens of operators",
//! §3.3) and measure how it grows well beyond it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinstreams_analysis::{
    eliminate_bottlenecks, fuse, fusion_service_time, key_partitioning, steady_state,
};
use spinstreams_core::{
    topological_order, KeyDistribution, OperatorId, OperatorSpec, ServiceTime, Topology,
};
use std::collections::BTreeSet;
use std::hint::black_box;

/// A worst-case pipeline for Algorithm 1: strictly decreasing service
/// rates, so every vertex is a bottleneck when first visited.
fn decreasing_pipeline(n: usize) -> Topology {
    let mut b = Topology::builder();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            b.add_operator(OperatorSpec::stateless(
                format!("op{i}"),
                ServiceTime::from_micros(100.0 + i as f64 * 10.0),
            ))
        })
        .collect();
    for w in ids.windows(2) {
        b.add_edge(w[0], w[1], 1.0).unwrap();
    }
    b.build().unwrap()
}

/// A layered random-ish DAG with diamonds (more edges than a pipeline).
fn layered_dag(layers: usize, width: usize) -> Topology {
    let mut b = Topology::builder();
    let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_micros(50.0)));
    let mut prev = vec![src];
    for l in 0..layers {
        let mut layer = Vec::new();
        for w in 0..width {
            let id = b.add_operator(OperatorSpec::stateless(
                format!("l{l}w{w}"),
                ServiceTime::from_micros(100.0 + ((l * width + w) % 7) as f64 * 30.0),
            ));
            layer.push(id);
        }
        for &p in &prev {
            let share = 1.0 / layer.len() as f64;
            for (i, &q) in layer.iter().enumerate() {
                // Make the distribution sum to exactly 1.
                let prob = if i + 1 == layer.len() {
                    1.0 - share * (layer.len() - 1) as f64
                } else {
                    share
                };
                b.add_edge(p, q, prob).unwrap();
            }
        }
        prev = layer;
    }
    b.build().unwrap()
}

fn bench_steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady_state");
    for n in [10usize, 50, 200, 1000] {
        let topo = decreasing_pipeline(n);
        g.bench_with_input(BenchmarkId::new("worst_case_pipeline", n), &topo, |b, t| {
            b.iter(|| black_box(steady_state(t)))
        });
    }
    let dag = layered_dag(6, 4);
    g.bench_function("layered_dag_25ops", |b| {
        b.iter(|| black_box(steady_state(&dag)))
    });
    g.finish();
}

fn bench_bottleneck_elimination(c: &mut Criterion) {
    let mut g = c.benchmark_group("eliminate_bottlenecks");
    for n in [10usize, 50, 200] {
        let topo = decreasing_pipeline(n);
        g.bench_with_input(BenchmarkId::new("pipeline", n), &topo, |b, t| {
            b.iter(|| black_box(eliminate_bottlenecks(t)))
        });
    }
    g.finish();
}

fn bench_fusion(c: &mut Criterion) {
    let dag = layered_dag(6, 4);
    // Fuse the whole middle: a single-front-end sub-graph (one first-layer
    // vertex plus everything it exclusively dominates is hard to craft on
    // this DAG, so fuse a chain suffix of a pipeline instead).
    let pipe = decreasing_pipeline(30);
    let members: BTreeSet<OperatorId> = (10..30).map(OperatorId).collect();
    c.bench_function("fusion_service_time_20_members", |b| {
        b.iter(|| black_box(fusion_service_time(&pipe, &members, OperatorId(10))))
    });
    c.bench_function("fuse_full_pass_20_members", |b| {
        b.iter(|| black_box(fuse(&pipe, &members).unwrap()))
    });
    c.bench_function("topological_order_25ops", |b| {
        b.iter(|| black_box(topological_order(&dag)))
    });
}

fn bench_key_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("key_partitioning");
    for keys in [64usize, 1024, 16384] {
        let dist = KeyDistribution::zipf(keys, 1.1);
        g.bench_with_input(BenchmarkId::new("zipf_keys", keys), &dist, |b, d| {
            b.iter(|| black_box(key_partitioning(d, 16)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_bottleneck_elimination,
    bench_fusion,
    bench_key_partitioning
);
criterion_main!(benches);
