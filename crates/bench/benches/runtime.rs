//! Criterion micro-benchmarks of the runtime substrate: mailbox transfer
//! cost, meta-operator dispatch, and end-to-end virtual-time simulation
//! throughput (events/second of the DES engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spinstreams_core::Tuple;
use spinstreams_runtime::operators::PassThrough;
use spinstreams_runtime::{
    channel, simulate, ActorGraph, Behavior, Envelope, MetaDest, MetaOperator, MetaRoute, Outputs,
    Route, SimConfig, SourceConfig, StreamOperator,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_mailbox(c: &mut Criterion) {
    // Same-thread enqueue/dequeue cost (the per-hop overhead every item
    // pays in the threaded engine).
    c.bench_function("mailbox_send_recv_uncontended", |b| {
        let (tx, rx) = channel(1024);
        let env = Envelope::Data(Tuple::default());
        b.iter(|| {
            tx.send(black_box(env), Duration::from_secs(1));
            black_box(rx.try_recv())
        })
    });
}

fn bench_meta_operator(c: &mut Criterion) {
    let mut g = c.benchmark_group("meta_operator_dispatch");
    for members in [2usize, 5, 10] {
        // A chain of pass-through members: measures pure Algorithm 4
        // dispatch overhead per fused member.
        let ops: Vec<Box<dyn StreamOperator>> = (0..members)
            .map(|_| Box::new(PassThrough) as Box<dyn StreamOperator>)
            .collect();
        let routes: Vec<Vec<MetaRoute>> = (0..members)
            .map(|m| {
                if m + 1 < members {
                    vec![MetaRoute::Unicast(MetaDest::Member(m + 1))]
                } else {
                    vec![MetaRoute::Unicast(MetaDest::Output(0))]
                }
            })
            .collect();
        let mut meta = MetaOperator::new("bench", ops, routes, 0, 1);
        let mut out = Outputs::new();
        g.bench_with_input(BenchmarkId::new("chain", members), &members, |b, _| {
            b.iter(|| {
                out.clear();
                meta.process(black_box(Tuple::default()), &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("virtual_time_simulation");
    g.sample_size(10);
    // End-to-end DES throughput on a 5-stage pipeline, 20k items.
    g.bench_function("pipeline5_20k_items", |b| {
        b.iter(|| {
            let mut graph = ActorGraph::new();
            let s = graph.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(1_000_000.0, 20_000)),
            );
            let mut prev = s;
            for i in 0..5 {
                let w = graph.add_actor(format!("w{i}"), Behavior::worker(PassThrough));
                graph.connect(prev, Route::Unicast(w));
                prev = w;
            }
            black_box(
                simulate(
                    graph,
                    &SimConfig {
                        mailbox_capacity: 64,
                        seed: 1,
                        ..SimConfig::default()
                    },
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_mailbox,
    bench_meta_operator,
    bench_simulation
);
criterion_main!(benches);
