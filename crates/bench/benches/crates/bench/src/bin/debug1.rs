use spinstreams_bench::*;
use spinstreams_tool::comparison_table;

fn main() {
    let cfg = ExperimentConfig {
        topologies: 1,
        seed_base: 1000,
        run_secs: 10.0,
        calibration_secs: 3.0,
        ..Default::default()
    };
    let testbed = build_testbed(&cfg).unwrap();
    let entry = &testbed[0];
    println!("{}", entry.calibrated);
    let cmp = measure_entry(entry, &[], &cfg).unwrap();
    println!("{}", comparison_table("topo seed 1000", &cmp));
    for op in &cmp.operators {
        println!(
            "{:<24} pred {:>10.2} meas {:>10.2} err {:>6.1}%",
            op.name,
            op.predicted_departure,
            op.measured_departure.unwrap_or(f64::NAN),
            op.relative_error().map(|e| e * 100.0).unwrap_or(f64::NAN)
        );
    }
}
