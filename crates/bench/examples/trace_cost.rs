//! Profiling aid: decomposes observability overhead on the batch-64
//! pipeline into (bare run) vs (telemetry, no spans) vs (telemetry +
//! sampled spans), so a regression in the `validate_bench.py` tracing
//! gate can be attributed to the right layer.
//!
//! ```text
//! cargo run --release -p spinstreams-bench --example trace_cost
//! ```

use spinstreams_runtime::operators::PassThrough;
use spinstreams_runtime::{
    run, run_with_telemetry, ActorGraph, Behavior, EngineConfig, ExecutorKind, Route, SourceConfig,
    TelemetryConfig,
};
use std::time::Duration;

fn pipeline(items: u64) -> (ActorGraph, spinstreams_runtime::ActorId) {
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
    );
    let a = g.add_actor("a", Behavior::worker(PassThrough));
    let b = g.add_actor("b", Behavior::worker(PassThrough));
    let k = g.add_actor("sink", Behavior::worker(PassThrough));
    g.connect(s, Route::Unicast(a));
    g.connect(a, Route::Unicast(b));
    g.connect(b, Route::Unicast(k));
    (g, k)
}

fn main() {
    let items = 2_000_000u64;
    let cfg = EngineConfig {
        mailbox_capacity: 256,
        send_timeout: Duration::from_secs(60),
        seed: 0xBE9C4,
        batch_size: 64,
        executor: ExecutorKind::ThreadPerActor,
        ..EngineConfig::default()
    };
    let reps = 3;
    let bare = (0..reps)
        .map(|_| {
            let (g, _) = pipeline(items);
            let r = run(g, &cfg).unwrap();
            items as f64 / r.wall.as_secs_f64()
        })
        .fold(0.0f64, f64::max);
    let tel = |span: u64| {
        let mut t = TelemetryConfig::default().with_interval(Duration::from_millis(100));
        if span > 0 {
            t = t.with_span_sample(span);
        }
        (0..reps)
            .map(|_| {
                let (g, _) = pipeline(items);
                let (r, _) = run_with_telemetry(g, &cfg, &t).unwrap();
                items as f64 / r.wall.as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };
    let no_span = tel(0);
    let spans = tel(64);
    println!("bare            {bare:>12.0} tup/s");
    println!(
        "telemetry       {no_span:>12.0} tup/s  ({:.3}x bare)",
        no_span / bare
    );
    println!(
        "telemetry+spans {spans:>12.0} tup/s  ({:.3}x bare, {:.3}x telemetry)",
        spans / bare,
        spans / no_span
    );
}
