//! Ablation — service-time distributions and the flow-conservation model.
//!
//! §3.1 argues the steady-state model "is always valid regardless of the
//! statistical distributions of the service rates (e.g., Poisson, Normal
//! or Deterministic)". This ablation builds the same bottlenecked pipeline
//! with deterministic, normal (cv = 0.25) and exponential (cv = 1)
//! per-item service times of identical means and compares the model's
//! prediction against measurement — also sweeping the buffer capacity,
//! since service-time *variance* interacts with finite BAS buffers (a
//! second-order effect the fluid model ignores).
//!
//! `cargo run --release -p spinstreams-bench --bin ablation_distributions`

use spinstreams_runtime::operators::{PassThrough, RandomWork, ServiceDistribution};
use spinstreams_runtime::{simulate, ActorGraph, Behavior, Route, SimConfig, SourceConfig};

fn run(dist: ServiceDistribution, capacity: usize, items: u64) -> f64 {
    // src 10k/s -> 200 µs stage -> 400 µs bottleneck -> 50 µs sink.
    let mut g = ActorGraph::new();
    let s = g.add_actor("src", Behavior::Source(SourceConfig::new(10_000.0, items)));
    let a = g.add_actor(
        "mid",
        Behavior::Worker(Box::new(RandomWork::new(PassThrough, 200_000, dist, 21))),
    );
    let b = g.add_actor(
        "slow",
        Behavior::Worker(Box::new(RandomWork::new(PassThrough, 400_000, dist, 22))),
    );
    let k = g.add_actor(
        "sink",
        Behavior::Worker(Box::new(RandomWork::new(PassThrough, 50_000, dist, 23))),
    );
    g.connect(s, Route::Unicast(a));
    g.connect(a, Route::Unicast(b));
    g.connect(b, Route::Unicast(k));
    let report = simulate(
        g,
        &SimConfig {
            mailbox_capacity: capacity,
            seed: 5,
            ..SimConfig::default()
        },
    )
    .unwrap();
    report.source_throughput().unwrap()
}

fn main() {
    // Fluid-model prediction: the 400 µs stage caps throughput at 2500/s.
    let predicted = 2_500.0;
    let items = 50_000;
    println!("Ablation: service-time distributions (fluid model predicts {predicted} items/s)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>10}",
        "distribution", "capacity", "measured", "error"
    );
    for dist in [
        ServiceDistribution::Deterministic,
        ServiceDistribution::Normal,
        ServiceDistribution::Exponential,
    ] {
        for capacity in [2usize, 8, 64] {
            let measured = run(dist, capacity, items);
            println!(
                "{:<16} {capacity:>10} {measured:>12.0} {:>9.2}%",
                format!("{dist:?}"),
                (measured - predicted).abs() / predicted * 100.0
            );
        }
    }
    println!(
        "\nThe mean-based model holds for every distribution; higher service-time\n\
         variance with very small BAS buffers costs a few percent of throughput\n\
         (blocking prevents the bottleneck from amortizing slow items), which larger\n\
         buffers absorb — the second-order effect §3.1's fluid argument abstracts away."
    );
}
