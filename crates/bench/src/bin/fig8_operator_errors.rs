//! Figure 8 — relative error between the predicted and the measured
//! departure rate *per operator*, across the whole testbed.
//!
//! Paper result: 6.14% mean error (σ = 5%), a few outliers above 20%
//! caused by operators on low-probability paths that have not reached
//! steady state.
//!
//! `cargo run --release -p spinstreams-bench --bin fig8_operator_errors [--quick]`

use spinstreams_bench::{build_testbed, mean, measure_entry, std_dev, write_csv, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::from_args();
    println!(
        "Figure 8 — per-operator departure-rate prediction error ({} topologies)",
        cfg.topologies
    );
    let testbed = build_testbed(&cfg)?;

    let mut errors: Vec<f64> = Vec::new();
    let mut rows = Vec::new();
    for (i, entry) in testbed.iter().enumerate() {
        let cmp = measure_entry(entry, &[], &cfg)?;
        for op in &cmp.operators {
            if let Some(err) = op.relative_error() {
                errors.push(err * 100.0);
                rows.push(format!(
                    "{},{},{},{:.2},{:.2},{:.4}",
                    i + 1,
                    op.operator.index(),
                    op.name,
                    op.predicted_departure,
                    op.measured_departure.unwrap_or(f64::NAN),
                    err
                ));
            }
        }
    }

    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = errors.len();
    println!("operators measured: {n}");
    println!(
        "mean error {:.2}%  (paper: 6.14%)   std dev {:.2}%  (paper: 5%)",
        mean(&errors),
        std_dev(&errors)
    );
    println!(
        "median {:.2}%   p90 {:.2}%   max {:.2}%",
        errors[n / 2],
        errors[(n as f64 * 0.9) as usize],
        errors[n - 1]
    );
    let above20 = errors.iter().filter(|e| **e > 20.0).count();
    println!(
        "operators above 20% error: {above20} ({:.1}%) — the paper attributes these to \
         operators on low-probability paths not yet at steady state",
        above20 as f64 * 100.0 / n as f64
    );

    // Text histogram of the error distribution.
    println!("\nerror distribution:");
    let buckets = [2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0, f64::INFINITY];
    let mut lo = 0.0;
    for hi in buckets {
        let count = errors.iter().filter(|e| **e >= lo && **e < hi).count();
        let bar = "#".repeat(count * 60 / n.max(1));
        if hi.is_infinite() {
            println!("  >= {lo:>4.0}%   {count:>5} {bar}");
        } else {
            println!("  {lo:>4.0}-{hi:<4.0}% {count:>5} {bar}");
        }
        lo = hi;
    }
    write_csv(
        "fig8",
        "topology,operator,name,predicted_departure,measured_departure,relative_error",
        &rows,
    );
    Ok(())
}
