//! Ablation — BAS buffer capacity and the steady-state assumption.
//!
//! The cost models are *fluid*: they ignore buffer sizes entirely
//! (Algorithm 1 uses only rates). This ablation measures how the real
//! system's throughput and the model's error depend on the mailbox
//! capacity, and how load shedding (the §2 alternative to backpressure —
//! a short send timeout that drops items) changes the picture:
//!
//! * with BAS and any reasonable capacity, measured throughput converges to
//!   the model as runs grow — capacity only shapes the fill transient;
//! * with load shedding, the *source* is never throttled (it sheds
//!   instead), so the model's backpressure-corrected prediction applies to
//!   the *delivered* rate, not the ingested one — exactly why SpinStreams
//!   models BAS (§2: "data loss is not always acceptable").
//!
//! `cargo run --release -p spinstreams-bench --bin ablation_buffers`

use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
use spinstreams_runtime::{Executor, SimConfig};
use spinstreams_tool::predict_vs_measure;

fn bottlenecked() -> Topology {
    let mut b = Topology::builder();
    let s = b.add_operator(
        OperatorSpec::source("src", ServiceTime::from_micros(100.0)).with_kind("source"),
    );
    let m = b.add_operator(
        OperatorSpec::stateless("slow", ServiceTime::from_micros(400.0))
            .with_kind("identity-map")
            .with_param("work_ns", 400_000.0),
    );
    let k = b.add_operator(
        OperatorSpec::stateless("sink", ServiceTime::from_micros(20.0))
            .with_kind("identity-map")
            .with_param("work_ns", 20_000.0),
    );
    b.add_edge(s, m, 1.0).unwrap();
    b.add_edge(m, k, 1.0).unwrap();
    b.build().unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = bottlenecked();
    println!("Ablation: BAS buffer capacity vs model error (bottleneck at 2500 items/s)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "capacity", "items", "predicted", "measured", "error"
    );
    for capacity in [4usize, 16, 64, 256, 1024] {
        for items in [5_000u64, 50_000] {
            let executor = Executor::VirtualTime(SimConfig {
                mailbox_capacity: capacity,
                seed: 9,
                ..SimConfig::default()
            });
            let cmp = predict_vs_measure(&topo, None, &[], &[], items, &executor)?;
            println!(
                "{capacity:<10} {items:>10} {:>12.0} {:>12.0} {:>9.2}%",
                cmp.predicted_throughput,
                cmp.measured_throughput,
                cmp.relative_error() * 100.0
            );
        }
    }
    println!(
        "\nLarger buffers lengthen the fill transient during which the source runs\n\
         unthrottled, inflating short-run measurements; the fluid model is exact in\n\
         the long-run limit for every capacity. SpinStreams therefore only needs\n\
         BAS semantics, not a specific buffer size (§3.1: \"all the buffers of an\n\
         operator have a fixed maximum capacity\")."
    );
    Ok(())
}
