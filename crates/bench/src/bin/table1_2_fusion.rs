//! Tables 1 and 2 — the §5.4 fusion case study on the reconstructed
//! Figure 11 topology, printed in the paper's table format and validated
//! against real (virtual-time) executions of the fused meta-operator.
//!
//! `cargo run --release -p spinstreams-bench --bin table1_2_fusion`

use spinstreams_analysis::{fuse, steady_state};
use spinstreams_codegen::FusionGroup;
use spinstreams_core::{OperatorId, OperatorSpec, ServiceTime, Topology};
use spinstreams_tool::{experiment_executor, predict_vs_measure};
use std::collections::BTreeSet;

fn figure11(times_ms: [f64; 6]) -> Topology {
    let mut b = Topology::builder();
    let mut ids = Vec::new();
    for (i, t) in times_ms.iter().enumerate() {
        let spec = if i == 0 {
            OperatorSpec::source("1", ServiceTime::from_millis(*t)).with_kind("source")
        } else {
            OperatorSpec::stateless(format!("{}", i + 1), ServiceTime::from_millis(*t))
                .with_kind("identity-map")
                .with_param("work_ns", t * 1e6)
        };
        ids.push(b.add_operator(spec));
    }
    b.add_edge(ids[0], ids[1], 0.7).unwrap();
    b.add_edge(ids[0], ids[2], 0.3).unwrap();
    b.add_edge(ids[1], ids[5], 1.0).unwrap();
    b.add_edge(ids[2], ids[3], 0.5).unwrap();
    b.add_edge(ids[2], ids[4], 0.5).unwrap();
    b.add_edge(ids[4], ids[3], 0.35).unwrap();
    b.add_edge(ids[4], ids[5], 0.65).unwrap();
    b.add_edge(ids[3], ids[5], 1.0).unwrap();
    b.build().unwrap()
}

fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<24}");
    for v in values {
        s.push_str(&format!(" {v:>8.2}"));
    }
    s
}

fn print_table(title: &str, topo: &Topology, measured_throughput: f64) {
    let report = steady_state(topo);
    println!("--- {title} ---");
    let names: Vec<String> = topo
        .operator_ids()
        .map(|id| topo.operator(id).name.clone())
        .collect();
    println!(
        "{:<24} {}",
        "operator",
        names
            .iter()
            .map(|n| format!("{n:>8}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "{}",
        row(
            "µ⁻¹ (ms)",
            &topo
                .operator_ids()
                .map(|id| topo.operator(id).service_time.as_millis())
                .collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "δ⁻¹ (ms)",
            &report
                .metrics
                .iter()
                .map(|m| if m.departure > 0.0 {
                    1000.0 / m.departure
                } else {
                    f64::NAN
                })
                .collect::<Vec<_>>()
        )
    );
    println!(
        "{}",
        row(
            "ρ",
            &report
                .metrics
                .iter()
                .map(|m| m.utilization)
                .collect::<Vec<_>>()
        )
    );
    println!(
        "Throughput (tuples/sec): {:.0} (predicted)  {:.0} (measured)\n",
        report.throughput.items_per_sec(),
        measured_throughput
    );
}

fn case(title: &str, times_ms: [f64; 6], expect_feasible: bool) {
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
    let topo = figure11(times_ms);
    let executor = experiment_executor(0xF11);

    let members: BTreeSet<OperatorId> = [OperatorId(2), OperatorId(3), OperatorId(4)]
        .into_iter()
        .collect();
    let outcome = fuse(&topo, &members).expect("sub-graph satisfies the fusion constraints");

    let original = predict_vs_measure(&topo, None, &[], &[], 40_000, &executor)
        .expect("original deployment runs");
    print_table("Original topology", &topo, original.measured_throughput);

    let groups = [FusionGroup {
        members,
        front: OperatorId(2),
    }];
    let fused_run = predict_vs_measure(&topo, None, &[], &groups, 40_000, &executor)
        .expect("fused deployment runs");
    print_table(
        "Topology after fusion",
        &outcome.topology,
        fused_run.measured_throughput,
    );

    println!(
        "fused service time T(F) = {:.2} ms (paper: {})",
        outcome.fused_service_time.as_millis(),
        if expect_feasible {
            "2.80 ms"
        } else {
            "4.42 ms"
        }
    );
    println!(
        "verdict: {}\n",
        if outcome.is_feasible() {
            "the proposed fusion is feasible and does not impair performance".to_string()
        } else {
            format!(
                "the proposed fusion introduces a new bottleneck \
                 (predicted degradation {:.0}%)",
                -outcome.throughput_change() * 100.0
            )
        }
    );
    assert_eq!(
        outcome.is_feasible(),
        expect_feasible,
        "verdict must match the paper"
    );
}

fn main() {
    case(
        "Table 1 — fusion of operators 3, 4, 5 is feasible",
        [1.0, 1.2, 0.7, 2.0, 1.5, 0.2],
        true,
    );
    case(
        "Table 2 — the same fusion with slower members impairs performance",
        [1.0, 1.2, 1.5, 2.7, 2.2, 0.2],
        false,
    );
}
