//! Figure 9 — bottleneck elimination on the testbed.
//!
//! (a) number of operators and of additional replicas per topology;
//! (b) predicted vs measured throughput of the *parallelized* topologies.
//!
//! Paper result: 43/50 topologies reach the ideal throughput (the source's
//! generation rate); the remaining ones are capped by non-fissionable
//! stateful operators. Model error on parallelized topologies ≈ 3–3.5%.
//!
//! `cargo run --release -p spinstreams-bench --bin fig9_bottleneck [--quick]`

use spinstreams_analysis::eliminate_bottlenecks;
use spinstreams_bench::{build_testbed, mean, measure_entry, write_csv, ExperimentConfig};
use spinstreams_tool::ascii_series;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::from_args();
    println!(
        "Figure 9 — bottleneck elimination ({} topologies)",
        cfg.topologies
    );
    let testbed = build_testbed(&cfg)?;

    let mut labels = Vec::new();
    let mut op_counts = Vec::new();
    let mut added = Vec::new();
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    let mut errors = Vec::new();
    let mut ideal_count = 0usize;
    let mut residual_count = 0usize;
    let mut rows = Vec::new();

    for (i, entry) in testbed.iter().enumerate() {
        let plan = eliminate_bottlenecks(&entry.calibrated);
        let cmp = measure_entry(entry, &plan.replicas, &cfg)?;

        // "Ideal" means the parallelized topology sustains the source's
        // generation rate (every topology's source differs, §5.3).
        let source_rate = entry
            .calibrated
            .operator(entry.calibrated.source())
            .service_rate()
            .items_per_sec();
        let ideal =
            plan.ideal() && (cmp.predicted_throughput - source_rate).abs() / source_rate < 1e-6;
        if ideal {
            ideal_count += 1;
        }
        if !plan.ideal() {
            residual_count += 1;
        }

        labels.push(format!("topo{:02}", i + 1));
        op_counts.push(entry.calibrated.num_operators() as f64);
        added.push(plan.additional_replicas() as f64);
        predicted.push(cmp.predicted_throughput);
        measured.push(cmp.measured_throughput);
        errors.push(cmp.relative_error() * 100.0);
        rows.push(format!(
            "{},{},{},{},{},{:.2},{:.2},{:.4},{}",
            i + 1,
            entry.generated.seed,
            entry.calibrated.num_operators(),
            plan.additional_replicas(),
            plan.total_replicas(),
            cmp.predicted_throughput,
            cmp.measured_throughput,
            cmp.relative_error(),
            if ideal { "ideal" } else { "residual" },
        ));
    }

    println!(
        "{}",
        ascii_series(
            "Fig. 9a — operators and additional replicas per topology",
            &labels,
            &[("Operators", op_counts), ("AddReplicas", added)],
        )
    );
    println!(
        "{}",
        ascii_series(
            "Fig. 9b — throughput of parallelized topologies (items/s)",
            &labels,
            &[("Predicted", predicted), ("Real", measured)],
        )
    );
    println!(
        "{}/{} topologies reach the ideal throughput after parallelization \
         (paper: 43/50); {} capped by non-fissionable bottlenecks (paper: 7/50)",
        ideal_count, cfg.topologies, residual_count
    );
    println!(
        "mean relative error on parallelized topologies: {:.2}% (paper: 3-3.5%)",
        mean(&errors)
    );
    write_csv(
        "fig9",
        "topology,seed,operators,additional_replicas,total_replicas,predicted_throughput,\
         measured_throughput,relative_error,outcome",
        &rows,
    );
    Ok(())
}
