use spinstreams_bench::*;
use spinstreams_tool::comparison_table;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1003);
    let secs: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let cfg = ExperimentConfig {
        topologies: 1,
        seed_base: seed,
        run_secs: secs,
        calibration_secs: secs / 2.5,
        ..Default::default()
    };
    let testbed = build_testbed(&cfg).unwrap();
    let entry = &testbed[0];
    println!("{}", entry.calibrated);
    let cmp = measure_entry(entry, &[], &cfg).unwrap();
    println!("{}", comparison_table("debug", &cmp));
}
