//! Figure 10 — hold-off replication: bounding the total replica budget.
//!
//! Three testbed topologies are parallelized with bounds of 30, 35 and 40
//! total replicas and without any bound; throughput should de-scale
//! roughly proportionally with the budget, and a bound at or above the
//! optimal total should match the unbounded result.
//!
//! `cargo run --release -p spinstreams-bench --bin fig10_bounds [--quick]`

use spinstreams_analysis::{apply_replica_bound, eliminate_bottlenecks};
use spinstreams_bench::{build_testbed, measure_entry, write_csv, ExperimentConfig};
use spinstreams_topogen::TopogenConfig;

const BOUNDS: [usize; 3] = [30, 35, 40];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = ExperimentConfig::from_args();
    // Bigger graphs with more parallelism demand, so the bounds bite:
    // slower operators (more work per item) and more vertices.
    cfg.topogen = TopogenConfig {
        min_vertices: 15,
        max_vertices: 20,
        // A wide service-time spread makes the slowest operators need many
        // replicas to keep up with a source paced off the fastest one, so
        // the optimal plans exceed the 30-40 replica bounds as in Fig. 10.
        work_ns_range: (100_000, 4_000_000),
        ..cfg.topogen
    };
    cfg.seed_base += 31_337; // a testbed slice with heavier topologies
    println!("Figure 10 — replica bounds on 3 topologies");
    // Scan seeds for topologies whose optimal plans actually exceed the
    // smallest bound (the paper evidently picked such topologies — bounds
    // of 30-40 are uninformative on a plan that needs 12 replicas).
    let mut testbed = Vec::new();
    let mut offset = 0u64;
    while testbed.len() < 3 && offset < 40 {
        let one = ExperimentConfig {
            topologies: 1,
            seed_base: cfg.seed_base + offset,
            ..cfg.clone()
        };
        offset += 1;
        let entry = build_testbed(&one)?.pop().expect("one entry");
        let plan = eliminate_bottlenecks(&entry.calibrated);
        if plan.total_replicas() > BOUNDS[0] {
            testbed.push(entry);
        }
    }

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "Original", "Bound=30", "Bound=35", "Bound=40", "NoBound", "N_opt"
    );
    for (i, entry) in testbed.iter().enumerate() {
        let plan = eliminate_bottlenecks(&entry.calibrated);
        let n_opt = plan.total_replicas();

        let original = measure_entry(entry, &[], &cfg)?.measured_throughput;
        let mut bounded_results = Vec::new();
        for bound in BOUNDS {
            let degrees = apply_replica_bound(&plan, bound);
            let cmp = measure_entry(entry, &degrees, &cfg)?;
            bounded_results.push(cmp.measured_throughput);
        }
        let unbounded = measure_entry(entry, &plan.replicas, &cfg)?.measured_throughput;

        println!(
            "Topology#{:<3} {:>10.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12}",
            i + 1,
            original,
            bounded_results[0],
            bounded_results[1],
            bounded_results[2],
            unbounded,
            n_opt
        );
        rows.push(format!(
            "{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{}",
            i + 1,
            entry.generated.seed,
            original,
            bounded_results[0],
            bounded_results[1],
            bounded_results[2],
            unbounded,
            n_opt
        ));

        // De-scalability sanity notes.
        let monotone = bounded_results.windows(2).all(|w| w[0] <= w[1] * 1.05);
        println!(
            "             bounds {} monotone; bound>=N_opt matches unbounded: {}",
            if monotone { "are" } else { "are NOT" },
            if n_opt <= *BOUNDS.last().unwrap() {
                format!(
                    "{}",
                    (bounded_results[2] - unbounded).abs() / unbounded < 0.05
                )
            } else {
                "n/a (N_opt above largest bound)".to_string()
            }
        );
    }
    write_csv(
        "fig10",
        "topology,seed,original,bound30,bound35,bound40,unbounded,n_opt",
        &rows,
    );
    Ok(())
}
