//! Ablation — skew-aware key partitioning vs naive alternatives.
//!
//! Algorithm 2's `KeyPartitioning` uses longest-processing-time greedy
//! placement plus an upward degree search. This ablation quantifies what
//! each ingredient buys, over key distributions of increasing skew:
//!
//! * **naive-contiguous** — chop the key range into `⌈ρ⌉` equal slices
//!   (what a hash-range split does when keys are sorted by popularity);
//! * **lpt-fixed** — LPT placement at exactly `⌈ρ⌉` replicas;
//! * **lpt-search** — LPT plus the upward search used by SpinStreams.
//!
//! For each strategy we report the *achievable throughput factor*
//! `1/p_max` (the effective parallel speedup of the operator), relative to
//! the demanded `ρ`.
//!
//! `cargo run --release -p spinstreams-bench --bin ablation_partitioning`

use spinstreams_analysis::{
    consistent_hash_partitioning, key_partitioning, key_partitioning_for_rho,
};
use spinstreams_core::KeyDistribution;

fn contiguous_pmax(keys: &KeyDistribution, n: usize) -> f64 {
    let k = keys.num_keys();
    let per = k.div_ceil(n);
    (0..n)
        .map(|c| {
            (c * per..((c + 1) * per).min(k))
                .map(|i| keys.frequency(i))
                .sum::<f64>()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let rho: f64 = 6.0;
    let keys_count = 96;
    println!("Ablation: key partitioning strategies (|K| = {keys_count}, demanded ρ = {rho})\n");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>14} {:>16}",
        "key skew α", "contiguous", "consist.hash", "LPT@⌈ρ⌉", "LPT+search", "search replicas"
    );
    for alpha in [0.2, 0.5, 0.8, 1.0, 1.3, 1.6, 2.0] {
        let keys = KeyDistribution::zipf(keys_count, alpha);
        let n_opt = rho.ceil() as usize;
        let naive = 1.0 / contiguous_pmax(&keys, n_opt);
        let ch = 1.0 / consistent_hash_partitioning(&keys, n_opt, 64).max_fraction;
        let lpt = 1.0 / key_partitioning(&keys, n_opt).max_fraction;
        let search = key_partitioning_for_rho(&keys, rho);
        let searched = 1.0 / search.max_fraction;
        println!(
            "{alpha:<12} {naive:>13.2}x {ch:>13.2}x {lpt:>13.2}x {searched:>13.2}x {:>16}",
            search.replicas
        );
    }
    println!(
        "\nfactor ≥ ρ = {rho} removes the bottleneck; smaller factors leave a residual\n\
         bottleneck and the topology is throttled to factor/ρ of the ideal rate."
    );
}
