//! Runtime throughput suite: executor × worker count × batch size on each
//! topology shape, with steady-state allocation accounting.
//!
//! Every topology runs under the thread-per-actor executor and under the
//! cooperative worker pool at worker counts {1, 2, 4}, each with envelope
//! batch sizes {1, 8, 64}; operators are pass-throughs (or a monomorphized
//! fused chain, see below), so wall-clock is dominated by mailbox
//! synchronization and scheduling — exactly the costs that envelope
//! batching amortizes and the pool's run-until-blocked scheduling removes.
//! Results land in `BENCH_runtime.json` at the current directory (override
//! with `--out PATH`), one record per (topology, executor, workers, batch
//! size) with the measured tuples/sec, the speedup over that
//! configuration's unbatched run, and the *differential allocation count*
//! per tuple.
//!
//! ```text
//! cargo run --release -p spinstreams-bench --bin throughput [-- --smoke] [--out FILE] [--items N]
//! ```
//!
//! # Allocation accounting
//!
//! The binary installs a counting `#[global_allocator]`. Each configuration
//! runs twice — once at `N` items, once at `2N` — and reports
//! `allocs_per_tuple = (A(2N) - A(N)) / N`: the startup cost (graph build,
//! mailbox rings, pre-sized coalescing buffers, thread spawns) is identical
//! on both sides and cancels, leaving only what the *steady-state* data
//! path allocates per extra tuple. The engine's hot path recycles every
//! buffer it touches, so the validator gates this differential at zero
//! (±one allocation per thousand tuples of jitter headroom) on the fused
//! pipeline.
//!
//! # The `fused` topology
//!
//! `fused` is the pipeline shape with its interior stages compiled into a
//! single monomorphized [`FusedChain`] actor (statically dispatched
//! [`StatelessKernel`] stages, no per-member `Box<dyn>` hop) — the
//! steady-state shape Algorithm 3 fusion groups execute as after
//! monomorphization.
//!
//! The suite closes with a tracing-overhead measurement: the batch-64
//! pipeline re-run with the sampled span flight recorder armed (one
//! anchor every 64 tuples), emitted as the `tracing` section — the
//! validator gates traced throughput at >= 0.95x untraced.
//!
//! # Serving measurements (schema /5)
//!
//! Two more sections exercise the multi-tenant serving layer:
//!
//! * `plan_cache` — one cold submission (the §4.1 profiling run plus
//!   Algorithms 1–3) against one warm submission of the identical topology
//!   (checksum lookup only). The validator gates the hit at <= 0.1x the
//!   miss latency.
//! * `multitenant` — four seeded paced pipelines run solo and then
//!   concurrently on one single-worker shared pool. The validator gates
//!   the concurrent aggregate at >= 0.8x the sum of the solo rates.
//!
//! `--smoke` shrinks the item counts so CI can validate the schema and
//! plumbing in seconds; speedup and allocation assertions only make sense
//! in full mode. `--topology NAME` restricts the sweep to one topology
//! (the emitted JSON is then partial — useful for focused measurements,
//! not for `validate_bench.py`).

use spinstreams_operators::{build_kernel, OperatorKind, OperatorParams, StatelessKernel};
use spinstreams_runtime::operators::PassThrough;
use spinstreams_runtime::{
    run, run_with_telemetry, ActorGraph, Behavior, EngineConfig, ExecutorKind, FusedChain, Route,
    SourceConfig, TelemetryConfig, TraceEventKind, DEFAULT_PORT,
};
use spinstreams_serve::{ServeConfig, StreamService, SubmitRequest};
use spinstreams_tool::tenant_topology;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Counts every heap allocation in the process (allocs and growth
/// reallocs; frees are not interesting here) on top of the system
/// allocator. One relaxed fetch-add per allocation — negligible next to
/// the allocation itself, and the whole point is that the steady-state
/// path never reaches it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `System` unchanged; the counter has
// no effect on the returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BATCH_SIZES: [usize; 3] = [1, 8, 64];
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

struct Shape {
    name: &'static str,
    /// Builder: item count -> graph plus the sink whose arrivals count.
    build: fn(u64) -> (ActorGraph, spinstreams_runtime::ActorId),
}

/// src -> a -> b -> sink: every tuple crosses three mailboxes, nothing
/// else happens — the fully contended hand-off chain.
fn pipeline(items: u64) -> (ActorGraph, spinstreams_runtime::ActorId) {
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
    );
    let a = g.add_actor("a", Behavior::worker(PassThrough));
    let b = g.add_actor("b", Behavior::worker(PassThrough));
    let k = g.add_actor("sink", Behavior::worker(PassThrough));
    g.connect(s, Route::Unicast(a));
    g.connect(a, Route::Unicast(b));
    g.connect(b, Route::Unicast(k));
    (g, k)
}

/// src -> F(identity-map × 3) -> sink: the pipeline shape with its three
/// interior hand-offs compiled into one monomorphized [`FusedChain`] actor.
/// Zero-work identity kernels keep the comparison apples-to-apples with
/// `pipeline`'s pass-throughs: the only difference is two mailbox
/// crossings instead of three, with the three per-tuple operator
/// applications becoming static enum dispatches inside one actor — the
/// post-fusion steady state Algorithm 3 aims for.
fn fused(items: u64) -> (ActorGraph, spinstreams_runtime::ActorId) {
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
    );
    let params = OperatorParams {
        work_ns: 0,
        ..OperatorParams::default()
    };
    let kernels: Vec<StatelessKernel> = (0..3)
        .map(|_| {
            build_kernel(OperatorKind::IdentityMap, &params).expect("stateless kinds monomorphize")
        })
        .collect();
    let f = g.add_actor(
        "fused",
        Behavior::worker(FusedChain::new(
            "F(identity-map,identity-map,identity-map)",
            kernels,
            DEFAULT_PORT,
        )),
    );
    let k = g.add_actor("sink", Behavior::worker(PassThrough));
    g.connect(s, Route::Unicast(f));
    g.connect(f, Route::Unicast(k));
    (g, k)
}

/// src -> round-robin over 4 replicas -> collector: one producer feeding
/// four mailboxes, four producers contending on one.
fn fanout(items: u64) -> (ActorGraph, spinstreams_runtime::ActorId) {
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
    );
    let replicas: Vec<_> = (0..4)
        .map(|i| g.add_actor(format!("r{i}"), Behavior::worker(PassThrough)))
        .collect();
    let k = g.add_actor("collector", Behavior::worker(PassThrough));
    g.connect(s, Route::RoundRobin(replicas.clone()));
    for r in replicas {
        g.connect(r, Route::Unicast(k));
    }
    (g, k)
}

/// src -> emitter -> round-robin over 4 replicas -> collector: the
/// replicated emitter/collector shape produced by fission (§4.2).
fn replicated(items: u64) -> (ActorGraph, spinstreams_runtime::ActorId) {
    let mut g = ActorGraph::new();
    let s = g.add_actor(
        "src",
        Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
    );
    let e = g.add_actor("emitter", Behavior::worker(PassThrough));
    let replicas: Vec<_> = (0..4)
        .map(|i| g.add_actor(format!("r{i}"), Behavior::worker(PassThrough)))
        .collect();
    let k = g.add_actor("collector", Behavior::worker(PassThrough));
    g.connect(s, Route::Unicast(e));
    g.connect(e, Route::RoundRobin(replicas.clone()));
    for r in replicas {
        g.connect(r, Route::Unicast(k));
    }
    (g, k)
}

struct ExecCfg {
    /// `"threads"` or `"pool"` — the record's `executor` field.
    label: &'static str,
    kind: ExecutorKind,
    /// Pool worker count; `None` for thread-per-actor.
    workers: Option<usize>,
}

struct Record {
    topology: &'static str,
    executor: &'static str,
    workers: Option<usize>,
    batch_size: usize,
    items: u64,
    wall_s: f64,
    tuples_per_sec: f64,
    speedup_vs_batch1: f64,
    allocs_per_tuple: f64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Runs `shape` once at `items`, asserting losslessness; returns the wall
/// seconds and the number of heap allocations the run performed.
fn timed_run(shape: &Shape, items: u64, cfg: &EngineConfig) -> (f64, u64) {
    let (graph, sink) = (shape.build)(items);
    let before = ALLOCS.load(Ordering::Relaxed);
    let report = run(graph, cfg).expect("bench graph is valid");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let delivered = report.actor(sink).items_in;
    assert_eq!(delivered, items, "{}: lossless run expected", shape.name);
    (report.wall.as_secs_f64(), allocs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = flag(&args, "--out").unwrap_or_else(|| "BENCH_runtime.json".into());
    let items = flag(&args, "--items")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(if smoke { 5_000 } else { 200_000 });
    let only = flag(&args, "--topology");

    let shapes = [
        Shape {
            name: "pipeline",
            build: pipeline,
        },
        Shape {
            name: "fused",
            build: fused,
        },
        Shape {
            name: "fanout",
            build: fanout,
        },
        Shape {
            name: "replicated",
            build: replicated,
        },
    ];
    let mut execs = vec![ExecCfg {
        label: "threads",
        kind: ExecutorKind::ThreadPerActor,
        workers: None,
    }];
    for w in WORKER_COUNTS {
        execs.push(ExecCfg {
            label: "pool",
            kind: ExecutorKind::Pool { workers: w },
            workers: Some(w),
        });
    }

    let mut records: Vec<Record> = Vec::new();
    println!(
        "runtime throughput suite ({} mode, {items} items per run)",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:<12} {:>8} {:>7} {:>6} {:>10} {:>14} {:>9} {:>12}",
        "topology", "executor", "workers", "batch", "wall", "tuples/s", "speedup", "allocs/tuple"
    );
    for shape in &shapes {
        if only.as_deref().is_some_and(|t| t != shape.name) {
            continue;
        }
        for exec in &execs {
            let mut base_rate = 0.0f64;
            for batch_size in BATCH_SIZES {
                let cfg = EngineConfig {
                    mailbox_capacity: 256,
                    // Generous timeout: the suite measures throughput, not
                    // load shedding; nothing may drop.
                    send_timeout: Duration::from_secs(60),
                    seed: 0xBE9C4,
                    batch_size,
                    executor: exec.kind,
                    ..EngineConfig::default()
                };
                // Differential allocation accounting: the 2N run repeats
                // the N run's startup cost exactly, so the per-tuple count
                // is the slope between the two, immune to one-time setup.
                let (wall_s, allocs_n) = timed_run(shape, items, &cfg);
                let (_, allocs_2n) = timed_run(shape, items * 2, &cfg);
                let allocs_per_tuple = (allocs_2n.saturating_sub(allocs_n)) as f64 / items as f64;
                let rate = items as f64 / wall_s;
                if batch_size == 1 {
                    base_rate = rate;
                }
                let speedup = if base_rate > 0.0 {
                    rate / base_rate
                } else {
                    1.0
                };
                println!(
                    "{:<12} {:>8} {:>7} {:>6} {:>9.3}s {:>14.0} {:>8.2}x {:>12.4}",
                    shape.name,
                    exec.label,
                    exec.workers.map_or("-".into(), |w| w.to_string()),
                    batch_size,
                    wall_s,
                    rate,
                    speedup,
                    allocs_per_tuple
                );
                records.push(Record {
                    topology: shape.name,
                    executor: exec.label,
                    workers: exec.workers,
                    batch_size,
                    items,
                    wall_s,
                    tuples_per_sec: rate,
                    speedup_vs_batch1: speedup,
                    allocs_per_tuple,
                });
            }
        }
    }

    // Tracing-overhead measurement: the batch-64 pipeline under
    // thread-per-actor, untraced vs the sampled flight recorder (one span
    // anchor every 64 tuples). Longer runs than the sweep (sampler
    // start/stop is a fixed cost that must amortize, not dominate) and
    // best-of-five per side to shake scheduler noise out of the ratio the
    // validator gates on.
    const SPAN_SAMPLE: u64 = 64;
    let trace_items = if smoke { items } else { items.max(1_000_000) };
    let trace_reps = if smoke { 3 } else { 5 };
    let trace_cfg = EngineConfig {
        mailbox_capacity: 256,
        send_timeout: Duration::from_secs(60),
        seed: 0xBE9C4,
        batch_size: 64,
        executor: ExecutorKind::ThreadPerActor,
        ..EngineConfig::default()
    };
    let tcfg = TelemetryConfig::default()
        .with_interval(Duration::from_millis(100))
        .with_span_sample(SPAN_SAMPLE);
    // Interleave the sides: machine speed drifts over a suite this long,
    // and running all untraced reps before all traced ones would fold
    // that drift into the ratio as bias.
    let mut untraced_rate = 0.0f64;
    let mut traced_rate = 0.0f64;
    let mut span_events = 0usize;
    for _ in 0..trace_reps {
        let (graph, sink) = pipeline(trace_items);
        let report = run(graph, &trace_cfg).expect("bench graph is valid");
        assert_eq!(report.actor(sink).items_in, trace_items);
        untraced_rate = untraced_rate.max(trace_items as f64 / report.wall.as_secs_f64());

        let (graph, sink) = pipeline(trace_items);
        let (report, telemetry) =
            run_with_telemetry(graph, &trace_cfg, &tcfg).expect("bench graph is valid");
        assert_eq!(report.actor(sink).items_in, trace_items);
        span_events = telemetry
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Span { .. }))
            .count();
        traced_rate = traced_rate.max(trace_items as f64 / report.wall.as_secs_f64());
    }
    let tracing_ratio = traced_rate / untraced_rate;
    println!(
        "tracing overhead (pipeline, threads, batch 64, 1/{SPAN_SAMPLE} sampled): \
         {untraced_rate:.0} untraced vs {traced_rate:.0} traced tuples/s \
         ({tracing_ratio:.3}x, {span_events} span event(s) retained)"
    );

    // Plan-cache measurement (schema /5): the cold submission pays the
    // §4.1 profiling run plus Algorithms 1–3 and canonical serialization;
    // the warm submission of the byte-identical topology is a checksum
    // lookup plus an admission check. The validator gates hit <= 0.1x miss.
    let serve_engine = EngineConfig {
        executor: ExecutorKind::Pool { workers: 1 },
        batch_size: 8,
        seed: 0xBE9C4,
        ..EngineConfig::default()
    };
    let calibration_items = if smoke { 300 } else { 2_000 };
    let mut cache_svc = StreamService::new({
        let mut cfg = ServeConfig::new(serve_engine.clone());
        cfg.calibration_items = calibration_items;
        cfg
    });
    let cache_topo = tenant_topology(0xCACE, 0);
    let t0 = Instant::now();
    let cold = cache_svc
        .submit(SubmitRequest::new("cold", cache_topo.clone()).with_items(1_000))
        .expect("cold submission");
    let miss_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!cold.cache_hit, "first submission must miss");
    // Best of three warm submissions: a single hit is microseconds and
    // jitters; the min is the honest steady-state figure.
    let mut hit_ms = f64::INFINITY;
    for i in 0..3 {
        let t1 = Instant::now();
        let warm = cache_svc
            .submit(SubmitRequest::new(format!("warm{i}"), cache_topo.clone()).with_items(1_000))
            .expect("warm submission");
        hit_ms = hit_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        assert!(warm.cache_hit, "identical resubmission must hit");
        assert_eq!(warm.plan_checksum, cold.plan_checksum);
    }
    let cache_ratio = hit_ms / miss_ms;
    println!(
        "plan cache ({} calibration items): miss {miss_ms:.3} ms vs hit {hit_ms:.6} ms \
         ({:.1}x faster)",
        calibration_items,
        miss_ms / hit_ms,
    );

    // Multi-tenant measurement (schema /5): four seeded paced pipelines,
    // solo then concurrent on one single-worker shared pool. Paced sources
    // make the comparison meaningful on any core count: each tenant's
    // demand is far below one core, so the concurrent aggregate must land
    // near the sum of the solo rates. The validator gates >= 0.8x.
    const MT_TENANTS: usize = 4;
    let mt_items = if smoke { 400 } else { 2_000 };
    let mt_service = || {
        let mut cfg = ServeConfig::new(serve_engine.clone());
        cfg.calibration_items = 0;
        cfg.fuse = false;
        StreamService::new(cfg)
    };
    let mut solo_rates = Vec::with_capacity(MT_TENANTS);
    for i in 0..MT_TENANTS {
        let mut svc = mt_service();
        svc.submit(
            SubmitRequest::new(format!("t{i}"), tenant_topology(0xBEEF, i)).with_items(mt_items),
        )
        .expect("solo submission");
        let runs = svc.launch().expect("solo launch");
        solo_rates.push(
            runs[0]
                .report
                .source_throughput()
                .expect("solo rate measurable"),
        );
    }
    let mut svc = mt_service();
    for i in 0..MT_TENANTS {
        let receipt = svc
            .submit(
                SubmitRequest::new(format!("t{i}"), tenant_topology(0xBEEF, i))
                    .with_items(mt_items),
            )
            .expect("concurrent submission");
        assert!(receipt.state == spinstreams_serve::TenantState::Admitted);
    }
    let concurrent = svc.launch().expect("concurrent launch");
    let aggregate: f64 = concurrent
        .iter()
        .map(|r| r.report.source_throughput().unwrap_or(0.0))
        .sum();
    let solo_sum: f64 = solo_rates.iter().sum();
    let mt_ratio = aggregate / solo_sum;
    println!(
        "multitenant ({MT_TENANTS} paced tenants, pool 1 worker): aggregate {aggregate:.0} \
         vs solo sum {solo_sum:.0} tuples/s ({mt_ratio:.3}x)"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"spinstreams-bench-runtime/5\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(
        json,
        "  \"batch_sizes\": [{}],",
        BATCH_SIZES.map(|b| b.to_string()).join(", ")
    );
    let _ = writeln!(
        json,
        "  \"worker_counts\": [{}],",
        WORKER_COUNTS.map(|w| w.to_string()).join(", ")
    );
    let _ = writeln!(json, "  \"results\": [");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let workers = r.workers.map_or("null".into(), |w: usize| w.to_string());
        let _ = writeln!(
            json,
            "    {{\"topology\": \"{}\", \"executor\": \"{}\", \"workers\": {workers}, \
             \"batch_size\": {}, \"items\": {}, \
             \"wall_s\": {:.6}, \"tuples_per_sec\": {:.1}, \"speedup_vs_batch1\": {:.3}, \
             \"allocs_per_tuple\": {:.6}}}{comma}",
            r.topology,
            r.executor,
            r.batch_size,
            r.items,
            r.wall_s,
            r.tuples_per_sec,
            r.speedup_vs_batch1,
            r.allocs_per_tuple
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"tracing\": {{\"topology\": \"pipeline\", \"executor\": \"threads\", \
         \"batch_size\": 64, \"span_sample\": {SPAN_SAMPLE}, \"items\": {trace_items}, \
         \"untraced_tuples_per_sec\": {untraced_rate:.1}, \
         \"traced_tuples_per_sec\": {traced_rate:.1}, \
         \"ratio\": {tracing_ratio:.4}, \"span_events\": {span_events}}},"
    );
    let _ = writeln!(
        json,
        "  \"plan_cache\": {{\"calibration_items\": {calibration_items}, \
         \"plan_cache_miss_ms\": {miss_ms:.4}, \"plan_cache_hit_ms\": {hit_ms:.6}, \
         \"ratio\": {cache_ratio:.6}, \"plan_checksum\": \"{:#018x}\"}},",
        cold.plan_checksum
    );
    let solo_list = solo_rates
        .iter()
        .map(|r| format!("{r:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        json,
        "  \"multitenant\": {{\"tenants\": {MT_TENANTS}, \"items\": {mt_items}, \
         \"executor\": \"pool\", \"workers\": 1, \"batch_size\": 8, \
         \"solo_tuples_per_sec\": [{solo_list}], \"solo_sum\": {solo_sum:.1}, \
         \"aggregate_tuples_per_sec\": {aggregate:.1}, \"ratio\": {mt_ratio:.4}}}"
    );
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, json).expect("write bench output");
    println!("wrote {out_path}");
}
