//! Figure 7 — accuracy of the backpressure model on the random testbed.
//!
//! (a) predicted vs measured throughput per topology;
//! (b) relative prediction error per topology (paper: < 3% on average).
//!
//! `cargo run --release -p spinstreams-bench --bin fig7_accuracy [--quick]`

use spinstreams_bench::{build_testbed, mean, measure_entry, write_csv, ExperimentConfig};
use spinstreams_tool::ascii_series;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ExperimentConfig::from_args();
    println!(
        "Figure 7 — backpressure model accuracy ({} topologies, seeds {}..{})",
        cfg.topologies,
        cfg.seed_base,
        cfg.seed_base + cfg.topologies as u64 - 1
    );
    let testbed = build_testbed(&cfg)?;

    let mut labels = Vec::new();
    let mut predicted = Vec::new();
    let mut measured = Vec::new();
    let mut errors = Vec::new();
    let mut rows = Vec::new();
    for (i, entry) in testbed.iter().enumerate() {
        let cmp = measure_entry(entry, &[], &cfg)?;
        labels.push(format!("topo{:02}", i + 1));
        predicted.push(cmp.predicted_throughput);
        measured.push(cmp.measured_throughput);
        errors.push(cmp.relative_error() * 100.0);
        rows.push(format!(
            "{},{},{},{:.2},{:.2},{:.4}",
            i + 1,
            entry.generated.seed,
            entry.calibrated.num_operators(),
            cmp.predicted_throughput,
            cmp.measured_throughput,
            cmp.relative_error()
        ));
    }

    println!(
        "{}",
        ascii_series(
            "Fig. 7a — throughput (items/s), initial non-optimized topologies",
            &labels,
            &[("Predicted", predicted.clone()), ("Real", measured.clone())],
        )
    );
    println!(
        "{}",
        ascii_series(
            "Fig. 7b — relative prediction error (%)",
            &labels,
            &[("Error%", errors.clone())],
        )
    );
    println!(
        "mean relative error: {:.2}% (paper: < 3% on average); max {:.2}%",
        mean(&errors),
        errors.iter().cloned().fold(0.0, f64::max)
    );
    write_csv(
        "fig7",
        "topology,seed,operators,predicted_throughput,measured_throughput,relative_error",
        &rows,
    );
    Ok(())
}
