//! # spinstreams-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§5). One binary per figure/table:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `fig7_accuracy` | Fig. 7a/7b — predicted vs measured throughput and relative errors over the 50-topology testbed |
//! | `fig8_operator_errors` | Fig. 8 — per-operator departure-rate prediction errors |
//! | `fig9_bottleneck` | Fig. 9a/9b — replicas added by bottleneck elimination; accuracy on the parallelized topologies |
//! | `fig10_bounds` | Fig. 10 — throughput under replica bounds (hold-off replication) |
//! | `table1_2_fusion` | Tables 1 & 2 — the Figure 11 fusion case study |
//!
//! Criterion micro-benchmarks of the tool itself (`benches/`) measure the
//! cost of the analysis algorithms and of the runtime substrate, plus
//! ablations (skew-aware key partitioning, BAS vs load shedding).
//!
//! Experiments run on the *virtual-time* executor (see
//! `spinstreams_runtime::simulate`), so results are host-independent and
//! deterministic given the seeds printed in each header.

#![warn(missing_docs)]

use spinstreams_tool::{
    calibrate, experiment_executor, items_for_duration, predict_vs_measure, Comparison,
    HarnessError,
};
use spinstreams_topogen::{generate, GeneratedTopology, TopogenConfig};

/// Standard experiment parameters shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of testbed topologies (paper: 50).
    pub topologies: usize,
    /// Base seed; topology `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Target run length in (virtual) seconds per measurement.
    pub run_secs: f64,
    /// Target run length for the calibration pass.
    pub calibration_secs: f64,
    /// Generator configuration.
    pub topogen: TopogenConfig,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            topologies: 50,
            seed_base: 1_000,
            run_secs: 15.0,
            calibration_secs: 10.0,
            topogen: TopogenConfig::default(),
        }
    }
}

impl ExperimentConfig {
    /// Parses `--quick` / `--topologies N` / `--seed S` from the command
    /// line, for fast smoke runs.
    pub fn from_args() -> Self {
        let mut cfg = ExperimentConfig::default();
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            match a.as_str() {
                "--quick" => {
                    cfg.topologies = 8;
                    cfg.run_secs = 8.0;
                    cfg.calibration_secs = 4.0;
                }
                "--topologies" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        cfg.topologies = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                        cfg.seed_base = v;
                    }
                }
                _ => {}
            }
        }
        cfg
    }
}

/// One testbed entry: the generated topology plus its calibrated twin.
pub struct TestbedEntry {
    /// The generated topology (profiled service times).
    pub generated: GeneratedTopology,
    /// The same topology with service times and selectivities re-measured
    /// in situ by a calibration run (§4.1's profiling step).
    pub calibrated: spinstreams_core::Topology,
}

/// Generates and calibrates the `n`-topology testbed.
///
/// Calibration runs the application once and replaces the per-operator
/// annotations with measured values — the paper's "executing the
/// application as is for a reasonable amount of time" — so the models are
/// fed the same kind of profile data the authors used.
///
/// # Errors
///
/// Propagates harness failures (codegen/engine).
pub fn build_testbed(cfg: &ExperimentConfig) -> Result<Vec<TestbedEntry>, HarnessError> {
    let mut out = Vec::with_capacity(cfg.topologies);
    for i in 0..cfg.topologies {
        let seed = cfg.seed_base + i as u64;
        let generated = generate(seed, &cfg.topogen);
        let executor = experiment_executor(seed ^ 0xCA11);
        let prelim = spinstreams_analysis::steady_state(&generated.topology);
        let items = items_for_duration(prelim.throughput.items_per_sec(), cfg.calibration_secs);
        let calibrated = calibrate(
            &generated.topology,
            Some(&generated.source_keys),
            items,
            50,
            &executor,
        )?;
        out.push(TestbedEntry {
            generated,
            calibrated,
        });
    }
    Ok(out)
}

/// Runs the predict-vs-measure comparison for one testbed entry with the
/// given replication degrees (empty = unreplicated).
///
/// The measurement uses a different seed than the calibration run, so the
/// model is validated on an execution it has not seen.
///
/// # Errors
///
/// Propagates harness failures.
pub fn measure_entry(
    entry: &TestbedEntry,
    replicas: &[usize],
    cfg: &ExperimentConfig,
) -> Result<Comparison, HarnessError> {
    let predicted = if replicas.is_empty() {
        spinstreams_analysis::steady_state(&entry.calibrated)
            .throughput
            .items_per_sec()
    } else {
        spinstreams_analysis::evaluate_with_replicas(&entry.calibrated, replicas)
            .throughput
            .items_per_sec()
    };
    let items = items_for_duration(predicted, cfg.run_secs);
    let executor = experiment_executor(entry.generated.seed ^ 0x5EED);
    predict_vs_measure(
        &entry.calibrated,
        Some(&entry.generated.source_keys),
        replicas,
        &[],
        items,
        &executor,
    )
}

/// Writes rows as CSV into `results/<name>.csv` (best effort — failures are
/// reported to stderr but do not abort the experiment).
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = format!("results/{name}.csv");
    let body = format!("{header}\n{}\n", rows.join("\n"));
    if let Err(e) = std::fs::create_dir_all("results").and_then(|_| std::fs::write(&path, body)) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("(wrote {path})");
    }
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quick_testbed_calibrates_and_measures() {
        let cfg = ExperimentConfig {
            topologies: 2,
            seed_base: 77,
            run_secs: 1.0,
            calibration_secs: 0.5,
            topogen: TopogenConfig::fast(),
        };
        let testbed = build_testbed(&cfg).unwrap();
        assert_eq!(testbed.len(), 2);
        for entry in &testbed {
            let cmp = measure_entry(entry, &[], &cfg).unwrap();
            assert!(cmp.measured_throughput > 0.0);
            assert!(cmp.predicted_throughput > 0.0);
            // The model should be in the right ballpark even on tiny runs.
            assert!(
                cmp.relative_error() < 0.5,
                "seed {}: error {:.2}",
                entry.generated.seed,
                cmp.relative_error()
            );
        }
    }
}
