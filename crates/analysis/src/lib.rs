//! # spinstreams-analysis
//!
//! The SpinStreams cost models and optimization algorithms (§3 of the
//! paper):
//!
//! * [`steady_state`] — **Algorithm 1**: steady-state throughput analysis of
//!   a topology under backpressure (Blocking-After-Service buffers), with
//!   the Theorem 3.2 source-rate correction and the §3.4 selectivity
//!   extensions.
//! * [`eliminate_bottlenecks`] — **Algorithm 2**: operator fission. Computes
//!   a replication degree per operator (`⌈ρ⌉` for stateless operators, a
//!   key-partitioning-aware degree for partitioned-stateful ones) and
//!   propagates backpressure from bottlenecks that cannot be removed.
//! * [`fuse`] / [`fusion_service_time`] — **Algorithm 3**: operator fusion.
//!   Replaces a single-front-end sub-graph with one meta-operator whose
//!   service time is the path-probability-weighted aggregate of Definition
//!   2, then re-runs Algorithm 1 to predict the outcome.
//! * [`apply_replica_bound`] — the §3.2 *hold-off replication* heuristic
//!   that proportionally shrinks a fission plan to a user-given budget.
//! * [`fusion_candidates`] / [`auto_fuse`] — utilization-ranked fusion
//!   candidate enumeration (the GUI ranking of §4.1) and the automated
//!   greedy fusion search the paper lists as future work (§7).
//! * [`DriftMonitor`] — the §5.2 predicted-vs-measured validation run
//!   *online*: flags operators whose live departure rates have drifted
//!   from the Algorithm 1 predictions.
//! * [`Reprofiler`] — the §4.1 annotation step computed *online*: service
//!   times, selectivities, and routing probabilities continuously
//!   re-estimated from live telemetry counters, with a flattened layout
//!   that drops into [`DriftMonitor`] so drift reports name the stale
//!   annotation.
//! * [`attribute`] — bottleneck attribution: joins Algorithm 1's predicted
//!   bottleneck with the measured one, explaining disagreement through
//!   the blocked-time backpressure chain.
//! * [`merge_sources`] — the fictitious-source transform (§3.1) that turns a
//!   multi-source application into the rooted form the models require.
//!
//! # Example
//!
//! ```
//! use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
//! use spinstreams_analysis::steady_state;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Topology::builder();
//! let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
//! let slow = b.add_operator(OperatorSpec::stateless("slow", ServiceTime::from_millis(2.0)));
//! b.add_edge(src, slow, 1.0)?;
//! let topo = b.build()?;
//!
//! let report = steady_state(&topo);
//! // The 2 ms operator is the bottleneck: throughput halves to 500 items/s.
//! assert!((report.throughput.items_per_sec() - 500.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod admission;
mod attribution;
mod bottleneck;
mod candidates;
mod controller;
mod drift;
mod fusion;
mod multi_source;
mod partitioning;
mod report;
mod reprofile;
mod steady_state;

pub use admission::{
    admit, plan_demand_cores, pool_demand_cores, AdmissionConfig, AdmissionVerdict,
};
pub use attribution::{attribute, AttributionReport, ObservedOperator, OperatorVerdict};
pub use bottleneck::{
    apply_replica_bound, effective_service_rate, eliminate_bottlenecks, evaluate_with_replicas,
    FissionPlan,
};
pub use candidates::{auto_fuse, fusion_candidates, AutoFusion, FusionCandidate};
pub use controller::{AdaptiveConfig, AdaptiveController, PlanChange};
pub use drift::{DriftConfig, DriftMonitor, DriftStatus, DriftVerdict};
pub use fusion::{fuse, fusion_service_time, FusionError, FusionOutcome};
pub use multi_source::{merge_sources, MultiSourceSpec};
pub use partitioning::{
    consistent_hash_partitioning, key_partitioning, key_partitioning_for_rho, KeyAssignment,
};
pub use report::{format_fission_plan, format_steady_state};
pub use reprofile::{AnnotationId, AnnotationKind, OperatorCounters, Reprofiler};
pub use steady_state::{
    steady_state, steady_state_with_rates, BottleneckEvent, OperatorMetrics, SteadyStateReport,
};
