//! The fictitious-source transform for multi-source applications (§3.1).
//!
//! SpinStreams' models require a rooted graph, but §3.1 notes that "the
//! single source assumption can be circumvented by adding a fictitious
//! source operator in the topology linked to the real sources". This module
//! implements that transform: a zero-ish-cost fictitious source generates at
//! the aggregate rate of the real sources and routes to each of them with a
//! probability proportional to its generation rate, so every real source
//! still ingests items at its own rate at steady state.

use spinstreams_core::{Edge, OperatorId, OperatorSpec, ServiceRate, Topology, TopologyError};

/// An unvalidated multi-source application description: operators plus
/// edges, where *several* vertices may lack input edges (the real sources).
#[derive(Debug, Clone, Default)]
pub struct MultiSourceSpec {
    ops: Vec<OperatorSpec>,
    edges: Vec<Edge>,
}

impl MultiSourceSpec {
    /// Creates an empty spec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operator, returning its id.
    pub fn add_operator(&mut self, spec: OperatorSpec) -> OperatorId {
        self.ops.push(spec);
        OperatorId(self.ops.len() - 1)
    }

    /// Adds an edge (validated later, during the merge).
    pub fn add_edge(&mut self, from: OperatorId, to: OperatorId, probability: f64) {
        self.edges.push(Edge {
            from,
            to,
            probability,
        });
    }

    /// The vertices that currently have no input edges.
    pub fn sources(&self) -> Vec<OperatorId> {
        let mut has_input = vec![false; self.ops.len()];
        for e in &self.edges {
            if e.to.0 < self.ops.len() {
                has_input[e.to.0] = true;
            }
        }
        (0..self.ops.len())
            .filter(|i| !has_input[*i])
            .map(OperatorId)
            .collect()
    }
}

/// Builds a rooted [`Topology`] from a (possibly) multi-source spec.
///
/// With a single source the spec is validated as-is. With `k > 1` sources, a
/// fictitious source is appended whose service rate is the sum of the real
/// sources' rates, with an edge to real source `i` of probability
/// `µᵢ / Σµ`; at steady state without bottlenecks each real source then
/// receives items exactly at its own generation rate, preserving the
/// original behavior. The transformed real sources keep their service rates
/// and act as rate-limiting pass-through stages.
///
/// # Errors
///
/// Any structural error surfaced by topology validation (cycles, bad
/// probabilities, …), or [`TopologyError::Empty`] for an empty spec.
pub fn merge_sources(spec: &MultiSourceSpec) -> Result<Topology, TopologyError> {
    if spec.ops.is_empty() {
        return Err(TopologyError::Empty);
    }
    let sources = spec.sources();
    let mut ops = spec.ops.clone();
    let mut edges = spec.edges.clone();

    if sources.len() > 1 {
        let total: f64 = sources
            .iter()
            .map(|s| ops[s.0].service_rate().items_per_sec())
            .sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(TopologyError::InvalidOperator {
                index: sources[0].0,
                reason: format!("aggregate source rate {total} is not positive and finite"),
            });
        }
        let fict = OperatorId(ops.len());
        ops.push(OperatorSpec::source(
            "fictitious-source",
            ServiceRate::per_sec(total).service_time(),
        ));
        for s in &sources {
            let p = ops[s.0].service_rate().items_per_sec() / total;
            edges.push(Edge {
                from: fict,
                to: *s,
                probability: p,
            });
        }
    }

    let mut b = Topology::builder();
    for op in ops {
        b.add_operator(op);
    }
    for e in edges {
        b.add_edge(e.from, e.to, e.probability)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady_state;
    use spinstreams_core::ServiceTime;

    fn op(name: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms))
    }

    #[test]
    fn single_source_spec_passes_through() {
        let mut s = MultiSourceSpec::new();
        let a = s.add_operator(op("src", 1.0));
        let b = s.add_operator(op("sink", 0.5));
        s.add_edge(a, b, 1.0);
        let t = merge_sources(&s).unwrap();
        assert_eq!(t.num_operators(), 2);
        assert_eq!(t.source(), a);
    }

    #[test]
    fn two_sources_get_fictitious_root() {
        // Source A at 1000/s and source B at 500/s feeding a shared join.
        let mut s = MultiSourceSpec::new();
        let a = s.add_operator(op("srcA", 1.0));
        let b = s.add_operator(op("srcB", 2.0));
        let j = s.add_operator(op("join", 0.1));
        s.add_edge(a, j, 1.0);
        s.add_edge(b, j, 1.0);
        assert_eq!(s.sources().len(), 2);

        let t = merge_sources(&s).unwrap();
        assert_eq!(t.num_operators(), 4);
        let fict = t.source();
        assert_eq!(t.operator(fict).name, "fictitious-source");
        // Aggregate rate 1500/s.
        assert!((t.operator(fict).service_rate().items_per_sec() - 1500.0).abs() < 1e-6);
        // Probabilities proportional to rates: 2/3 and 1/3.
        assert!((t.edge_probability(fict, a).unwrap() - 2.0 / 3.0).abs() < 1e-9);
        assert!((t.edge_probability(fict, b).unwrap() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merged_steady_state_preserves_per_source_rates() {
        let mut s = MultiSourceSpec::new();
        let a = s.add_operator(op("srcA", 1.0));
        let b = s.add_operator(op("srcB", 2.0));
        let j = s.add_operator(op("sink", 0.1));
        s.add_edge(a, j, 1.0);
        s.add_edge(b, j, 1.0);
        let t = merge_sources(&s).unwrap();
        let r = steady_state(&t);
        // No bottleneck: each real source departs at its own rate.
        assert!((r.metric(a).departure - 1000.0).abs() < 1e-6);
        assert!((r.metric(b).departure - 500.0).abs() < 1e-6);
        assert!((r.metric(j).arrival - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_behind_merged_sources_throttles_aggregate() {
        let mut s = MultiSourceSpec::new();
        let a = s.add_operator(op("srcA", 1.0));
        let b = s.add_operator(op("srcB", 1.0));
        let j = s.add_operator(op("slow", 1.0)); // needs 2000/s, has 1000/s
        s.add_edge(a, j, 1.0);
        s.add_edge(b, j, 1.0);
        let t = merge_sources(&s).unwrap();
        let r = steady_state(&t);
        assert!(r.has_bottleneck());
        assert!((r.metric(j).arrival - 1000.0).abs() < 1e-6);
        // Backpressure splits evenly between equal-rate sources.
        assert!((r.metric(a).departure - 500.0).abs() < 1e-6);
        assert!((r.metric(b).departure - 500.0).abs() < 1e-6);
    }

    #[test]
    fn empty_spec_rejected() {
        assert_eq!(
            merge_sources(&MultiSourceSpec::new()).unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn three_sources_probabilities_sum_to_one() {
        let mut s = MultiSourceSpec::new();
        let srcs: Vec<_> = (0..3)
            .map(|i| s.add_operator(op(&format!("src{i}"), 1.0 + i as f64)))
            .collect();
        let k = s.add_operator(op("sink", 0.01));
        for src in &srcs {
            s.add_edge(*src, k, 1.0);
        }
        let t = merge_sources(&s).unwrap();
        let fict = t.source();
        let total: f64 = t
            .out_edges(fict)
            .iter()
            .map(|e| t.edge(*e).probability)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
