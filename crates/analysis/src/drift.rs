//! Online predicted-vs-measured drift monitoring (§5.2 of the paper).
//!
//! The paper validates Algorithm 1 by comparing the predicted per-operator
//! departure rates against the rates measured on the running application.
//! [`DriftMonitor`] performs that comparison *online*: each telemetry tick
//! it receives the rolling measured departure rate per operator and flags
//! any operator whose relative error against the static prediction exceeds
//! a threshold for several consecutive ticks. A sustained drift means the
//! profile the optimizer ran on (service times, selectivities) no longer
//! describes the live workload — the signal to re-profile and re-optimize.
//!
//! The monitor is deliberately decoupled from the runtime: it consumes
//! plain `f64` rates, so it works identically against the threaded engine,
//! the discrete-event executor, or rates parsed back out of an exported
//! telemetry log.

/// Configuration for a [`DriftMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative error above which a tick counts toward drift
    /// (`|predicted - measured| / max(predicted, measured)`). The
    /// symmetric denominator means an over-estimate and an under-estimate
    /// of the same magnitude trip at the same threshold: predicted 100 vs
    /// measured 50 and predicted 50 vs measured 100 both score 0.5 (a
    /// predicted-only denominator would score the latter 1.0). Default
    /// `0.25`.
    pub threshold: f64,
    /// Number of initial ticks reported as [`DriftStatus::Warmup`] and
    /// excluded from streak counting — rolling rates are noisy while the
    /// pipeline fills. Default `2`.
    pub warmup_ticks: u64,
    /// Number of consecutive over-threshold ticks required before an
    /// operator is reported as [`DriftStatus::Drifting`]. Default `2`.
    pub consecutive: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            threshold: 0.25,
            warmup_ticks: 2,
            consecutive: 2,
        }
    }
}

/// Per-operator verdict for one monitor tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftVerdict {
    /// Index of the operator (position in the rate slices).
    pub index: usize,
    /// The statically predicted departure rate (items/s), if any.
    pub predicted: Option<f64>,
    /// The measured rolling departure rate (items/s), if any.
    pub measured: Option<f64>,
    /// `|predicted - measured| / max(predicted, measured)`; `None` unless
    /// both rates are present and at least one is positive.
    pub rel_error: Option<f64>,
    /// The streak-aware classification.
    pub status: DriftStatus,
}

/// Classification of one operator at one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftStatus {
    /// Still inside [`DriftConfig::warmup_ticks`]; no judgement made.
    Warmup,
    /// No prediction or no measurement available for this operator.
    NoData,
    /// Relative error within threshold, or streak not yet long enough.
    Ok,
    /// Relative error exceeded the threshold for
    /// [`DriftConfig::consecutive`] ticks in a row.
    Drifting,
}

impl std::fmt::Display for DriftStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriftStatus::Warmup => "warmup",
            DriftStatus::NoData => "no-data",
            DriftStatus::Ok => "ok",
            DriftStatus::Drifting => "drifting",
        })
    }
}

/// Streaming comparator of predicted vs measured per-operator rates.
///
/// Create one per run with the predictions from Algorithm 1, then call
/// [`tick`](DriftMonitor::tick) once per telemetry snapshot with the
/// rolling measured rates (indexed the same way as the predictions).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    predicted: Vec<Option<f64>>,
    config: DriftConfig,
    streaks: Vec<u32>,
    ticks: u64,
}

impl DriftMonitor {
    /// Creates a monitor for `predicted` per-operator departure rates
    /// (items/s). `None` entries are never judged (reported as
    /// [`DriftStatus::NoData`]).
    pub fn new(predicted: Vec<Option<f64>>, config: DriftConfig) -> Self {
        let n = predicted.len();
        Self {
            predicted,
            config,
            streaks: vec![0; n],
            ticks: 0,
        }
    }

    /// Number of operators being monitored.
    pub fn len(&self) -> usize {
        self.predicted.len()
    }

    /// True if the monitor tracks no operators.
    pub fn is_empty(&self) -> bool {
        self.predicted.is_empty()
    }

    /// Ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Feeds one snapshot of measured rolling rates and returns a verdict
    /// per operator. `measured` entries beyond `self.len()` are ignored;
    /// missing entries are treated as `None`.
    ///
    /// A tick with a measurement (`Some`) either extends or resets the
    /// over-threshold streak; a tick without one leaves the streak
    /// untouched, so a momentarily idle operator neither accrues nor
    /// forgives drift.
    pub fn tick(&mut self, measured: &[Option<f64>]) -> Vec<DriftVerdict> {
        self.ticks += 1;
        let warming = self.ticks <= self.config.warmup_ticks;
        let mut verdicts = Vec::with_capacity(self.predicted.len());
        for (i, &predicted) in self.predicted.iter().enumerate() {
            let m = measured.get(i).copied().flatten();
            let rel_error = match (predicted, m) {
                (Some(p), Some(meas)) if p.max(meas) > 0.0 => Some((p - meas).abs() / p.max(meas)),
                _ => None,
            };
            let status = if warming {
                DriftStatus::Warmup
            } else {
                match rel_error {
                    None => DriftStatus::NoData,
                    Some(e) => {
                        if e > self.config.threshold {
                            self.streaks[i] = self.streaks[i].saturating_add(1);
                        } else {
                            self.streaks[i] = 0;
                        }
                        if self.streaks[i] >= self.config.consecutive {
                            DriftStatus::Drifting
                        } else {
                            DriftStatus::Ok
                        }
                    }
                }
            };
            verdicts.push(DriftVerdict {
                index: i,
                predicted,
                measured: m,
                rel_error,
                status,
            });
        }
        verdicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(pred: &[f64]) -> DriftMonitor {
        DriftMonitor::new(
            pred.iter().map(|&p| Some(p)).collect(),
            DriftConfig {
                threshold: 0.25,
                warmup_ticks: 1,
                consecutive: 2,
            },
        )
    }

    #[test]
    fn warmup_ticks_make_no_judgement() {
        let mut m = monitor(&[100.0]);
        let v = m.tick(&[Some(1.0)]); // wildly off, but warming up
        assert_eq!(v[0].status, DriftStatus::Warmup);
        assert!(v[0].rel_error.unwrap() > 0.9);
    }

    #[test]
    fn drift_requires_consecutive_over_threshold_ticks() {
        let mut m = monitor(&[100.0]);
        m.tick(&[Some(100.0)]); // warmup
        let v = m.tick(&[Some(10.0)]); // 1st over-threshold tick
        assert_eq!(v[0].status, DriftStatus::Ok);
        let v = m.tick(&[Some(10.0)]); // 2nd consecutive -> drifting
        assert_eq!(v[0].status, DriftStatus::Drifting);
        assert!((v[0].rel_error.unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn in_threshold_tick_resets_the_streak() {
        let mut m = monitor(&[100.0]);
        m.tick(&[Some(100.0)]); // warmup
        m.tick(&[Some(10.0)]); // streak 1
        let v = m.tick(&[Some(95.0)]); // back in band -> reset
        assert_eq!(v[0].status, DriftStatus::Ok);
        let v = m.tick(&[Some(10.0)]); // streak restarts at 1
        assert_eq!(v[0].status, DriftStatus::Ok);
        let v = m.tick(&[Some(10.0)]);
        assert_eq!(v[0].status, DriftStatus::Drifting);
    }

    #[test]
    fn missing_measurement_freezes_the_streak() {
        let mut m = monitor(&[100.0]);
        m.tick(&[Some(100.0)]); // warmup
        m.tick(&[Some(10.0)]); // streak 1
        let v = m.tick(&[None]); // idle tick: no data, streak kept
        assert_eq!(v[0].status, DriftStatus::NoData);
        let v = m.tick(&[Some(10.0)]); // streak 2 -> drifting
        assert_eq!(v[0].status, DriftStatus::Drifting);
    }

    #[test]
    fn unpredicted_operators_report_no_data() {
        let mut m = DriftMonitor::new(vec![None, Some(50.0)], DriftConfig::default());
        m.tick(&[Some(1.0), Some(50.0)]);
        m.tick(&[Some(1.0), Some(50.0)]);
        let v = m.tick(&[Some(1.0), Some(50.0)]);
        assert_eq!(v[0].status, DriftStatus::NoData);
        assert_eq!(v[0].rel_error, None);
        assert_eq!(v[1].status, DriftStatus::Ok);
        assert_eq!(v[1].rel_error, Some(0.0));
    }

    #[test]
    fn short_measured_slice_is_padded_with_none() {
        let mut m = monitor(&[100.0, 200.0]);
        m.tick(&[Some(100.0)]); // warmup
        let v = m.tick(&[Some(100.0)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[1].status, DriftStatus::NoData);
    }

    #[test]
    fn rel_error_is_symmetric_in_over_and_under_estimates() {
        // Over-estimate: predicted 100, measured 50.
        let mut over = monitor(&[100.0]);
        over.tick(&[Some(100.0)]); // warmup
        let vo = over.tick(&[Some(50.0)]);
        // Under-estimate of the same magnitude: predicted 50, measured 100.
        let mut under = monitor(&[50.0]);
        under.tick(&[Some(50.0)]); // warmup
        let vu = under.tick(&[Some(100.0)]);
        assert_eq!(vo[0].rel_error, vu[0].rel_error);
        assert!((vo[0].rel_error.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_prediction_with_positive_measurement_is_judged() {
        // A predicted-only denominator would divide by zero here; the
        // symmetric form scores it as 100% error.
        let mut m = monitor(&[0.0]);
        m.tick(&[Some(10.0)]); // warmup
        m.tick(&[Some(10.0)]);
        let v = m.tick(&[Some(10.0)]);
        assert_eq!(v[0].rel_error, Some(1.0));
        assert_eq!(v[0].status, DriftStatus::Drifting);
    }

    #[test]
    fn accepts_measurements_within_threshold_forever() {
        let mut m = monitor(&[1000.0]);
        for _ in 0..20 {
            let v = m.tick(&[Some(900.0)]); // 10% error < 25%
            assert_ne!(v[0].status, DriftStatus::Drifting);
        }
        assert_eq!(m.ticks(), 20);
    }
}
