//! Human-readable reports — the textual analogue of the SpinStreams GUI
//! annotations (§4.1): per-operator λ, ρ, δ labels and the predicted
//! topology throughput.

use crate::{FissionPlan, SteadyStateReport};
use spinstreams_core::Topology;
use std::fmt::Write as _;

/// Formats a steady-state report as an aligned table, one row per operator.
///
/// Columns: operator id and name, service time `µ⁻¹`, arrival rate `λ`,
/// utilization `ρ`, departure rate `δ`, and `δ⁻¹` in milliseconds (the form
/// used by the paper's Tables 1 and 2).
pub fn format_steady_state(topo: &Topology, report: &SteadyStateReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<5} {:<20} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "id", "operator", "µ⁻¹ (ms)", "λ (1/s)", "ρ", "δ (1/s)", "δ⁻¹ (ms)"
    );
    for id in topo.operator_ids() {
        let op = topo.operator(id);
        let m = report.metric(id);
        let dinv = if m.departure > 0.0 {
            1000.0 / m.departure
        } else {
            f64::INFINITY
        };
        let _ = writeln!(
            s,
            "{:<5} {:<20} {:>12.3} {:>12.2} {:>8.3} {:>12.2} {:>10.3}",
            id.to_string(),
            op.name,
            op.service_time.as_millis(),
            m.arrival,
            m.utilization,
            m.departure,
            dinv
        );
    }
    let _ = writeln!(
        s,
        "predicted throughput: {:.2} items/s ({} bottleneck corrections, {} visits)",
        report.throughput.items_per_sec(),
        report.bottlenecks.len(),
        report.visits
    );
    s
}

/// Formats a fission plan: per-operator replication degrees and the
/// predicted post-fission steady state.
pub fn format_fission_plan(topo: &Topology, plan: &FissionPlan) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<5} {:<20} {:>9} {:>12} {:>8} {:>12}",
        "id", "operator", "replicas", "λ (1/s)", "ρ", "δ (1/s)"
    );
    for id in topo.operator_ids() {
        let op = topo.operator(id);
        let m = plan.metrics[id.0];
        let marker = if plan.residual_bottlenecks.contains(&id) {
            "  <- residual bottleneck"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "{:<5} {:<20} {:>9} {:>12.2} {:>8.3} {:>12.2}{}",
            id.to_string(),
            op.name,
            plan.replicas[id.0],
            m.arrival,
            m.utilization,
            m.departure,
            marker
        );
    }
    let _ = writeln!(
        s,
        "total replicas: {} (+{} added); predicted throughput: {:.2} items/s{}",
        plan.total_replicas(),
        plan.additional_replicas(),
        plan.throughput.items_per_sec(),
        if plan.ideal() {
            "; all bottlenecks removed"
        } else {
            "; residual bottlenecks remain"
        }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eliminate_bottlenecks, steady_state};
    use spinstreams_core::{OperatorSpec, ServiceTime, Topology};

    fn sample() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let sl = b.add_operator(OperatorSpec::stateless(
            "slow-map",
            ServiceTime::from_millis(2.5),
        ));
        let st = b.add_operator(OperatorSpec::stateful(
            "state",
            ServiceTime::from_millis(0.5),
        ));
        b.add_edge(s, sl, 1.0).unwrap();
        b.add_edge(sl, st, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn steady_state_report_mentions_operators_and_throughput() {
        let t = sample();
        let text = format_steady_state(&t, &steady_state(&t));
        assert!(text.contains("slow-map"));
        assert!(text.contains("predicted throughput: 400.00 items/s"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn fission_plan_report_shows_replicas() {
        let t = sample();
        let plan = eliminate_bottlenecks(&t);
        let text = format_fission_plan(&t, &plan);
        assert!(text.contains("total replicas: 5 (+2 added)"));
        assert!(text.contains("all bottlenecks removed"));
    }

    #[test]
    fn fission_plan_report_flags_residual_bottlenecks() {
        let mut b = Topology::builder();
        let s = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let st = b.add_operator(OperatorSpec::stateful(
            "state",
            ServiceTime::from_millis(2.0),
        ));
        b.add_edge(s, st, 1.0).unwrap();
        let t = b.build().unwrap();
        let plan = eliminate_bottlenecks(&t);
        let text = format_fission_plan(&t, &plan);
        assert!(text.contains("residual bottleneck"));
    }
}
