//! Algorithm 1 — steady-state analysis with backpressure.
//!
//! Visits the operators in topological order, computing each operator's
//! arrival rate `λᵢ` from the departure rates of its predecessors. Whenever
//! a vertex turns out to be a bottleneck (`ρᵢ = λᵢ/µᵢ > 1`), the source
//! departure rate is corrected by Theorem 3.2 (`δ₁ ← δ₁/ρᵢ`) and the visit
//! restarts — exactly the structure of the paper's Algorithm 1, generalized
//! with the §3.4 selectivity rules.

use spinstreams_core::{topological_order, OperatorId, ServiceRate, Topology};

/// Numerical slack on the `ρ > 1` bottleneck test.
///
/// After a Theorem 3.2 correction the revisited vertex has `ρ = 1` only up
/// to floating-point rounding; without slack the algorithm could correct the
/// same vertex forever by infinitesimal amounts.
const RHO_EPSILON: f64 = 1e-9;

/// Per-operator steady-state labels produced by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorMetrics {
    /// Steady-state arrival rate `λ` (items/s). Zero for the source.
    pub arrival: f64,
    /// Utilization factor `ρ = λ/µ_eff` (dimensionless, `≤ 1` at steady
    /// state; the source's is its ingestion rate over `µ₁` — selectivity
    /// affects only departures, §3.4).
    pub utilization: f64,
    /// Steady-state departure rate `δ` (items/s) onto any output edge.
    pub departure: f64,
    /// Replication degree used when computing the effective service rate
    /// (always 1 for plain Algorithm 1).
    pub replicas: usize,
}

/// A bottleneck discovered during the analysis, before its backpressure was
/// folded into the source rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckEvent {
    /// The bottleneck operator.
    pub operator: OperatorId,
    /// Its utilization factor at the moment of discovery (`> 1`).
    pub utilization: f64,
}

/// Result of the steady-state analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SteadyStateReport {
    /// Per-operator metrics, indexed by operator id.
    pub metrics: Vec<OperatorMetrics>,
    /// The topology throughput: the source's steady-state ingestion rate
    /// (items ingested per second, §5.2's definition). The source's
    /// *departure* rate is this times its own selectivity rate factor —
    /// identical for the common identity-selectivity source.
    pub throughput: ServiceRate,
    /// Sum of sink departure rates. With identity selectivities this equals
    /// `throughput` (Proposition 3.5).
    pub sink_departure_total: ServiceRate,
    /// Every bottleneck correction applied, in discovery order.
    pub bottlenecks: Vec<BottleneckEvent>,
    /// Total vertex visits performed — bounded by `O(|V|²)`
    /// (Proposition 3.4).
    pub visits: usize,
}

impl SteadyStateReport {
    /// Operators whose steady-state utilization is at least `threshold`
    /// (used to locate the saturated operators; `ρ ≈ 1`).
    pub fn saturated(&self, threshold: f64) -> Vec<OperatorId> {
        self.metrics
            .iter()
            .enumerate()
            .filter(|(_, m)| m.utilization >= threshold)
            .map(|(i, _)| OperatorId(i))
            .collect()
    }

    /// True if the analysis found at least one bottleneck.
    pub fn has_bottleneck(&self) -> bool {
        !self.bottlenecks.is_empty()
    }

    /// The metrics of one operator.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn metric(&self, id: OperatorId) -> OperatorMetrics {
        self.metrics[id.0]
    }
}

/// Runs Algorithm 1 on `topo` with each operator's own (single-replica)
/// service rate.
///
/// See [`steady_state_with_rates`] for the generalized entry point used by
/// the fission machinery.
pub fn steady_state(topo: &Topology) -> SteadyStateReport {
    let rates: Vec<f64> = topo
        .operators()
        .iter()
        .map(|op| op.service_rate().items_per_sec())
        .collect();
    steady_state_with_rates(topo, &rates)
}

/// Runs Algorithm 1 with explicit *effective* service rates (items/s) per
/// operator.
///
/// The fission algorithms evaluate parallelized topologies by replacing each
/// replicated operator's rate with its aggregate effective rate (e.g. `n·µ`
/// for a stateless operator with `n` replicas) while keeping the topology
/// unchanged.
///
/// # Panics
///
/// Panics if `effective_rates.len() != topo.num_operators()` or any rate is
/// not positive.
pub fn steady_state_with_rates(topo: &Topology, effective_rates: &[f64]) -> SteadyStateReport {
    assert_eq!(
        effective_rates.len(),
        topo.num_operators(),
        "one effective rate per operator required"
    );
    assert!(
        effective_rates.iter().all(|r| *r > 0.0 && !r.is_nan()),
        "effective service rates must be positive"
    );

    let order = topological_order(topo);
    let n = topo.num_operators();
    let src = topo.source();
    debug_assert_eq!(order[0], src);

    // The source ingestion rate starts at the source's own service rate µ₁;
    // §3.4 applies selectivity only to departures, so ρ₁ stays λ/µ (here the
    // ingestion rate over µ₁) and δ₁ is the ingestion rate times the
    // source's rate factor.
    let src_factor = topo.operator(src).selectivity.rate_factor();
    let mut ingest_src = effective_rates[src.0];

    let mut arrival = vec![0.0f64; n];
    let mut rho = vec![0.0f64; n];
    let mut departure = vec![0.0f64; n];
    let mut bottlenecks = Vec::new();
    let mut visits = 0usize;

    'restart: loop {
        departure[src.0] = ingest_src * src_factor;
        rho[src.0] = ingest_src / effective_rates[src.0];
        arrival[src.0] = 0.0;
        visits += 1;

        for &id in order.iter().skip(1) {
            visits += 1;
            let i = id.0;
            // λᵢ = Σ_{j ∈ IN(i)} δⱼ · p(j, i)
            let mut lambda = 0.0;
            for &eid in topo.in_edges(id) {
                let e = topo.edge(eid);
                lambda += departure[e.from.0] * e.probability;
            }
            arrival[i] = lambda;
            let mu = effective_rates[i];
            let r = if mu.is_infinite() { 0.0 } else { lambda / mu };
            rho[i] = r;
            if r > 1.0 + RHO_EPSILON {
                // Bottleneck: Theorem 3.2 — lower the source rate and
                // restart the traversal.
                bottlenecks.push(BottleneckEvent {
                    operator: id,
                    utilization: r,
                });
                ingest_src /= r;
                continue 'restart;
            }
            // Not a bottleneck: δᵢ = min(λ, µ) · output/input (§3.4).
            let factor = topo.operator(id).selectivity.rate_factor();
            departure[i] = lambda.min(mu) * factor;
        }
        break;
    }

    let metrics: Vec<OperatorMetrics> = (0..n)
        .map(|i| OperatorMetrics {
            arrival: arrival[i],
            utilization: rho[i].min(1.0),
            departure: departure[i],
            replicas: 1,
        })
        .collect();
    let sink_total: f64 = topo.sinks().iter().map(|s| departure[s.0]).sum();

    SteadyStateReport {
        metrics,
        throughput: ServiceRate::per_sec(ingest_src),
        sink_departure_total: ServiceRate::per_sec(sink_total),
        bottlenecks,
        visits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{OperatorSpec, Selectivity, ServiceTime, Topology};

    fn op(name: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms))
    }

    fn pipeline(ms: &[f64]) -> Topology {
        let mut b = Topology::builder();
        let ids: Vec<_> = ms
            .iter()
            .enumerate()
            .map(|(i, t)| b.add_operator(op(&format!("op{i}"), *t)))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn pipeline_throughput_is_slowest_stage() {
        // §2: the throughput of a pipeline equals that of its slowest
        // operator.
        let t = pipeline(&[1.0, 4.0, 2.0]);
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 250.0).abs() < 1e-6);
        assert_eq!(r.bottlenecks.len(), 1);
        assert_eq!(r.bottlenecks[0].operator, OperatorId(1));
        // After correction the bottleneck is exactly saturated.
        assert!((r.metric(OperatorId(1)).utilization - 1.0).abs() < 1e-9);
        // The downstream 2 ms operator is half utilized at 250 items/s.
        assert!((r.metric(OperatorId(2)).utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn no_bottleneck_passes_source_rate_through() {
        let t = pipeline(&[2.0, 1.0, 0.5]);
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 500.0).abs() < 1e-6);
        assert!(!r.has_bottleneck());
        for id in t.operator_ids().skip(1) {
            assert!((r.metric(id).departure - 500.0).abs() < 1e-6);
        }
    }

    #[test]
    fn invariant_3_1_all_utilizations_at_most_one() {
        let t = pipeline(&[1.0, 3.0, 2.0, 5.0, 0.1]);
        let r = steady_state(&t);
        for m in &r.metrics {
            assert!(m.utilization <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn multiple_bottlenecks_cap_at_slowest() {
        let t = pipeline(&[1.0, 2.0, 8.0, 4.0]);
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 125.0).abs() < 1e-6);
        // 2 ms and 8 ms stages are both discovered as bottlenecks on the
        // first pass; 4 ms never is (125/s < 250/s).
        assert!(r.bottlenecks.len() >= 2);
    }

    #[test]
    fn proposition_3_5_flow_conservation() {
        // Diamond with asymmetric probabilities and a slow branch.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let l = b.add_operator(op("left", 2.0));
        let r = b.add_operator(op("right", 0.5));
        let k = b.add_operator(op("sink", 0.4));
        b.add_edge(s, l, 0.4).unwrap();
        b.add_edge(s, r, 0.6).unwrap();
        b.add_edge(l, k, 1.0).unwrap();
        b.add_edge(r, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let rep = steady_state(&t);
        assert!(
            (rep.sink_departure_total.items_per_sec() - rep.throughput.items_per_sec()).abs()
                < 1e-6
        );
    }

    #[test]
    fn branch_probability_weights_bottleneck_correction() {
        // src (1 ms) -> {p=0.4 slow (2 ms), p=0.6 fast (0.1 ms)}.
        // slow saturates when 0.4·δ₁·2ms = 1, i.e. δ₁ = 1250/s.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let slow = b.add_operator(op("slow", 2.0));
        let fast = b.add_operator(op("fast", 0.1));
        b.add_edge(s, slow, 0.4).unwrap();
        b.add_edge(s, fast, 0.6).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        // δ₁ capped at its own µ (1000/s) — 1250 > 1000, so no bottleneck.
        assert!((r.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
        assert!(!r.has_bottleneck());
        // Make the source faster so slow actually bottlenecks.
        let mut b = t.to_builder();
        b.operator_mut(OperatorId(0)).service_time = ServiceTime::from_millis(0.5);
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 1250.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(1)).utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn input_selectivity_divides_departure() {
        // src -> window(input sel 10) -> sink; no bottleneck.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let w = b.add_operator(op("win", 0.5).with_selectivity(Selectivity::input(10.0)));
        let k = b.add_operator(op("sink", 0.1));
        b.add_edge(s, w, 1.0).unwrap();
        b.add_edge(w, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!((r.metric(OperatorId(1)).departure - 100.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(2)).arrival - 100.0).abs() < 1e-6);
        // Utilization of the window operator still uses raw λ/µ.
        assert!((r.metric(OperatorId(1)).utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn output_selectivity_multiplies_departure_and_loads_downstream() {
        // src (1 ms) -> flatmap(×3) -> sink (0.5 ms): sink sees 3000/s,
        // capacity 2000/s -> ρ = 1.5 -> backpressure throttles the source to
        // 2000/3 items/s ≈ 666.7.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let f = b.add_operator(op("flat", 0.1).with_selectivity(Selectivity::output(3.0)));
        let k = b.add_operator(op("sink", 0.5));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 2000.0 / 3.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(2)).utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn filter_selectivity_relieves_downstream() {
        // src (0.5 ms) -> filter(×0.2) -> slow sink (2 ms).
        // Without the filter the sink would cap at 500/s; with it the sink
        // only sees 400/s and nothing bottlenecks.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 0.5));
        let f = b.add_operator(op("filter", 0.1).with_selectivity(Selectivity::output(0.2)));
        let k = b.add_operator(op("sink", 2.0));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!(!r.has_bottleneck());
        assert!((r.throughput.items_per_sec() - 2000.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(2)).arrival - 400.0).abs() < 1e-6);
    }

    #[test]
    fn source_selectivity_scales_departure_not_utilization() {
        // Regression: the source's ρ used to divide by µ·rate_factor, so a
        // filtering source (factor < 1) reported ρ = 1 while ingesting at µ
        // and throughput conflated ingestion with departure. §3.4: ρ stays
        // λ/µ and selectivity applies only to departures.
        //
        // src (1 ms, output ×0.5) -> sink (1 ms). The source ingests at its
        // full 1000/s, departs 500/s; the sink is half loaded.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0).with_selectivity(Selectivity::output(0.5)));
        let k = b.add_operator(op("sink", 1.0));
        b.add_edge(s, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(0)).utilization - 1.0).abs() < 1e-9);
        assert!((r.metric(OperatorId(0)).departure - 500.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(1)).arrival - 500.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(1)).utilization - 0.5).abs() < 1e-9);

        // A multiplying source (factor > 1) feeding a same-speed sink must
        // be throttled by backpressure: δ₁·2 ≤ 1000/s ⇒ ingestion 500/s.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0).with_selectivity(Selectivity::output(2.0)));
        let k = b.add_operator(op("sink", 1.0));
        b.add_edge(s, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 500.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(0)).utilization - 0.5).abs() < 1e-9);
        assert!((r.metric(OperatorId(0)).departure - 1000.0).abs() < 1e-6);
        assert!((r.metric(OperatorId(1)).utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn visits_bounded_by_v_squared_plus_v() {
        // Worst case: strictly decreasing pipeline rates — every vertex is a
        // bottleneck when first visited.
        let ms: Vec<f64> = (0..12).map(|i| 1.0 + i as f64).collect();
        let t = pipeline(&ms);
        let r = steady_state(&t);
        let n = t.num_operators();
        assert!(
            r.visits <= n * n + 2 * n,
            "visits {} exceeds O(n²) bound for n={}",
            r.visits,
            n
        );
        assert_eq!(r.bottlenecks.len(), n - 1);
    }

    #[test]
    fn single_operator_topology() {
        let t = pipeline(&[1.0]);
        let r = steady_state(&t);
        assert!((r.throughput.items_per_sec() - 1000.0).abs() < 1e-9);
        assert_eq!(r.sink_departure_total, r.throughput);
    }

    #[test]
    fn with_rates_override_replaces_mu() {
        // Same pipeline, but pretend the slow stage has 4 replicas.
        let t = pipeline(&[1.0, 4.0, 2.0]);
        let rates = vec![1000.0, 4.0 * 250.0, 2.0 * 500.0];
        let r = steady_state_with_rates(&t, &rates);
        assert!(!r.has_bottleneck());
        assert!((r.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one effective rate per operator")]
    fn with_rates_requires_matching_length() {
        let t = pipeline(&[1.0, 2.0]);
        steady_state_with_rates(&t, &[1000.0]);
    }

    #[test]
    fn saturated_helper_reports_bottleneck() {
        let t = pipeline(&[1.0, 2.0]);
        let r = steady_state(&t);
        // Only the bottleneck stage is saturated; after the Theorem 3.2
        // correction the source runs at half its own capacity (ρ₁ = 0.5).
        assert_eq!(r.saturated(0.999), vec![OperatorId(1)]);
        assert!((r.metric(OperatorId(0)).utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table1_metrics_match_paper() {
        // The reconstructed Figure 11 topology; Table 1 service times.
        // Edges: 1→2(0.7) 1→3(0.3) 2→6(1) 3→4(0.5) 3→5(0.5) 5→4(0.35)
        //        5→6(0.65) 4→6(1). (Vertices renumbered 0-based.)
        let mut b = Topology::builder();
        let o1 = b.add_operator(op("1", 1.0));
        let o2 = b.add_operator(op("2", 1.2));
        let o3 = b.add_operator(op("3", 0.7));
        let o4 = b.add_operator(op("4", 2.0));
        let o5 = b.add_operator(op("5", 1.5));
        let o6 = b.add_operator(op("6", 0.2));
        b.add_edge(o1, o2, 0.7).unwrap();
        b.add_edge(o1, o3, 0.3).unwrap();
        b.add_edge(o2, o6, 1.0).unwrap();
        b.add_edge(o3, o4, 0.5).unwrap();
        b.add_edge(o3, o5, 0.5).unwrap();
        b.add_edge(o5, o4, 0.35).unwrap();
        b.add_edge(o5, o6, 0.65).unwrap();
        b.add_edge(o4, o6, 1.0).unwrap();
        let t = b.build().unwrap();
        let r = steady_state(&t);
        // Predicted throughput 1000 tuples/s; no bottleneck besides source.
        assert!((r.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
        // Table 1 utilizations: ρ = [1.00, 0.84, 0.21, 0.405, 0.225, 0.20]
        let expect_rho = [1.00, 0.84, 0.21, 0.405, 0.225, 0.20];
        for (i, e) in expect_rho.iter().enumerate() {
            assert!(
                (r.metrics[i].utilization - e).abs() < 5e-3,
                "op {} rho {} expected {}",
                i + 1,
                r.metrics[i].utilization,
                e
            );
        }
        // Table 1 departure times δ⁻¹ (ms): [1.00, 1.42, 3.33, 4.93, 6.67, 1.00]
        let expect_dinv = [1.0, 1.4286, 3.3333, 4.9383, 6.6667, 1.0];
        for (i, e) in expect_dinv.iter().enumerate() {
            let dinv = 1000.0 / r.metrics[i].departure;
            assert!(
                (dinv - e).abs() < 2e-2,
                "op {} δ⁻¹ {} expected {}",
                i + 1,
                dinv,
                e
            );
        }
    }
}
