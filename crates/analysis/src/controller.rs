//! The adaptive re-optimization controller closing the §5.2 loop.
//!
//! SpinStreams is a *static* optimizer: Algorithms 1–3 run once, offline,
//! on the annotated topology. §5.2 observes that the annotations can go
//! stale at runtime — selectivities and service times shift with the data —
//! and proposes comparing the predicted steady state against live
//! measurements. The [`AdaptiveController`] takes the final step: when the
//! drift is sustained, it re-runs the whole optimization pipeline on the
//! *re-annotated* topology and emits a [`PlanChange`] describing how the
//! running graph should morph.
//!
//! The controller is pure analysis — it never touches the runtime. One tick
//! works like this:
//!
//! ```text
//!   counters ──▶ Reprofiler::update ──▶ estimates
//!                                          │
//!                                          ▼
//!                          DriftMonitor::tick (vs declared values)
//!                                          │  sustained drift?
//!                                          ▼
//!        annotated_topology ──▶ eliminate_bottlenecks (Alg. 2)
//!                                          │
//!                                          ▼
//!                     apply_replica_bound (Alg. 3, n_max)
//!                                          │  plan differs + clears
//!                                          ▼  hysteresis?
//!                               Some(PlanChange)
//! ```
//!
//! Two dampers keep the loop from oscillating:
//!
//! * **hysteresis** — a new plan is only emitted if its predicted
//!   throughput beats the current plan's (re-evaluated on the fresh
//!   annotations) by at least the configured factor; otherwise the monitor
//!   is *rebased* onto the fresh estimates so the same drift does not
//!   re-trigger every tick;
//! * **cooldown** — after any decision (migration or rebase) the controller
//!   refuses to re-plan for `cooldown_ticks`, giving the runtime time to
//!   settle and the windowed counters time to reflect the new plan.

use crate::bottleneck::{apply_replica_bound, eliminate_bottlenecks, evaluate_with_replicas};
use crate::drift::{DriftConfig, DriftMonitor, DriftStatus};
use crate::partitioning::{key_partitioning, KeyAssignment};
use crate::reprofile::{OperatorCounters, Reprofiler};
use spinstreams_core::{StateClass, Topology};

/// Utilization above which a "plan unchanged" verdict is too suspicious to
/// rebase on: a drifting operator measured at ρ just under 1 is usually a
/// backlog-diluted reading of a genuinely saturated operator, and adopting
/// it as the new baseline would mask the real shift.
const SATURATION_GUARD: f64 = 0.9;

/// Tuning knobs for the adaptive control loop.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    /// Drift detection parameters (threshold, warmup, streak length).
    pub drift: DriftConfig,
    /// Ticks to stay quiet after a migration or rebase decision.
    pub cooldown_ticks: u64,
    /// Minimum relative throughput gain a new plan must predict before a
    /// migration is worth the disruption: the new plan is adopted only if
    /// `predicted_new > predicted_current · (1 + hysteresis)`.
    pub hysteresis: f64,
    /// Total replica bound fed to Algorithm 3 (`apply_replica_bound`).
    pub max_replicas: usize,
    /// Sample floor per operator before the reprofiler trusts an estimate.
    pub min_samples: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            drift: DriftConfig::default(),
            cooldown_ticks: 4,
            hysteresis: 0.05,
            max_replicas: 16,
            min_samples: 200,
        }
    }
}

/// A reconfiguration decision: how the running graph should change.
///
/// Produced by [`AdaptiveController::tick`] when sustained drift yields a
/// plan that differs from the running one and clears the hysteresis bar.
/// The runtime layer translates this into route swaps and key handoffs.
#[derive(Debug, Clone)]
pub struct PlanChange {
    /// New replication degree per operator (indexed by operator id).
    pub replicas: Vec<usize>,
    /// The degrees the graph is running right now.
    pub old_replicas: Vec<usize>,
    /// For each operator: the key→replica assignment under the new degree,
    /// `Some` only for partitioned-stateful operators with `replicas > 1`.
    pub assignments: Vec<Option<KeyAssignment>>,
    /// Predicted throughput (items/s) of the new plan on the re-annotated
    /// topology — the §5.2 acceptance reference after migration.
    pub predicted_throughput: f64,
    /// Predicted throughput (items/s) of the *current* degrees re-evaluated
    /// on the same re-annotated topology.
    pub old_predicted_throughput: f64,
    /// Human-readable names of the annotations found stale this tick.
    pub stale: Vec<String>,
    /// The re-annotated topology the new plan was computed on.
    pub topology: Topology,
}

/// Closed-loop controller: telemetry in, [`PlanChange`]s out.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    reprofiler: Reprofiler,
    monitor: DriftMonitor,
    /// The monitor's current baseline; kept alongside because the monitor
    /// does not expose its predictions and rebasing needs to merge fresh
    /// estimates over the old baseline (`None` estimates keep it).
    baseline: Vec<Option<f64>>,
    config: AdaptiveConfig,
    current_replicas: Vec<usize>,
    cooldown: u64,
    rebases: u64,
    changes: u64,
}

impl AdaptiveController {
    /// Creates a controller for `topo` currently running with
    /// `current_replicas` (one degree per operator; the static plan).
    ///
    /// # Panics
    ///
    /// Panics if `current_replicas.len() != topo.num_operators()` or any
    /// degree is zero.
    pub fn new(topo: &Topology, current_replicas: Vec<usize>, config: AdaptiveConfig) -> Self {
        assert_eq!(
            current_replicas.len(),
            topo.num_operators(),
            "one replication degree per operator"
        );
        assert!(
            current_replicas.iter().all(|n| *n >= 1),
            "degrees must be >= 1"
        );
        let reprofiler = Reprofiler::new(topo).with_min_samples(config.min_samples);
        let monitor = reprofiler.drift_monitor(config.drift);
        let baseline = reprofiler.declared().to_vec();
        AdaptiveController {
            reprofiler,
            monitor,
            baseline,
            config,
            current_replicas,
            cooldown: 0,
            rebases: 0,
            changes: 0,
        }
    }

    /// The degrees the controller believes the graph is running with.
    pub fn current_replicas(&self) -> &[usize] {
        &self.current_replicas
    }

    /// Read access to the embedded reprofiler (e.g. for `describe`).
    pub fn reprofiler(&self) -> &Reprofiler {
        &self.reprofiler
    }

    /// Telemetry ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.monitor.ticks()
    }

    /// Times the drift baseline was rebased *without* a migration (plan
    /// unchanged, or gain below hysteresis).
    pub fn rebases(&self) -> u64 {
        self.rebases
    }

    /// Plan changes emitted so far.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Feeds one snapshot of **windowed** per-operator counters (indexed by
    /// operator id) and decides whether the graph should be reconfigured.
    ///
    /// The counters must cover a recent window, not the whole run: the
    /// reprofiler's estimators are ratios over exactly what is fed here,
    /// and a since-startup window would dilute a mid-run shift forever.
    ///
    /// Returns `Some(PlanChange)` when drift is sustained, the re-optimized
    /// plan differs from the running one, and the predicted gain clears
    /// [`AdaptiveConfig::hysteresis`]. Every other outcome is `None`.
    pub fn tick(&mut self, counters: &[OperatorCounters]) -> Option<PlanChange> {
        let estimates = self.reprofiler.update(counters);
        let verdicts = self.monitor.tick(&estimates);
        let stale: Vec<usize> = verdicts
            .iter()
            .filter(|v| v.status == DriftStatus::Drifting)
            .map(|v| v.index)
            .collect();

        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        if stale.is_empty() {
            return None;
        }

        // Sustained drift: re-run the full static pipeline on the live
        // annotations.
        let topo = match self.reprofiler.annotated_topology() {
            Ok(t) => t,
            Err(_) => return None,
        };
        let plan = eliminate_bottlenecks(&topo);
        let replicas = apply_replica_bound(&plan, self.config.max_replicas);

        // A measurement window taken while a backlog is still building
        // systematically *underestimates* service time (busy is charged per
        // processed item, arrivals per drained item), so a drifting
        // operator measured at ρ ≈ 1 is usually a diluted reading of a
        // genuinely saturated operator. Two decisions must not be taken on
        // such a reading: rebasing (the diluted value would become the
        // baseline and mask the real, larger shift forever) and the
        // hysteresis rejection (the gain predicted from diluted
        // annotations is artificially marginal). In both cases hold the
        // old baseline, take no action, and let the next windows converge.
        let current_report = evaluate_with_replicas(&topo, &self.current_replicas);
        let annotations = self.reprofiler.annotations();
        let near_saturation = stale.iter().any(|&slot| {
            let op = annotations[slot].operator;
            op != topo.source() && current_report.metrics[op.0].utilization >= SATURATION_GUARD
        });

        if replicas == self.current_replicas {
            // The world changed but the answer didn't: accept the new
            // normal so the same drift stops firing — unless the reading
            // is saturation-diluted (see above).
            if !near_saturation {
                self.rebase(&estimates);
            }
            return None;
        }

        let old_predicted = current_report.throughput.items_per_sec();
        let new_predicted = evaluate_with_replicas(&topo, &replicas)
            .throughput
            .items_per_sec();
        if new_predicted <= old_predicted * (1.0 + self.config.hysteresis) {
            if !near_saturation {
                self.rebase(&estimates);
            }
            return None;
        }

        let assignments: Vec<Option<KeyAssignment>> = topo
            .operators()
            .iter()
            .zip(&replicas)
            .map(|(op, n)| match (&op.state, *n) {
                (StateClass::PartitionedStateful { keys }, n) if n > 1 => {
                    Some(key_partitioning(keys, n))
                }
                _ => None,
            })
            .collect();
        let stale_names = stale.iter().map(|i| self.reprofiler.describe(*i)).collect();

        let change = PlanChange {
            replicas: replicas.clone(),
            old_replicas: std::mem::replace(&mut self.current_replicas, replicas),
            assignments,
            predicted_throughput: new_predicted,
            old_predicted_throughput: old_predicted,
            stale: stale_names,
            topology: topo,
        };
        self.rebase_silent(&estimates);
        self.changes += 1;
        Some(change)
    }

    /// Merges fresh estimates into the baseline and restarts the monitor on
    /// it, counting the event as a no-migration rebase.
    fn rebase(&mut self, estimates: &[Option<f64>]) {
        self.rebase_silent(estimates);
        self.rebases += 1;
    }

    fn rebase_silent(&mut self, estimates: &[Option<f64>]) {
        for (b, e) in self.baseline.iter_mut().zip(estimates) {
            if e.is_some() {
                *b = *e;
            }
        }
        self.monitor = DriftMonitor::new(self.baseline.clone(), self.config.drift);
        self.cooldown = self.config.cooldown_ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{KeyDistribution, OperatorSpec, ServiceTime, Topology, TopologyBuilder};

    /// source (1000/s) → worker (2000/s declared) → sink (10000/s).
    fn pipeline(worker_partitioned: bool) -> Topology {
        let mut b = TopologyBuilder::new();
        let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_secs(0.001)));
        let worker = if worker_partitioned {
            b.add_operator(OperatorSpec::partitioned(
                "worker",
                ServiceTime::from_secs(0.0005),
                KeyDistribution::uniform(8),
            ))
        } else {
            b.add_operator(OperatorSpec::stateless(
                "worker",
                ServiceTime::from_secs(0.0005),
            ))
        };
        let sink = b.add_operator(OperatorSpec::stateless(
            "sink",
            ServiceTime::from_secs(0.0001),
        ));
        b.add_edge(src, worker, 1.0).unwrap();
        b.add_edge(worker, sink, 1.0).unwrap();
        b.build().expect("valid pipeline")
    }

    fn counters(items: u64, worker_busy_per_item_ns: u64) -> Vec<OperatorCounters> {
        vec![
            OperatorCounters {
                items_in: 0,
                items_out: items,
                busy_ns: None,
            },
            OperatorCounters {
                items_in: items,
                items_out: items,
                busy_ns: Some(items * worker_busy_per_item_ns),
            },
            OperatorCounters {
                items_in: items,
                items_out: items,
                busy_ns: Some(items * 100_000),
            },
        ]
    }

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            min_samples: 100,
            ..AdaptiveConfig::default()
        }
    }

    #[test]
    fn no_drift_never_changes_plan() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        for _ in 0..20 {
            // Measured worker service time matches the declared 0.5 ms.
            assert!(ctl.tick(&counters(1000, 500_000)).is_none());
        }
        assert_eq!(ctl.current_replicas(), &[1, 1, 1]);
        assert_eq!(ctl.rebases(), 0);
        assert_eq!(ctl.changes(), 0);
    }

    #[test]
    fn sustained_drift_emits_plan_change_after_warmup_and_streak() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        // Worker slows to 4 ms/item (µ = 250/s against λ = 1000/s → ρ = 4).
        // warmup_ticks = 2, consecutive = 2 → first verdict on tick 4.
        let slow = counters(1000, 4_000_000);
        for tick in 1..=3 {
            assert!(ctl.tick(&slow).is_none(), "tick {tick} fired early");
        }
        let change = ctl.tick(&slow).expect("sustained drift must re-plan");
        assert_eq!(change.old_replicas, vec![1, 1, 1]);
        assert_eq!(change.replicas, vec![1, 4, 1]);
        assert_eq!(ctl.current_replicas(), &[1, 4, 1]);
        assert!(change.assignments.iter().all(|a| a.is_none()));
        assert!(
            change.predicted_throughput > change.old_predicted_throughput,
            "{} <= {}",
            change.predicted_throughput,
            change.old_predicted_throughput
        );
        assert!((change.predicted_throughput - 1000.0).abs() < 1.0);
        assert!((change.old_predicted_throughput - 250.0).abs() < 1.0);
        assert!(
            change
                .stale
                .iter()
                .any(|s| s.contains("service_time(worker)")),
            "stale: {:?}",
            change.stale
        );
        assert_eq!(ctl.changes(), 1);
    }

    #[test]
    fn after_migration_the_rebased_monitor_stays_quiet() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        let slow = counters(1000, 4_000_000);
        let mut changes = 0;
        for _ in 0..30 {
            if ctl.tick(&slow).is_some() {
                changes += 1;
            }
        }
        // The shift is real but the baseline was rebased at migration time:
        // the identical measurements must not re-trigger.
        assert_eq!(changes, 1);
        assert_eq!(ctl.current_replicas(), &[1, 4, 1]);
    }

    #[test]
    fn drift_without_plan_difference_rebases_silently() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        // Worker speeds *up* 5× — large drift, but the plan stays [1,1,1].
        let fast = counters(1000, 100_000);
        for _ in 0..10 {
            assert!(ctl.tick(&fast).is_none());
        }
        assert_eq!(ctl.current_replicas(), &[1, 1, 1]);
        assert_eq!(ctl.rebases(), 1, "exactly one rebase, then quiet");
        assert_eq!(ctl.changes(), 0);
    }

    #[test]
    fn borderline_saturation_defers_rebase_until_estimates_converge() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        // A backlog-diluted window: the worker really shifted to 1.5 ms but
        // the estimator reads 0.95 ms (ρ = 0.95 < 1 → plan unchanged).
        // Rebasing here would adopt the diluted value and mask the shift.
        let diluted = counters(1000, 950_000);
        for tick in 1..=6 {
            assert!(ctl.tick(&diluted).is_none(), "tick {tick} fired");
        }
        assert_eq!(ctl.rebases(), 0, "must not rebase at ρ ≈ 1");
        // The window converges to the true value: the change fires at once
        // (no rebase happened, so no cooldown and the old baseline stands).
        let converged = counters(1000, 1_500_000);
        let change = ctl.tick(&converged).expect("converged drift re-plans");
        assert_eq!(change.replicas, vec![1, 2, 1]);
        assert_eq!(ctl.rebases(), 0);
    }

    #[test]
    fn hysteresis_suppresses_marginal_gains() {
        // The worker sped up 5×: the re-plan scales [1,4,1] down to
        // [1,1,1], but predicts zero throughput gain. Hysteresis rejects
        // the pointless migration and — the worker being far from
        // saturation — rebases so the drift stops firing.
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 4, 1], config());
        let fast = counters(1000, 100_000);
        for _ in 0..10 {
            assert!(ctl.tick(&fast).is_none());
        }
        assert_eq!(ctl.current_replicas(), &[1, 4, 1]);
        assert_eq!(ctl.rebases(), 1);
        assert_eq!(ctl.changes(), 0);
    }

    #[test]
    fn saturated_marginal_gain_is_held_not_rebased() {
        // hysteresis 10.0 rejects the 4× predicted gain, but the worker
        // reads ρ ≥ 1: the gain was computed on possibly backlog-diluted
        // annotations, so the rejection must hold the baseline (no rebase)
        // and keep the drift alive for a converged later window.
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(
            &topo,
            vec![1, 1, 1],
            AdaptiveConfig {
                hysteresis: 10.0,
                ..config()
            },
        );
        let slow = counters(1000, 4_000_000);
        for _ in 0..10 {
            assert!(ctl.tick(&slow).is_none());
        }
        assert_eq!(ctl.current_replicas(), &[1, 1, 1]);
        assert_eq!(ctl.rebases(), 0, "diluted reading must not become baseline");
        assert_eq!(ctl.changes(), 0);
    }

    #[test]
    fn partitioned_worker_gets_a_key_assignment() {
        let topo = pipeline(true);
        let mut ctl = AdaptiveController::new(&topo, vec![1, 1, 1], config());
        let slow = counters(1000, 4_000_000);
        let change = (0..10)
            .find_map(|_| ctl.tick(&slow))
            .expect("drift must re-plan");
        assert!(change.replicas[1] > 1);
        let assign = change.assignments[1].as_ref().expect("keyed worker");
        assert_eq!(assign.owner.len(), 8);
        assert!(assign.owner.iter().all(|o| *o < change.replicas[1]));
        assert!(change.assignments[0].is_none());
        assert!(change.assignments[2].is_none());
    }

    #[test]
    fn cooldown_defers_replanning() {
        let topo = pipeline(false);
        let mut ctl = AdaptiveController::new(
            &topo,
            vec![1, 1, 1],
            AdaptiveConfig {
                cooldown_ticks: 100,
                ..config()
            },
        );
        let fast = counters(1000, 100_000);
        for _ in 0..10 {
            assert!(ctl.tick(&fast).is_none());
        }
        // One rebase, then the long cooldown swallows every later tick.
        assert_eq!(ctl.rebases(), 1);
        // Now drift the *other* way mid-cooldown: still suppressed.
        let slow = counters(1000, 4_000_000);
        for _ in 0..5 {
            assert!(ctl.tick(&slow).is_none());
        }
        assert_eq!(ctl.changes(), 0);
    }
}
