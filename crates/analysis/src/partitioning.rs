//! The `KeyPartitioning()` heuristic of Algorithm 2.
//!
//! For a partitioned-stateful bottleneck, each replica must own a subset of
//! the partitioning keys. The goal is an assignment where the most loaded
//! replica receives a fraction of the input as close as possible to
//! `1/n_opt`. The paper points to greedy/consistent-hashing heuristics
//! (Gedik, VLDBJ 2014); we implement the classic *longest-processing-time*
//! greedy, which is a 4/3-approximation of the optimal makespan.

use spinstreams_core::KeyDistribution;

/// Result of partitioning keys among replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyAssignment {
    /// For each key (in key order), the replica index that owns it.
    pub owner: Vec<usize>,
    /// Number of replicas actually used (`≤` the requested degree — keys may
    /// be fewer than replicas, or the greedy may leave replicas empty).
    pub replicas: usize,
    /// The input fraction received by the most loaded replica (`p_max`).
    pub max_fraction: f64,
}

impl KeyAssignment {
    /// The total input fraction assigned to replica `r`.
    pub fn load(&self, keys: &KeyDistribution, r: usize) -> f64 {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == r)
            .map(|(k, _)| keys.frequency(k))
            .sum()
    }
}

/// Greedily assigns keys to `requested` replicas, minimizing the most loaded
/// replica's input fraction (LPT bin packing).
///
/// Keys are considered in decreasing frequency order and each is placed on
/// the currently least-loaded replica. Replicas that end up with no keys are
/// dropped, so the returned [`KeyAssignment::replicas`] may be smaller than
/// `requested` (e.g. 3 replicas requested for 2 keys).
///
/// # Panics
///
/// Panics if `requested` is zero.
pub fn key_partitioning(keys: &KeyDistribution, requested: usize) -> KeyAssignment {
    assert!(requested > 0, "at least one replica required");
    let n = requested.min(keys.num_keys());

    // Sort key indices by decreasing frequency (stable on ties).
    let mut order: Vec<usize> = (0..keys.num_keys()).collect();
    order.sort_by(|a, b| {
        keys.frequency(*b)
            .partial_cmp(&keys.frequency(*a))
            .expect("frequencies are finite")
            .then(a.cmp(b))
    });

    let mut load = vec![0.0f64; n];
    let mut owner = vec![0usize; keys.num_keys()];
    for k in order {
        // Least-loaded replica; ties break to the lowest index.
        let (r, _) = load
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("loads are finite"))
            .expect("n > 0");
        owner[k] = r;
        load[r] += keys.frequency(k);
    }

    // Drop empty replicas and compact indices. A replica holding only
    // zero-frequency keys has load 0 and is dropped too; its keys are
    // re-homed on replica 0 so every owner entry stays a valid index
    // (downstream emitters index replica mailboxes with it).
    let mut remap = vec![usize::MAX; n];
    let mut used = 0usize;
    for r in 0..n {
        if load[r] > 0.0 {
            remap[r] = used;
            used += 1;
        }
    }
    for o in owner.iter_mut() {
        *o = match remap[*o] {
            usize::MAX => 0,
            r => r,
        };
    }
    let max_fraction = load.iter().cloned().fold(0.0, f64::max);

    KeyAssignment {
        owner,
        replicas: used.max(1),
        max_fraction,
    }
}

/// The full `KeyPartitioning(K, {p_k}, ρ)` call of Algorithm 2: finds a
/// replication degree whose most loaded replica is not a bottleneck.
///
/// Starts from the even-split optimum `⌈ρ⌉` and, if the key skew leaves the
/// most loaded replica saturated (`p_max > 1/ρ`), tries a few extra
/// replicas — the paper's interface lets `KeyPartitioning` return its own
/// degree `nᵢ`, and with a large key domain a couple of extra replicas
/// usually absorb mild skew. Gives up after `⌈ρ⌉ + 8` and returns the
/// assignment with the smallest `p_max` found, which the caller treats as
/// a residual bottleneck.
///
/// # Panics
///
/// Panics if `rho` is not finite and positive.
pub fn key_partitioning_for_rho(keys: &KeyDistribution, rho: f64) -> KeyAssignment {
    assert!(rho.is_finite() && rho > 0.0, "rho must be positive");
    let n_opt = rho.ceil().max(1.0) as usize;
    let target = 1.0 / rho;
    let mut best: Option<KeyAssignment> = None;
    for n in n_opt..=n_opt + 8 {
        let a = key_partitioning(keys, n);
        let better = best
            .as_ref()
            .map(|b| a.max_fraction < b.max_fraction)
            .unwrap_or(true);
        if better {
            best = Some(a.clone());
        }
        if a.max_fraction <= target + 1e-12 {
            return a;
        }
        if a.replicas < n {
            break; // fewer keys than replicas: more cannot help
        }
    }
    best.expect("at least one assignment computed")
}

/// Consistent-hashing key assignment — the alternative heuristic family the
/// paper cites for `KeyPartitioning` ("based on consistent hashing and its
/// variants for addressing skewed distributions", §3.2, citing Gedik VLDBJ
/// 2014).
///
/// Each replica owns `vnodes` points on a hash ring; every key is assigned
/// to the replica owning the first ring point clockwise of the key's hash.
/// Unlike [`key_partitioning`] (LPT), the assignment is *stable*: adding a
/// replica moves only `~1/n` of the keys, which is what makes consistent
/// hashing attractive for elastic systems — at the cost of worse balance
/// for a fixed degree (compare with the `ablation_partitioning` binary).
///
/// # Panics
///
/// Panics if `replicas` or `vnodes` is zero.
pub fn consistent_hash_partitioning(
    keys: &KeyDistribution,
    replicas: usize,
    vnodes: usize,
) -> KeyAssignment {
    assert!(replicas > 0, "at least one replica required");
    assert!(vnodes > 0, "at least one virtual node per replica required");

    fn mix(x: u64) -> u64 {
        // splitmix64 finalizer.
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    // Ring points: (hash, replica), sorted by hash.
    let mut ring: Vec<(u64, usize)> = (0..replicas)
        .flat_map(|r| (0..vnodes).map(move |v| (mix((r as u64) << 32 | v as u64), r)))
        .collect();
    ring.sort_unstable();

    let mut owner = vec![0usize; keys.num_keys()];
    let mut load = vec![0.0f64; replicas];
    for (k, o) in owner.iter_mut().enumerate() {
        let h = mix(k as u64 ^ 0xABCD_1234_5678_EF90);
        let idx = match ring.binary_search_by_key(&h, |(p, _)| *p) {
            Ok(i) => i,
            Err(i) => i % ring.len(),
        };
        *o = ring[idx].1;
        load[ring[idx].1] += keys.frequency(k);
    }

    // Compact replicas that own no keys, as in `key_partitioning`; keys
    // stranded on a dropped zero-load replica are re-homed on replica 0.
    let mut remap = vec![usize::MAX; replicas];
    let mut used = 0usize;
    for r in 0..replicas {
        if load[r] > 0.0 {
            remap[r] = used;
            used += 1;
        }
    }
    for o in owner.iter_mut() {
        *o = match remap[*o] {
            usize::MAX => 0,
            r => r,
        };
    }
    let max_fraction = load.iter().cloned().fold(0.0, f64::max);
    KeyAssignment {
        owner,
        replicas: used.max(1),
        max_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_balance_perfectly() {
        let keys = KeyDistribution::uniform(12);
        let a = key_partitioning(&keys, 4);
        assert_eq!(a.replicas, 4);
        assert!((a.max_fraction - 0.25).abs() < 1e-12);
        for r in 0..4 {
            assert!((a.load(&keys, r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn max_fraction_lower_bounded_by_heaviest_key() {
        // §3.2's example: 50% of items share one key; 3 replicas can only
        // mitigate, never push p_max below 0.5.
        let keys = KeyDistribution::new(vec![0.5, 0.2, 0.2, 0.1]).unwrap();
        let a = key_partitioning(&keys, 3);
        assert!((a.max_fraction - 0.5).abs() < 1e-12);
        assert_eq!(a.replicas, 3);
    }

    #[test]
    fn fewer_keys_than_replicas_caps_replicas() {
        let keys = KeyDistribution::uniform(2);
        let a = key_partitioning(&keys, 5);
        assert_eq!(a.replicas, 2);
        assert!((a.max_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_replica_gets_everything() {
        let keys = KeyDistribution::zipf(10, 1.5);
        let a = key_partitioning(&keys, 1);
        assert_eq!(a.replicas, 1);
        assert!((a.max_fraction - 1.0).abs() < 1e-12);
        assert!(a.owner.iter().all(|o| *o == 0));
    }

    #[test]
    fn every_key_is_owned_by_a_valid_replica() {
        let keys = KeyDistribution::zipf(40, 1.2);
        let a = key_partitioning(&keys, 6);
        assert_eq!(a.owner.len(), 40);
        assert!(a.owner.iter().all(|o| *o < a.replicas));
        // Loads over all replicas sum to 1.
        let total: f64 = (0..a.replicas).map(|r| a.load(&keys, r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lpt_beats_naive_contiguous_split_on_skew() {
        let keys = KeyDistribution::zipf(20, 1.8);
        let a = key_partitioning(&keys, 4);
        // Naive contiguous split: keys 0..5, 5..10, ... — first chunk holds
        // all the heavy keys.
        let naive_max: f64 = (0..4)
            .map(|c| (c * 5..(c + 1) * 5).map(|k| keys.frequency(k)).sum::<f64>())
            .fold(0.0, f64::max);
        assert!(
            a.max_fraction < naive_max,
            "LPT {} should beat contiguous {}",
            a.max_fraction,
            naive_max
        );
        // And can never beat the single heaviest key.
        assert!(a.max_fraction >= keys.max_frequency() - 1e-12);
    }

    #[test]
    fn for_rho_uses_extra_replicas_to_absorb_mild_skew() {
        // 64 uniform keys, ρ = 3: 3 replicas leave p_max = 22/64 > 1/3, but
        // 4 replicas give 16/64 = 0.25 ≤ 1/3.
        let keys = KeyDistribution::uniform(64);
        let a = key_partitioning_for_rho(&keys, 3.0);
        assert_eq!(a.replicas, 4);
        assert!(a.max_fraction <= 1.0 / 3.0 + 1e-12);
    }

    #[test]
    fn for_rho_gives_up_on_dominant_key() {
        // One key holds 60% of the traffic: no degree can push p_max below
        // 0.6, so ρ = 3 cannot be unblocked.
        let keys = KeyDistribution::new(vec![0.6, 0.2, 0.2]).unwrap();
        let a = key_partitioning_for_rho(&keys, 3.0);
        assert!((a.max_fraction - 0.6).abs() < 1e-12);
        assert!(a.max_fraction > 1.0 / 3.0);
    }

    #[test]
    fn consistent_hash_covers_all_keys() {
        let keys = KeyDistribution::uniform(200);
        let a = consistent_hash_partitioning(&keys, 5, 64);
        assert_eq!(a.owner.len(), 200);
        assert!(a.owner.iter().all(|o| *o < a.replicas));
        let total: f64 = (0..a.replicas).map(|r| a.load(&keys, r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With many vnodes the balance is reasonable (within 2x of even).
        assert!(a.max_fraction < 2.0 / 5.0, "p_max {}", a.max_fraction);
    }

    #[test]
    fn consistent_hash_is_stable_under_replica_addition() {
        let keys = KeyDistribution::uniform(500);
        let a = consistent_hash_partitioning(&keys, 4, 64);
        let b = consistent_hash_partitioning(&keys, 5, 64);
        // Only a minority of keys change owner when a replica is added —
        // the defining property of consistent hashing. (Owners are compared
        // by raw index; replica 4 is new, moves *to* it are expected.)
        let moved_between_old = a
            .owner
            .iter()
            .zip(&b.owner)
            .filter(|(x, y)| x != y && **y != 4)
            .count();
        assert!(
            moved_between_old < 100,
            "{moved_between_old}/500 keys moved between pre-existing replicas"
        );
    }

    #[test]
    fn lpt_balances_better_than_consistent_hash_at_fixed_degree() {
        let keys = KeyDistribution::zipf(64, 0.8);
        let lpt = key_partitioning(&keys, 6);
        let ch = consistent_hash_partitioning(&keys, 6, 32);
        assert!(
            lpt.max_fraction <= ch.max_fraction + 1e-12,
            "LPT {} vs CH {}",
            lpt.max_fraction,
            ch.max_fraction
        );
    }

    #[test]
    fn zero_frequency_keys_are_not_orphaned() {
        // Regression: with two live keys and two dead (zero-frequency) keys
        // over 4 requested replicas, LPT parks each dead key on an empty
        // replica; compaction used to leave their owner at usize::MAX.
        let keys = KeyDistribution::new(vec![0.5, 0.5, 0.0, 0.0]).unwrap();
        let a = key_partitioning(&keys, 4);
        assert_eq!(a.replicas, 2);
        assert!(
            a.owner.iter().all(|o| *o < a.replicas),
            "owners {:?} must all index a live replica",
            a.owner
        );
        // The dead keys land on replica 0 and contribute no load.
        assert_eq!(a.owner[2], 0);
        assert_eq!(a.owner[3], 0);
        assert!((a.load(&keys, 0) - 0.5).abs() < 1e-12);
        assert!((a.max_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_frequency_keys_survive_consistent_hashing() {
        // Many keys, most dead: any replica whose hash arc catches only
        // dead keys is dropped, and those keys must still map to a live
        // replica index.
        let mut freqs = vec![0.0; 64];
        freqs[0] = 0.7;
        freqs[1] = 0.3;
        let keys = KeyDistribution::new(freqs).unwrap();
        let a = consistent_hash_partitioning(&keys, 6, 4);
        assert!(a.replicas >= 1);
        assert!(
            a.owner.iter().all(|o| *o < a.replicas),
            "owners {:?} must all index a live replica",
            a.owner
        );
        let total: f64 = (0..a.replicas).map(|r| a.load(&keys, r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn for_rho_handles_zero_frequency_keys() {
        let keys = KeyDistribution::new(vec![0.4, 0.3, 0.3, 0.0, 0.0, 0.0]).unwrap();
        let a = key_partitioning_for_rho(&keys, 2.0);
        assert!(a.owner.iter().all(|o| *o < a.replicas));
    }

    #[test]
    fn greedy_is_deterministic() {
        let keys = KeyDistribution::zipf(32, 1.4);
        let a = key_partitioning(&keys, 5);
        let b = key_partitioning(&keys, 5);
        assert_eq!(a, b);
    }
}
