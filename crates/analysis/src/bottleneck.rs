//! Algorithm 2 — bottleneck elimination via operator fission, plus the
//! §3.2 hold-off replication heuristic.

use crate::{
    key_partitioning, key_partitioning_for_rho, steady_state_with_rates, OperatorMetrics,
    SteadyStateReport,
};
use spinstreams_core::{topological_order, OperatorId, ServiceRate, StateClass, Topology};

/// Numerical slack on the `ρ > 1` bottleneck test (see Algorithm 1).
const RHO_EPSILON: f64 = 1e-9;

/// The result of bottleneck elimination: a replication degree per operator
/// and the predicted steady state of the parallelized topology.
#[derive(Debug, Clone, PartialEq)]
pub struct FissionPlan {
    /// Replication degree per operator (1 = not replicated).
    pub replicas: Vec<usize>,
    /// Per-operator steady-state metrics *after* fission.
    pub metrics: Vec<OperatorMetrics>,
    /// Predicted throughput of the parallelized topology.
    pub throughput: ServiceRate,
    /// Bottlenecks that could **not** be removed: pure stateful operators,
    /// or partitioned-stateful operators whose key skew defeats fission.
    pub residual_bottlenecks: Vec<OperatorId>,
    /// Total vertex visits performed.
    pub visits: usize,
}

impl FissionPlan {
    /// Total number of replicas `N = Σᵢ nᵢ` in the plan.
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().sum()
    }

    /// Number of *additional* replicas beyond one per operator (the
    /// quantity plotted in Figure 9a).
    pub fn additional_replicas(&self) -> usize {
        self.replicas.iter().map(|n| n - 1).sum()
    }

    /// True if fission removed every bottleneck.
    pub fn ideal(&self) -> bool {
        self.residual_bottlenecks.is_empty()
    }
}

/// The effective aggregate service rate (items/s) of operator `id` when run
/// with `n` replicas.
///
/// * stateless — `n·µ` (items split evenly, e.g. round-robin);
/// * partitioned-stateful — `µ / p_max(n)` where `p_max` is the input
///   fraction of the most loaded replica under the LPT key assignment;
/// * stateful — `µ` regardless of `n` (fission is not applicable).
pub fn effective_service_rate(topo: &Topology, id: OperatorId, n: usize) -> f64 {
    let op = topo.operator(id);
    let mu = op.service_rate().items_per_sec();
    if n <= 1 {
        return mu;
    }
    match &op.state {
        StateClass::Stateless => mu * n as f64,
        StateClass::PartitionedStateful { keys } => {
            let assign = key_partitioning(keys, n);
            mu / assign.max_fraction
        }
        StateClass::Stateful => mu,
    }
}

/// Runs Algorithm 2 on `topo`.
///
/// Visits operators in topological order computing `λ` and `ρ` as in
/// Algorithm 1; at each bottleneck:
///
/// * **stateless** — replicate with `n = ⌈ρ⌉`, which always unblocks;
/// * **partitioned-stateful** — call [`key_partitioning`]; if the most
///   loaded replica still saturates (`λ·p_max > µ`, possible with skewed
///   keys), cap the degree at the useful number of replicas, fold the
///   residual backpressure into the source (Theorem 3.2) and restart;
/// * **stateful** — fission is impossible: fold the backpressure into the
///   source and restart.
///
/// Replication degrees are recomputed from scratch on every restart, so a
/// later stateful bottleneck correctly *reduces* the parallelism needed
/// upstream.
pub fn eliminate_bottlenecks(topo: &Topology) -> FissionPlan {
    let order = topological_order(topo);
    let n = topo.num_operators();
    let src = topo.source();

    let base_mu: Vec<f64> = topo
        .operators()
        .iter()
        .map(|op| op.service_rate().items_per_sec())
        .collect();
    // As in Algorithm 1: the source ingests at up to µ₁ (ρ₁ = ingestion/µ₁,
    // §3.4) and its departure rate is the ingestion rate times its own
    // selectivity rate factor.
    let src_factor = topo.operator(src).selectivity.rate_factor();
    let mut ingest_src = base_mu[src.0];

    let mut arrival = vec![0.0f64; n];
    let mut rho = vec![0.0f64; n];
    let mut departure = vec![0.0f64; n];
    let mut replicas = vec![1usize; n];
    // Operators whose bottleneck forced a Theorem 3.2 source correction in
    // *some* pass; persists across restarts, filtered by final saturation.
    let mut residual_mark = vec![false; n];
    let mut visits = 0usize;

    'restart: loop {
        replicas.iter_mut().for_each(|r| *r = 1);
        departure[src.0] = ingest_src * src_factor;
        rho[src.0] = ingest_src / base_mu[src.0];
        arrival[src.0] = 0.0;
        visits += 1;

        for &id in order.iter().skip(1) {
            visits += 1;
            let i = id.0;
            let mut lambda = 0.0;
            for &eid in topo.in_edges(id) {
                let e = topo.edge(eid);
                lambda += departure[e.from.0] * e.probability;
            }
            arrival[i] = lambda;
            let mu = base_mu[i];
            let r = if mu.is_infinite() { 0.0 } else { lambda / mu };
            let factor = topo.operator(id).selectivity.rate_factor();

            if r <= 1.0 + RHO_EPSILON {
                rho[i] = r;
                replicas[i] = 1;
                departure[i] = lambda.min(mu) * factor;
                continue;
            }

            match &topo.operator(id).state {
                StateClass::Stateless => {
                    // n = ⌈ρ⌉ always unblocks an evenly-split stateless
                    // operator.
                    let ni = r.ceil() as usize;
                    replicas[i] = ni;
                    rho[i] = lambda / (mu * ni as f64);
                    departure[i] = lambda * factor;
                }
                StateClass::PartitionedStateful { keys } => {
                    let assign = key_partitioning_for_rho(keys, r);
                    let rho_par = lambda * assign.max_fraction / mu;
                    if rho_par > 1.0 + RHO_EPSILON {
                        // Key skew defeats fission even with extra
                        // replicas: keep only the useful ones (the degree
                        // the heaviest share permits) and propagate the
                        // residual backpressure to the source.
                        let useful =
                            ((1.0 / assign.max_fraction).ceil() as usize).clamp(1, assign.replicas);
                        replicas[i] = useful;
                        residual_mark[i] = true;
                        ingest_src /= rho_par;
                        continue 'restart;
                    }
                    replicas[i] = assign.replicas;
                    rho[i] = rho_par;
                    departure[i] = lambda * factor;
                }
                StateClass::Stateful => {
                    replicas[i] = 1;
                    residual_mark[i] = true;
                    ingest_src /= r;
                    continue 'restart;
                }
            }
        }
        break;
    }

    // Re-derive the final per-operator metrics with the chosen degrees so
    // residual-bottleneck utilizations are the post-correction ones.
    let eff: Vec<f64> = (0..n)
        .map(|i| effective_service_rate(topo, OperatorId(i), replicas[i]))
        .collect();
    let mut report = steady_state_with_rates(topo, &eff);
    for (i, m) in report.metrics.iter_mut().enumerate() {
        m.replicas = replicas[i];
    }
    // Residual bottlenecks: operators that forced a source correction and
    // are still saturated in the final steady state (an early mark can be
    // superseded by a harsher bottleneck found later).
    let residual: Vec<OperatorId> = (0..n)
        .filter(|i| residual_mark[*i] && report.metrics[*i].utilization >= 1.0 - 1e-6)
        .map(OperatorId)
        .collect();

    FissionPlan {
        replicas,
        metrics: report.metrics,
        throughput: report.throughput,
        residual_bottlenecks: residual,
        visits,
    }
}

/// Re-runs the steady-state analysis of `topo` with an explicit replication
/// degree per operator.
///
/// Used to evaluate plans modified by [`apply_replica_bound`] or chosen by
/// hand. The metrics' `replicas` fields echo the input degrees.
///
/// # Panics
///
/// Panics if `replicas.len() != topo.num_operators()` or any degree is zero.
pub fn evaluate_with_replicas(topo: &Topology, replicas: &[usize]) -> SteadyStateReport {
    assert_eq!(replicas.len(), topo.num_operators());
    assert!(replicas.iter().all(|n| *n >= 1), "degrees must be >= 1");
    let eff: Vec<f64> = replicas
        .iter()
        .enumerate()
        .map(|(i, n)| effective_service_rate(topo, OperatorId(i), *n))
        .collect();
    let mut report = steady_state_with_rates(topo, &eff);
    for (i, m) in report.metrics.iter_mut().enumerate() {
        m.replicas = replicas[i];
    }
    report
}

/// §3.2 *hold-off replication*: shrinks `plan` so its total replica count
/// does not exceed `n_max`.
///
/// Each degree is scaled by `r = n_max / N` (never below 1); rounding
/// anomalies are then fixed by decrementing the largest degrees until the
/// bound holds — or, when rounding lands strictly *below* the bound,
/// re-incrementing the degrees with the highest residual per-replica load
/// until the sum reaches `min(n_max, N)` — exactly the "adjustments of few
/// units" the paper describes. Returns the bounded degrees; callers
/// evaluate them with [`evaluate_with_replicas`].
///
/// If the plan already fits, the degrees are returned unchanged.
pub fn apply_replica_bound(plan: &FissionPlan, n_max: usize) -> Vec<usize> {
    let n_total = plan.total_replicas();
    let mut degrees = plan.replicas.clone();
    if n_total <= n_max {
        return degrees;
    }
    let r = n_max as f64 / n_total as f64;
    for d in degrees.iter_mut() {
        if *d > 1 {
            *d = ((*d as f64 * r).round() as usize).max(1);
        }
    }
    // The per-operator floor of 1 replica may keep the sum above the bound;
    // trim the largest degrees first (they benefit least from one replica
    // fewer) while any degree can still shrink.
    loop {
        let sum: usize = degrees.iter().sum();
        if sum <= n_max {
            break;
        }
        match degrees.iter_mut().filter(|d| **d > 1).max() {
            Some(d) => *d -= 1,
            None => break, // all at 1: n_max < |V| is unsatisfiable
        }
    }
    // Rounding can also undershoot (every degree rounded down), silently
    // giving up throughput the bound allows. Hand the spare replicas back,
    // one at a time, to the operator with the highest residual per-replica
    // load ρᵢ·nᵢ/dᵢ — never raising a degree past the original plan's,
    // where extra replicas buy nothing.
    let target = n_max.min(n_total);
    loop {
        let sum: usize = degrees.iter().sum();
        if sum >= target {
            break;
        }
        let candidate = degrees
            .iter()
            .enumerate()
            .filter(|(i, d)| **d < plan.replicas[*i])
            .max_by(|(i, a), (j, b)| {
                let load = |idx: usize, d: usize| {
                    plan.metrics[idx].utilization * plan.replicas[idx] as f64 / d as f64
                };
                load(*i, **a)
                    .partial_cmp(&load(*j, **b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Ties broken toward the lowest index for determinism.
                    .then(j.cmp(i))
            })
            .map(|(i, _)| i);
        match candidate {
            Some(i) => degrees[i] += 1,
            None => break,
        }
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{KeyDistribution, OperatorSpec, Selectivity, ServiceTime, Topology};

    fn stateless(name: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms))
    }

    fn pipeline(specs: Vec<OperatorSpec>) -> Topology {
        let mut b = Topology::builder();
        let ids: Vec<_> = specs.into_iter().map(|s| b.add_operator(s)).collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn stateless_bottleneck_gets_ceil_rho_replicas() {
        // Figure 1: pipelined fission of the second operator.
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("slow", 3.5),
            stateless("sink", 0.5),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas, vec![1, 4, 1]); // ⌈3.5⌉ = 4
        assert!(plan.ideal());
        assert!((plan.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
        assert_eq!(plan.additional_replicas(), 3);
    }

    #[test]
    fn exact_integer_rho_uses_exactly_rho_replicas() {
        let t = pipeline(vec![stateless("src", 1.0), stateless("x2", 2.0)]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas, vec![1, 2]);
        assert!(plan.ideal());
    }

    #[test]
    fn stateful_bottleneck_throttles_whole_topology() {
        let t = pipeline(vec![
            stateless("src", 1.0),
            OperatorSpec::stateful("state", ServiceTime::from_millis(2.0)),
            stateless("post", 3.0), // would need fission at 1000/s, not at 500/s
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas[1], 1);
        assert_eq!(plan.residual_bottlenecks, vec![OperatorId(1)]);
        assert!((plan.throughput.items_per_sec() - 500.0).abs() < 1e-6);
        // After the stateful cap, "post" sees only 500/s: ρ = 1.5, so it is
        // still replicated — but with 2 replicas, not the 3 the raw rate
        // would demand.
        assert_eq!(plan.replicas[2], 2);
    }

    #[test]
    fn partitioned_stateful_with_uniform_keys_unblocks() {
        // 64 uniform keys split 16/16/16/16 over ⌈ρ⌉ = 4 replicas: perfectly
        // balanced, so fission fully removes the bottleneck.
        let keys = KeyDistribution::uniform(64);
        let t = pipeline(vec![
            stateless("src", 1.0),
            OperatorSpec::partitioned("agg", ServiceTime::from_millis(4.0), keys),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert!(plan.ideal());
        assert_eq!(plan.replicas[1], 4);
        assert!((plan.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn partitioned_stateful_with_indivisible_keys_searches_upward() {
        // 64 uniform keys at ρ = 3: with exactly 3 replicas the biggest bin
        // holds 22/64 > 1/3 of the traffic, so the even-split optimum does
        // not unblock — KeyPartitioning's upward search settles on 4
        // replicas (16 keys each) and removes the bottleneck completely.
        let keys = KeyDistribution::uniform(64);
        let t = pipeline(vec![
            stateless("src", 1.0),
            OperatorSpec::partitioned("agg", ServiceTime::from_millis(3.0), keys),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert!(plan.ideal());
        assert_eq!(plan.replicas[1], 4);
        assert!((plan.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn skewed_keys_mitigate_but_do_not_remove_bottleneck() {
        // §3.2's example: ρ = 3 but half the traffic shares one key, so
        // p_max = 0.5 and the best achievable effective rate is 2µ.
        let keys = KeyDistribution::new(vec![0.5, 0.25, 0.25]).unwrap();
        let t = pipeline(vec![
            stateless("src", 1.0),
            OperatorSpec::partitioned("agg", ServiceTime::from_millis(3.0), keys),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert!(!plan.ideal());
        assert_eq!(plan.residual_bottlenecks, vec![OperatorId(1)]);
        assert_eq!(plan.replicas[1], 2, "only 2 useful replicas at p_max=0.5");
        // Throughput capped by the most loaded replica: δ₁·0.5·3ms = 1
        // ⇒ δ₁ = 666.7/s.
        assert!((plan.throughput.items_per_sec() - 2000.0 / 3.0).abs() < 1e-3);
    }

    #[test]
    fn fission_respects_selectivity_loads() {
        // flatmap ×3 triples the load on the downstream sink.
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("flat", 0.2).with_selectivity(Selectivity::output(3.0)),
            stateless("sink", 1.0),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas[2], 3);
        assert!(plan.ideal());
        assert!((plan.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn diamond_fission_on_both_branches() {
        let mut b = Topology::builder();
        let s = b.add_operator(stateless("src", 0.5));
        let l = b.add_operator(stateless("left", 2.0));
        let r = b.add_operator(stateless("right", 3.0));
        let k = b.add_operator(stateless("sink", 0.1));
        b.add_edge(s, l, 0.5).unwrap();
        b.add_edge(s, r, 0.5).unwrap();
        b.add_edge(l, k, 1.0).unwrap();
        b.add_edge(r, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let plan = eliminate_bottlenecks(&t);
        // λ on each branch = 1000/s; left needs ⌈2⌉ = 2, right ⌈3⌉ = 3.
        assert_eq!(plan.replicas, vec![1, 2, 3, 1]);
        assert!(plan.ideal());
    }

    #[test]
    fn effective_rate_cases() {
        let keys = KeyDistribution::new(vec![0.4, 0.3, 0.3]).unwrap();
        let mut b = Topology::builder();
        let s = b.add_operator(stateless("src", 1.0));
        let sl = b.add_operator(stateless("sl", 2.0));
        let ps = b.add_operator(OperatorSpec::partitioned(
            "ps",
            ServiceTime::from_millis(2.0),
            keys,
        ));
        let st = b.add_operator(OperatorSpec::stateful("st", ServiceTime::from_millis(2.0)));
        b.add_edge(s, sl, 1.0).unwrap();
        b.add_edge(sl, ps, 1.0).unwrap();
        b.add_edge(ps, st, 1.0).unwrap();
        let t = b.build().unwrap();
        assert_eq!(effective_service_rate(&t, sl, 1), 500.0);
        assert_eq!(effective_service_rate(&t, sl, 4), 2000.0);
        // partitioned with 2 replicas: LPT gives {0.4} vs {0.3,0.3} ⇒
        // p_max = 0.6 ⇒ µ_eff = 500/0.6 ≈ 833.3
        assert!((effective_service_rate(&t, ps, 2) - 500.0 / 0.6).abs() < 1e-9);
        // stateful never speeds up
        assert_eq!(effective_service_rate(&t, st, 8), 500.0);
    }

    #[test]
    fn evaluate_with_replicas_matches_plan() {
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("slow", 3.5),
            stateless("sink", 0.5),
        ]);
        let plan = eliminate_bottlenecks(&t);
        let eval = evaluate_with_replicas(&t, &plan.replicas);
        assert!((eval.throughput.items_per_sec() - plan.throughput.items_per_sec()).abs() < 1e-9);
        assert_eq!(eval.metric(OperatorId(1)).replicas, 4);
    }

    #[test]
    fn replica_bound_scales_proportionally() {
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("a", 8.0),
            stateless("b", 4.0),
            stateless("c", 2.0),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas, vec![1, 8, 4, 2]);
        assert_eq!(plan.total_replicas(), 15);

        let bounded = apply_replica_bound(&plan, 9);
        assert!(bounded.iter().sum::<usize>() <= 9);
        assert!(bounded.iter().all(|d| *d >= 1));
        // Ratio 9/15 = 0.6: 8→5, 4→2, 2→1 (rounded), sum = 1+5+2+1 = 9.
        assert_eq!(bounded, vec![1, 5, 2, 1]);

        // Bounded throughput de-scales roughly proportionally.
        let full = plan.throughput.items_per_sec();
        let part = evaluate_with_replicas(&t, &bounded)
            .throughput
            .items_per_sec();
        assert!(part < full);
        assert!(part >= full * 0.5, "part {part} vs full {full}");
    }

    #[test]
    fn replica_bound_tops_up_rounding_undershoot() {
        // Three equal 5 ms stages: plan [1, 5, 5, 5], N = 16. With
        // n_max = 14 the scale r = 0.875 rounds every 5 down to 4, leaving
        // the sum at 13 — one replica below what the bound allows. The
        // top-up pass must hand that spare replica back (ties broken toward
        // the lowest operator index).
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("a", 5.0),
            stateless("b", 5.0),
            stateless("c", 5.0),
        ]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(plan.replicas, vec![1, 5, 5, 5]);

        let bounded = apply_replica_bound(&plan, 14);
        assert_eq!(bounded.iter().sum::<usize>(), 14);
        assert_eq!(bounded, vec![1, 5, 4, 4]);

        // The extra replica buys throughput over the undershot [1, 4, 4, 4].
        let topped = evaluate_with_replicas(&t, &bounded)
            .throughput
            .items_per_sec();
        let undershot = evaluate_with_replicas(&t, &[1, 4, 4, 4])
            .throughput
            .items_per_sec();
        assert!(
            topped >= undershot,
            "topped {topped} vs undershot {undershot}"
        );

        // Degrees never exceed the original plan's, even when n_max leaves
        // spare budget above N = 16.
        let plan_sum = plan.total_replicas();
        let generous = apply_replica_bound(&plan, plan_sum + 10);
        assert_eq!(generous, plan.replicas);
    }

    #[test]
    fn replica_bound_noop_when_already_within() {
        let t = pipeline(vec![stateless("src", 1.0), stateless("a", 2.0)]);
        let plan = eliminate_bottlenecks(&t);
        assert_eq!(apply_replica_bound(&plan, 100), plan.replicas);
    }

    #[test]
    fn replica_bound_unsatisfiable_floors_at_one_each() {
        let t = pipeline(vec![
            stateless("src", 1.0),
            stateless("a", 4.0),
            stateless("b", 4.0),
        ]);
        let plan = eliminate_bottlenecks(&t);
        let bounded = apply_replica_bound(&plan, 2); // < |V| = 3
        assert_eq!(bounded, vec![1, 1, 1]);
    }

    #[test]
    fn visits_remain_quadratically_bounded() {
        let specs: Vec<OperatorSpec> = std::iter::once(stateless("src", 1.0))
            .chain((0..10).map(|i| {
                OperatorSpec::stateful(format!("st{i}"), ServiceTime::from_millis(2.0 + i as f64))
            }))
            .collect();
        let t = pipeline(specs);
        let plan = eliminate_bottlenecks(&t);
        let n = t.num_operators();
        assert!(plan.visits <= n * n + 2 * n);
        assert!(!plan.ideal());
    }
}
