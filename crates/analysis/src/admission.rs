//! Model-driven admission control for multi-tenant serving.
//!
//! When a long-lived engine hosts many topologies on one shared worker
//! pool, a new submission must not silently degrade the tenants already
//! running. Algorithm 1 gives exactly the number needed to decide this
//! *before* deployment: each operator's steady-state utilization `ρ` is the
//! fraction of one core the operator consumes, so `Σ ρ·replicas` over a
//! plan is the **core demand** of the whole topology (the resource model of
//! Benoit et al., *Resource Allocation for Multiple Concurrent In-Network
//! Stream-Processing Applications*).
//!
//! [`admit`] compares that demand against the pool's remaining capacity and
//! returns one of three verdicts:
//!
//! * [`AdmissionVerdict::Admit`] — the plan fits inside the headroom-scaled
//!   capacity; deploy immediately.
//! * [`AdmissionVerdict::Queue`] — the plan would fit an *empty* pool but
//!   not the current residue; hold it until a tenant stops.
//! * [`AdmissionVerdict::Reject`] — the plan oversubscribes even an empty
//!   pool; report the predicted core deficit and the throughput fraction
//!   the model predicts it would achieve if forced in.

use crate::steady_state::SteadyStateReport;

/// Capacity model for one shared worker pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Number of cores (pool workers) available to all tenants together.
    pub capacity_cores: f64,
    /// Fraction of the capacity admission may hand out, in `(0, 1]`.
    /// The rest absorbs model error and transient load spikes.
    pub headroom: f64,
}

impl AdmissionConfig {
    /// Capacity model for a pool of `workers` cores with the default 90 %
    /// headroom.
    pub fn for_workers(workers: usize) -> Self {
        Self {
            capacity_cores: workers as f64,
            headroom: 0.9,
        }
    }

    /// Usable capacity after headroom.
    pub fn usable_cores(&self) -> f64 {
        self.capacity_cores * self.headroom
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self::for_workers(1)
    }
}

/// Outcome of an admission check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionVerdict {
    /// The plan fits the remaining capacity; deploy now.
    Admit {
        /// Core demand of the candidate plan (`Σ ρ·replicas`).
        demand_cores: f64,
    },
    /// The plan fits an empty pool but not the currently free capacity;
    /// hold the submission until running tenants release cores.
    Queue {
        /// Core demand of the candidate plan.
        demand_cores: f64,
        /// Cores currently free (usable capacity minus running demand).
        available_cores: f64,
    },
    /// The plan cannot fit even an empty pool.
    Reject {
        /// Core demand of the candidate plan.
        demand_cores: f64,
        /// Usable pool capacity the demand was compared against.
        capacity_cores: f64,
        /// Cores missing: `demand - capacity`.
        deficit_cores: f64,
        /// Throughput fraction the model predicts the plan would reach if
        /// deployed anyway (`capacity / demand`, in `(0, 1)`).
        predicted_throughput_fraction: f64,
    },
}

impl AdmissionVerdict {
    /// True for [`AdmissionVerdict::Admit`].
    pub fn is_admit(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit { .. })
    }

    /// The candidate's core demand, whatever the verdict.
    pub fn demand_cores(&self) -> f64 {
        match *self {
            AdmissionVerdict::Admit { demand_cores }
            | AdmissionVerdict::Queue { demand_cores, .. }
            | AdmissionVerdict::Reject { demand_cores, .. } => demand_cores,
        }
    }
}

/// Core demand of one analyzed plan: `Σ ρ·replicas` over its operators.
///
/// `report` should come from running Algorithm 1 on the plan *as deployed*
/// (i.e. via [`crate::evaluate_with_replicas`] when fission raised replica
/// counts), so each operator's `ρ` already reflects its effective service
/// rate and `replicas` its replication degree.
pub fn plan_demand_cores(report: &SteadyStateReport) -> f64 {
    report
        .metrics
        .iter()
        .map(|m| m.utilization * m.replicas as f64)
        .sum()
}

/// Core demand of a plan on a *worker pool* whose sources keep dedicated
/// threads (the pool executor's model): [`plan_demand_cores`] minus the
/// source's own contribution at `source_index`.
pub fn pool_demand_cores(report: &SteadyStateReport, source_index: usize) -> f64 {
    report
        .metrics
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != source_index)
        .map(|(_, m)| m.utilization * m.replicas as f64)
        .sum()
}

/// Decides whether a candidate plan of `demand_cores` (from
/// [`plan_demand_cores`] or [`pool_demand_cores`], per the executor's
/// threading model) may join a pool already carrying
/// `running_demand_cores` of admitted demand.
///
/// # Panics
///
/// Panics if `config.headroom` is not in `(0, 1]` or the capacity is not
/// positive.
pub fn admit(
    demand_cores: f64,
    running_demand_cores: f64,
    config: &AdmissionConfig,
) -> AdmissionVerdict {
    assert!(
        config.headroom > 0.0 && config.headroom <= 1.0,
        "headroom must be in (0, 1]"
    );
    assert!(config.capacity_cores > 0.0, "capacity must be positive");
    let demand = demand_cores;
    let usable = config.usable_cores();
    let available = (usable - running_demand_cores).max(0.0);
    if demand <= available {
        AdmissionVerdict::Admit {
            demand_cores: demand,
        }
    } else if demand <= usable {
        AdmissionVerdict::Queue {
            demand_cores: demand,
            available_cores: available,
        }
    } else {
        AdmissionVerdict::Reject {
            demand_cores: demand,
            capacity_cores: usable,
            deficit_cores: demand - usable,
            predicted_throughput_fraction: usable / demand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady_state;
    use spinstreams_core::{OperatorSpec, ServiceTime, Topology};

    fn pipeline(src_ms: f64, work_ms: f64) -> Topology {
        let mut b = Topology::builder();
        let src = b.add_operator(OperatorSpec::source(
            "src",
            ServiceTime::from_millis(src_ms),
        ));
        let work = b.add_operator(OperatorSpec::stateless(
            "work",
            ServiceTime::from_millis(work_ms),
        ));
        b.add_edge(src, work, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn demand_sums_utilization_times_replicas() {
        // src at 1 ms feeds work at 0.5 ms: ρ_src = 1, ρ_work = 0.5.
        let report = steady_state(&pipeline(1.0, 0.5));
        let demand = plan_demand_cores(&report);
        assert!((demand - 1.5).abs() < 1e-9, "demand = {demand}");
    }

    #[test]
    fn pool_demand_excludes_the_source() {
        let report = steady_state(&pipeline(1.0, 0.5));
        assert!((pool_demand_cores(&report, 0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn admits_when_pool_is_empty_enough() {
        let report = steady_state(&pipeline(1.0, 0.5));
        let cfg = AdmissionConfig {
            capacity_cores: 4.0,
            headroom: 1.0,
        };
        let verdict = admit(plan_demand_cores(&report), 1.0, &cfg);
        assert!(verdict.is_admit(), "{verdict:?}");
        assert!((verdict.demand_cores() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn queues_when_residue_blocks_but_empty_pool_fits() {
        let report = steady_state(&pipeline(1.0, 0.5));
        let cfg = AdmissionConfig {
            capacity_cores: 2.0,
            headroom: 1.0,
        };
        match admit(plan_demand_cores(&report), 1.0, &cfg) {
            AdmissionVerdict::Queue {
                demand_cores,
                available_cores,
            } => {
                assert!((demand_cores - 1.5).abs() < 1e-9);
                assert!((available_cores - 1.0).abs() < 1e-9);
            }
            other => panic!("expected Queue, got {other:?}"),
        }
    }

    #[test]
    fn rejects_with_deficit_and_predicted_fraction() {
        let report = steady_state(&pipeline(1.0, 0.5));
        let cfg = AdmissionConfig {
            capacity_cores: 1.0,
            headroom: 1.0,
        };
        match admit(plan_demand_cores(&report), 0.0, &cfg) {
            AdmissionVerdict::Reject {
                demand_cores,
                capacity_cores,
                deficit_cores,
                predicted_throughput_fraction,
            } => {
                assert!((demand_cores - 1.5).abs() < 1e-9);
                assert!((capacity_cores - 1.0).abs() < 1e-9);
                assert!((deficit_cores - 0.5).abs() < 1e-9);
                assert!((predicted_throughput_fraction - 1.0 / 1.5).abs() < 1e-9);
            }
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn headroom_shrinks_usable_capacity() {
        let cfg = AdmissionConfig::for_workers(10);
        assert!((cfg.usable_cores() - 9.0).abs() < 1e-9);
    }
}
