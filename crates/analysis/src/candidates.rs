//! Fusion-candidate enumeration and the automated fusion search.
//!
//! The SpinStreams GUI "proposes a set of candidates after the steady-state
//! analysis, ranked by their utilization factor" (§4.1); the user picks one
//! manually. The paper lists *automating* that choice as future work (§7) —
//! [`auto_fuse`] implements a greedy version: repeatedly fuse the
//! lowest-utilization feasible candidate as long as the prediction says
//! throughput is preserved.

use crate::{fuse, steady_state, FusionOutcome, SteadyStateReport};
use spinstreams_core::{OperatorId, Topology};
use std::collections::BTreeSet;

/// A sub-graph suggested for fusion, ranked by how underutilized it is.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionCandidate {
    /// The member operators.
    pub members: BTreeSet<OperatorId>,
    /// The single front-end vertex.
    pub front_end: OperatorId,
    /// Mean steady-state utilization of the members (ranking key; low means
    /// underutilized, a good fusion candidate).
    pub mean_utilization: f64,
    /// Highest member utilization (a cheap feasibility hint).
    pub max_utilization: f64,
}

/// Enumerates fusable sub-graphs of `topo`, ranked by increasing mean
/// utilization.
///
/// Candidates are the connected single-front-end sub-graphs grown greedily
/// from each non-source vertex by repeatedly absorbing successors that are
/// reachable only from inside the candidate, keeping every member's
/// utilization below `utilization_threshold` (saturated operators are never
/// good fusion material). Sub-graphs of fewer than two members are skipped.
///
/// The enumeration is heuristic — the space of all sub-graphs is
/// exponential — but mirrors the GUI's intent: surface the regions of
/// underutilized, downstream-closed operators a user would select.
pub fn fusion_candidates(topo: &Topology, utilization_threshold: f64) -> Vec<FusionCandidate> {
    let report = steady_state(topo);
    let mut out: Vec<FusionCandidate> = Vec::new();

    for seed in topo.operator_ids() {
        if seed == topo.source() {
            continue;
        }
        if report.metric(seed).utilization > utilization_threshold {
            continue;
        }
        let mut members: BTreeSet<OperatorId> = BTreeSet::new();
        members.insert(seed);
        // Greedy growth: absorb any successor of a member that (a) is below
        // the utilization threshold and (b) receives inputs only from
        // current members — preserving the single-front-end property with
        // `seed` as the front end.
        loop {
            let mut grew = false;
            let snapshot: Vec<OperatorId> = members.iter().cloned().collect();
            for m in snapshot {
                for succ in topo.successors(m) {
                    if members.contains(&succ) {
                        continue;
                    }
                    if report.metric(succ).utilization > utilization_threshold {
                        continue;
                    }
                    let all_inputs_internal =
                        topo.predecessors(succ).iter().all(|p| members.contains(p));
                    if all_inputs_internal {
                        members.insert(succ);
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if members.len() < 2 {
            continue;
        }
        // Validate via a dry-run fuse; skip structurally invalid candidates
        // (e.g. contraction cycles).
        if fuse(topo, &members).is_err() {
            continue;
        }
        let utils: Vec<f64> = members
            .iter()
            .map(|m| report.metric(*m).utilization)
            .collect();
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        let max = utils.iter().cloned().fold(0.0, f64::max);
        let cand = FusionCandidate {
            members,
            front_end: seed,
            mean_utilization: mean,
            max_utilization: max,
        };
        if !out.iter().any(|c| c.members == cand.members) {
            out.push(cand);
        }
    }

    out.sort_by(|a, b| {
        a.mean_utilization
            .partial_cmp(&b.mean_utilization)
            .expect("utilizations are finite")
            .then_with(|| a.front_end.cmp(&b.front_end))
    });
    out
}

/// Result of the automated greedy fusion search.
#[derive(Debug, Clone)]
pub struct AutoFusion {
    /// The final topology after all accepted fusions.
    pub topology: Topology,
    /// The accepted fusion steps, in application order.
    pub steps: Vec<FusionOutcome>,
    /// Steady-state report of the final topology.
    pub report: SteadyStateReport,
}

impl AutoFusion {
    /// Number of operators eliminated by the accepted fusions.
    pub fn operators_saved(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.baseline.metrics.len() - s.report.metrics.len())
            .sum()
    }
}

/// Automated fusion (§7 future work): greedily fuses the lowest-utilization
/// candidate while the cost model predicts no throughput loss, re-ranking
/// after every accepted fusion.
///
/// `utilization_threshold` bounds which operators may participate (e.g.
/// `0.9`); candidates whose predicted fused topology loses throughput are
/// rejected, exactly like the GUI alert of Table 2.
pub fn auto_fuse(topo: &Topology, utilization_threshold: f64) -> AutoFusion {
    let mut current = topo.clone();
    let mut steps: Vec<FusionOutcome> = Vec::new();

    loop {
        let candidates = fusion_candidates(&current, utilization_threshold);
        let mut accepted = None;
        for cand in candidates {
            match fuse(&current, &cand.members) {
                Ok(outcome) if outcome.is_feasible() => {
                    accepted = Some(outcome);
                    break;
                }
                _ => continue,
            }
        }
        match accepted {
            Some(outcome) => {
                current = outcome.topology.clone();
                steps.push(outcome);
            }
            None => break,
        }
    }

    let report = steady_state(&current);
    AutoFusion {
        topology: current,
        steps,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{OperatorSpec, ServiceTime};

    fn op(name: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms))
    }

    /// The reconstructed Figure 11 topology (Table 1 service times).
    fn figure11() -> Topology {
        let mut b = Topology::builder();
        let times = [1.0, 1.2, 0.7, 2.0, 1.5, 0.2];
        let ids: Vec<_> = (0..6)
            .map(|i| b.add_operator(op(&format!("{}", i + 1), times[i])))
            .collect();
        b.add_edge(ids[0], ids[1], 0.7).unwrap();
        b.add_edge(ids[0], ids[2], 0.3).unwrap();
        b.add_edge(ids[1], ids[5], 1.0).unwrap();
        b.add_edge(ids[2], ids[3], 0.5).unwrap();
        b.add_edge(ids[2], ids[4], 0.5).unwrap();
        b.add_edge(ids[4], ids[3], 0.35).unwrap();
        b.add_edge(ids[4], ids[5], 0.65).unwrap();
        b.add_edge(ids[3], ids[5], 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure11_candidates_include_the_345_subgraph() {
        let cands = fusion_candidates(&figure11(), 0.9);
        let expect: BTreeSet<_> = [OperatorId(2), OperatorId(3), OperatorId(4)]
            .into_iter()
            .collect();
        assert!(
            cands.iter().any(|c| c.members == expect),
            "candidates: {cands:?}"
        );
        // The {3,4,5} candidate has mean utilization (0.21+0.405+0.225)/3.
        let c = cands.iter().find(|c| c.members == expect).unwrap();
        assert!((c.mean_utilization - 0.28).abs() < 0.01);
        assert_eq!(c.front_end, OperatorId(2));
    }

    #[test]
    fn candidates_are_sorted_by_mean_utilization() {
        let cands = fusion_candidates(&figure11(), 0.9);
        for w in cands.windows(2) {
            assert!(w[0].mean_utilization <= w[1].mean_utilization + 1e-12);
        }
    }

    #[test]
    fn saturated_operators_are_never_candidates() {
        let cands = fusion_candidates(&figure11(), 0.5);
        for c in &cands {
            assert!(c.max_utilization <= 0.5);
        }
    }

    #[test]
    fn auto_fuse_preserves_predicted_throughput() {
        let t = figure11();
        let before = steady_state(&t).throughput.items_per_sec();
        let auto = auto_fuse(&t, 0.9);
        let after = auto.report.throughput.items_per_sec();
        assert!(
            after >= before * (1.0 - 1e-9),
            "auto fusion lost throughput: {before} -> {after}"
        );
        assert!(
            auto.topology.num_operators() < t.num_operators(),
            "figure 11 has fusable underutilized operators"
        );
        assert!(!auto.steps.is_empty());
        assert_eq!(
            auto.operators_saved(),
            t.num_operators() - auto.topology.num_operators()
        );
    }

    #[test]
    fn auto_fuse_on_tight_pipeline_does_nothing() {
        // Every stage saturated: nothing is a candidate.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let a = b.add_operator(op("a", 1.0));
        let c = b.add_operator(op("b", 1.0));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, c, 1.0).unwrap();
        let t = b.build().unwrap();
        let auto = auto_fuse(&t, 0.9);
        assert!(auto.steps.is_empty());
        assert_eq!(auto.topology.num_operators(), 3);
    }

    #[test]
    fn candidate_growth_respects_external_inputs() {
        // Diamond: s -> {l, r} -> k. Growing from l cannot absorb k because
        // k also receives from r (external input) — {l, k} would have two
        // front-ends anyway.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let l = b.add_operator(op("l", 0.1));
        let r = b.add_operator(op("r", 0.1));
        let k = b.add_operator(op("k", 0.1));
        b.add_edge(s, l, 0.5).unwrap();
        b.add_edge(s, r, 0.5).unwrap();
        b.add_edge(l, k, 1.0).unwrap();
        b.add_edge(r, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let cands = fusion_candidates(&t, 0.9);
        for c in &cands {
            assert!(fuse(&t, &c.members).is_ok());
        }
        // No candidate may contain both l and k or both r and k without the
        // other branch.
        for c in &cands {
            if c.members.contains(&k) {
                assert!(c.members.contains(&l) && c.members.contains(&r));
            }
        }
    }
}
