//! Online re-profiling: the §4.1 annotation step computed from *live*
//! telemetry instead of a dedicated profiling run.
//!
//! SpinStreams optimizes a topology from profiled annotations — per-operator
//! service times (busy seconds per consumed item), selectivities
//! (`items_out / items_in`), and routing probabilities. The paper profiles
//! them once, offline (§4.1); the open problem blocking online
//! re-optimization is producing the same annotations *while the graph
//! runs*. [`Reprofiler`] does exactly that: feed it cumulative per-operator
//! counters from each telemetry snapshot and it maintains the full
//! annotation vector, using the very same estimators as the offline
//! same-trace profiler (the oracle's `annotate`), so on a deterministic
//! trace the online and offline annotations agree exactly.
//!
//! Like [`DriftMonitor`](crate::DriftMonitor), the re-profiler is decoupled
//! from the runtime: it consumes plain counters, so it works identically
//! against the threaded engine, the discrete-event executor, or counters
//! parsed back out of an exported telemetry log. The tool layer maps
//! runtime actors onto topology operators (replicated operators span an
//! emitter/collector chain of actors) before feeding it.
//!
//! The annotation vector is *flattened* — one slot per (operator,
//! annotation-kind) pair — precisely so it can be dropped into the existing
//! [`DriftMonitor`]: monitoring the flattened declared values against the
//! live estimates yields drift verdicts that name the stale *annotation*
//! ("service_time(slow)"), not just the stale rate.

use crate::drift::{DriftConfig, DriftMonitor};
use spinstreams_core::{OperatorId, Selectivity, ServiceTime, Topology};

/// Cumulative counters for one topology operator at one sampling instant.
///
/// These are run-so-far totals (not window deltas); the re-profiler
/// estimates annotations over the whole run up to the latest snapshot,
/// which is exactly the window the offline same-trace profiler uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorCounters {
    /// Items consumed so far.
    pub items_in: u64,
    /// Items emitted so far.
    pub items_out: u64,
    /// Busy time so far, in nanoseconds. `None` when the deployment cannot
    /// observe the operator's busy time as a single actor (replicated
    /// operators split it across replica actors; sources pace, not serve).
    pub busy_ns: Option<u64>,
}

/// Which §4.1 annotation a flattened slot estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationKind {
    /// Busy seconds per consumed item.
    ServiceTime,
    /// Output selectivity: `items_out / items_in`.
    Selectivity,
    /// Routing probability of the out-edge to `to` (only edges whose
    /// target has no other input are observable from counters).
    EdgeProbability {
        /// Destination operator of the profiled edge.
        to: OperatorId,
    },
}

/// One slot of the flattened annotation vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationId {
    /// The annotated operator (the edge origin for
    /// [`AnnotationKind::EdgeProbability`]).
    pub operator: OperatorId,
    /// Which annotation of that operator.
    pub kind: AnnotationKind,
}

/// Continuous online estimator of the §4.1 annotations.
///
/// # Example
///
/// ```
/// use spinstreams_analysis::{OperatorCounters, Reprofiler};
/// use spinstreams_core::{OperatorSpec, ServiceTime, Topology};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Topology::builder();
/// let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
/// let op = b.add_operator(OperatorSpec::stateless("op", ServiceTime::from_millis(1.0)));
/// b.add_edge(src, op, 1.0)?;
/// let topo = b.build()?;
///
/// let mut rp = Reprofiler::new(&topo).with_min_samples(100);
/// // 1000 items consumed, 500 emitted, 2 ms busy per item.
/// let est = rp.update(&[
///     OperatorCounters { items_in: 0, items_out: 1000, busy_ns: None },
///     OperatorCounters { items_in: 1000, items_out: 500, busy_ns: Some(2_000_000_000) },
/// ]);
/// // Slot 0 is op's service time, slot 1 its selectivity.
/// assert!((est[0].unwrap() - 0.002).abs() < 1e-12);
/// assert!((est[1].unwrap() - 0.5).abs() < 1e-12);
/// assert_eq!(rp.describe(0), "service_time(op)");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reprofiler {
    topo: Topology,
    min_samples: u64,
    ids: Vec<AnnotationId>,
    declared: Vec<Option<f64>>,
    latest: Vec<Option<f64>>,
}

impl Reprofiler {
    /// Creates a re-profiler for `topo`. The flattened annotation layout
    /// is: for every non-source operator in id order, its service time
    /// then its selectivity; then, for every operator with ≥ 2 out-edges,
    /// the probability of each counter-observable out-edge (target with
    /// in-degree 1), in edge order.
    pub fn new(topo: &Topology) -> Self {
        let mut ids = Vec::new();
        let mut declared = Vec::new();
        for id in topo.operator_ids() {
            if id == topo.source() {
                continue;
            }
            let spec = topo.operator(id);
            ids.push(AnnotationId {
                operator: id,
                kind: AnnotationKind::ServiceTime,
            });
            declared.push(Some(spec.service_time.as_secs()));
            ids.push(AnnotationId {
                operator: id,
                kind: AnnotationKind::Selectivity,
            });
            declared.push(Some(spec.selectivity.rate_factor()));
        }
        for u in topo.operator_ids() {
            let out = topo.out_edges(u);
            if out.len() < 2 {
                continue; // a single out-edge always carries probability 1
            }
            for e in out {
                let edge = topo.edge(*e);
                if topo.in_edges(edge.to).len() == 1 {
                    ids.push(AnnotationId {
                        operator: u,
                        kind: AnnotationKind::EdgeProbability { to: edge.to },
                    });
                    declared.push(Some(edge.probability));
                }
            }
        }
        let n = ids.len();
        Self {
            topo: topo.clone(),
            min_samples: 200,
            ids,
            declared,
            latest: vec![None; n],
        }
    }

    /// Sets the minimum consumed (for operators) / emitted (for routing
    /// splits) item count below which a slot stays unestimated. Default
    /// `200`, matching the oracle's profiling floor.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// The flattened annotation layout.
    pub fn annotations(&self) -> &[AnnotationId] {
        &self.ids
    }

    /// The declared (statically annotated) value of every slot.
    pub fn declared(&self) -> &[Option<f64>] {
        &self.declared
    }

    /// The latest estimates (all `None` before the first
    /// [`update`](Self::update)).
    pub fn latest(&self) -> &[Option<f64>] {
        &self.latest
    }

    /// Human-readable name of annotation slot `index`, for drift reports:
    /// `service_time(op)`, `selectivity(op)`, or `edge_probability(a->b)`.
    pub fn describe(&self, index: usize) -> String {
        match self.ids.get(index) {
            None => format!("annotation#{index}"),
            Some(a) => {
                let name = &self.topo.operator(a.operator).name;
                match a.kind {
                    AnnotationKind::ServiceTime => format!("service_time({name})"),
                    AnnotationKind::Selectivity => format!("selectivity({name})"),
                    AnnotationKind::EdgeProbability { to } => {
                        format!("edge_probability({name}->{})", self.topo.operator(to).name)
                    }
                }
            }
        }
    }

    /// Feeds one snapshot of cumulative per-operator counters (indexed by
    /// operator id) and returns the refreshed estimate vector, aligned
    /// with [`annotations`](Self::annotations). Slots whose operator is
    /// below the sample floor — or whose busy time is unobservable — stay
    /// `None`.
    ///
    /// The estimators mirror the offline §4.1 profiler exactly: service
    /// time `busy / items_in`, selectivity `items_out / items_in`, and
    /// per-edge probabilities `items_in(to) / items_out(from)` rescaled
    /// against the declared weights of unobservable siblings and
    /// renormalized over each operator's out-edge set.
    pub fn update(&mut self, counters: &[OperatorCounters]) -> Vec<Option<f64>> {
        let get = |id: OperatorId| counters.get(id.0).copied().unwrap_or_default();
        let mut slot = 0;
        for id in self.topo.operator_ids() {
            if id == self.topo.source() {
                continue;
            }
            let c = get(id);
            self.latest[slot] = match (c.busy_ns, c.items_in >= self.min_samples) {
                (Some(busy), true) => Some(busy as f64 / 1e9 / c.items_in as f64),
                _ => None,
            };
            slot += 1;
            self.latest[slot] = if c.items_in >= self.min_samples {
                Some(c.items_out as f64 / c.items_in as f64)
            } else {
                None
            };
            slot += 1;
        }
        for u in self.topo.operator_ids() {
            let out = self.topo.out_edges(u);
            if out.len() < 2 {
                continue;
            }
            let observable = |to: OperatorId| self.topo.in_edges(to).len() == 1;
            let n_observable = out
                .iter()
                .filter(|e| observable(self.topo.edge(**e).to))
                .count();
            if n_observable == 0 {
                continue;
            }
            let emitted = get(u).items_out;
            if emitted < self.min_samples {
                for _ in 0..n_observable {
                    self.latest[slot] = None;
                    slot += 1;
                }
                continue;
            }
            // Same rescale + renormalize as the offline profiler: measured
            // mass from observable edges, declared weights of the rest
            // scaled into the leftover, then exact renormalization.
            let mut probs: Vec<(f64, bool)> = Vec::with_capacity(out.len());
            for e in out {
                let edge = self.topo.edge(*e);
                if observable(edge.to) {
                    probs.push((get(edge.to).items_in as f64 / emitted as f64, true));
                } else {
                    probs.push((edge.probability, false));
                }
            }
            let measured_mass: f64 = probs.iter().filter(|p| p.1).map(|p| p.0).sum();
            let declared_rest: f64 = probs.iter().filter(|p| !p.1).map(|p| p.0).sum();
            if declared_rest > 0.0 {
                let scale = (1.0 - measured_mass).max(0.0) / declared_rest;
                for p in probs.iter_mut().filter(|p| !p.1) {
                    p.0 *= scale;
                }
            }
            // Clamp each raw weight into (0, 1] *before* normalizing, then
            // divide by the post-clamp total: the final division is exact,
            // so the full edge set sums to 1. (Clamping after the division
            // could shave mass off a dominant edge and leave the set
            // summing below 1.)
            let clamped: Vec<f64> = probs.iter().map(|p| p.0.clamp(1e-9, 1.0)).collect();
            let total: f64 = clamped.iter().sum();
            for (c, (_, measured)) in clamped.iter().zip(&probs) {
                if *measured {
                    self.latest[slot] = Some(c / total);
                    slot += 1;
                }
            }
        }
        debug_assert_eq!(slot, self.latest.len());
        self.latest.clone()
    }

    /// A [`DriftMonitor`] over the flattened annotation vector: the
    /// declared values are the predictions, [`update`](Self::update)'s
    /// estimates are the measurements. A drifting verdict at index `i`
    /// means annotation [`describe(i)`](Self::describe) is stale.
    pub fn drift_monitor(&self, config: DriftConfig) -> DriftMonitor {
        DriftMonitor::new(self.declared.clone(), config)
    }

    /// Rebuilds the topology with every estimated annotation applied
    /// (unestimated slots keep their declared values) — the live
    /// re-annotated topology that Algorithm 1 can re-run on.
    ///
    /// # Errors
    ///
    /// Returns the validation message if the re-annotated topology no
    /// longer validates (it cannot in practice: estimates are clamped into
    /// valid ranges by construction).
    pub fn annotated_topology(&self) -> Result<Topology, String> {
        let mut ops = self.topo.operators().to_vec();
        let mut edges = self.topo.edges().to_vec();
        for (a, v) in self.ids.iter().zip(&self.latest) {
            let Some(v) = *v else { continue };
            match a.kind {
                AnnotationKind::ServiceTime => {
                    ops[a.operator.0].service_time = ServiceTime::from_secs(v);
                }
                AnnotationKind::Selectivity => {
                    ops[a.operator.0].selectivity = Selectivity::output(v);
                }
                AnnotationKind::EdgeProbability { to } => {
                    for e in self.topo.out_edges(a.operator) {
                        if self.topo.edge(*e).to == to {
                            edges[e.0].probability = v;
                        }
                    }
                }
            }
        }
        // Re-close each multi-out operator's probability mass over the
        // *unestimated* edges so the set still sums to 1 after validation.
        for u in self.topo.operator_ids() {
            let out = self.topo.out_edges(u);
            if out.len() < 2 {
                continue;
            }
            let estimated: Vec<bool> = out
                .iter()
                .map(|e| {
                    let to = self.topo.edge(*e).to;
                    self.ids.iter().zip(&self.latest).any(|(a, v)| {
                        v.is_some()
                            && a.operator == u
                            && a.kind == (AnnotationKind::EdgeProbability { to })
                    })
                })
                .collect();
            if !estimated.iter().any(|&e| e) {
                continue;
            }
            let measured_mass: f64 = out
                .iter()
                .zip(&estimated)
                .filter(|(_, &m)| m)
                .map(|(e, _)| edges[e.0].probability)
                .sum();
            let declared_rest: f64 = out
                .iter()
                .zip(&estimated)
                .filter(|(_, &m)| !m)
                .map(|(e, _)| edges[e.0].probability)
                .sum();
            if declared_rest > 0.0 {
                let scale = (1.0 - measured_mass).max(0.0) / declared_rest;
                for (e, _) in out.iter().zip(&estimated).filter(|(_, &m)| !m) {
                    edges[e.0].probability *= scale;
                }
            }
            // Clamp-then-normalize (not the reverse) so the out-edge set
            // sums to exactly 1 — see the same invariant in `update`.
            let total: f64 = out
                .iter()
                .map(|e| edges[e.0].probability.clamp(1e-9, 1.0))
                .sum();
            for e in out {
                edges[e.0].probability = edges[e.0].probability.clamp(1e-9, 1.0) / total;
            }
        }
        Topology::from_parts(ops, edges).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::OperatorSpec;

    fn diamond() -> Topology {
        // src -> router -> {a (0.7), b (0.3)} -> join
        let mut b = Topology::builder();
        let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_millis(1.0)));
        let router = b.add_operator(OperatorSpec::stateless(
            "router",
            ServiceTime::from_micros(100.0),
        ));
        let a = b.add_operator(OperatorSpec::stateless(
            "a",
            ServiceTime::from_micros(200.0),
        ));
        let bb = b.add_operator(OperatorSpec::stateless(
            "b",
            ServiceTime::from_micros(300.0),
        ));
        let join = b.add_operator(OperatorSpec::stateless(
            "join",
            ServiceTime::from_micros(50.0),
        ));
        b.add_edge(src, router, 1.0).unwrap();
        b.add_edge(router, a, 0.7).unwrap();
        b.add_edge(router, bb, 0.3).unwrap();
        b.add_edge(a, join, 1.0).unwrap();
        b.add_edge(bb, join, 1.0).unwrap();
        b.build().unwrap()
    }

    fn counters(items_in: u64, items_out: u64, busy_ms: u64) -> OperatorCounters {
        OperatorCounters {
            items_in,
            items_out,
            busy_ns: Some(busy_ms * 1_000_000),
        }
    }

    #[test]
    fn layout_covers_every_annotation() {
        let rp = Reprofiler::new(&diamond());
        // 4 non-source operators x (service, selectivity) + 2 observable
        // router out-edges.
        assert_eq!(rp.annotations().len(), 10);
        assert_eq!(rp.describe(0), "service_time(router)");
        assert_eq!(rp.describe(1), "selectivity(router)");
        assert_eq!(rp.describe(8), "edge_probability(router->a)");
        assert_eq!(rp.describe(9), "edge_probability(router->b)");
        // Declared values line up.
        assert_eq!(rp.declared()[0], Some(100e-6));
        assert_eq!(rp.declared()[8], Some(0.7));
    }

    #[test]
    fn estimates_match_the_offline_formulas() {
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(100);
        let est = rp.update(&[
            OperatorCounters {
                items_out: 1000,
                ..OperatorCounters::default()
            },
            counters(1000, 1000, 150), // router: 150 µs/item
            counters(600, 600, 120),   // a: got 60%
            counters(400, 200, 120),   // b: got 40%, halves
            counters(800, 800, 40),    // join
        ]);
        assert!((est[0].unwrap() - 150e-6).abs() < 1e-12, "router service");
        assert!((est[1].unwrap() - 1.0).abs() < 1e-12, "router selectivity");
        assert!((est[5].unwrap() - 0.5).abs() < 1e-12, "b selectivity");
        // Edge probabilities renormalized over measured mass 0.6 + 0.4.
        assert!((est[8].unwrap() - 0.6).abs() < 1e-9);
        assert!((est[9].unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn below_sample_floor_stays_unestimated() {
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(1000);
        let est = rp.update(&[
            OperatorCounters::default(),
            counters(10, 10, 1),
            counters(6, 6, 1),
            counters(4, 4, 1),
            counters(10, 10, 1),
        ]);
        assert!(est.iter().all(Option::is_none));
    }

    #[test]
    fn unobservable_busy_time_skips_service_only() {
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(100);
        let est = rp.update(&[
            OperatorCounters::default(),
            OperatorCounters {
                items_in: 1000,
                items_out: 1000,
                busy_ns: None, // replicated: busy split across actors
            },
            counters(600, 600, 1),
            counters(400, 400, 1),
            counters(1000, 1000, 1),
        ]);
        assert_eq!(est[0], None, "router service unobservable");
        assert_eq!(est[1], Some(1.0), "selectivity still estimated");
    }

    #[test]
    fn drift_monitor_names_the_stale_annotation() {
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(100);
        let mut mon = rp.drift_monitor(DriftConfig {
            threshold: 0.25,
            warmup_ticks: 0,
            consecutive: 2,
        });
        // Router actually takes 400 µs/item — 4x the declared 100 µs.
        for _ in 0..2 {
            let est = rp.update(&[
                OperatorCounters {
                    items_out: 1000,
                    ..OperatorCounters::default()
                },
                counters(1000, 1000, 400),
                counters(700, 700, 140),
                counters(300, 300, 90),
                counters(1000, 1000, 50),
            ]);
            let verdicts = mon.tick(&est);
            let drifting: Vec<String> = verdicts
                .iter()
                .filter(|v| v.status == crate::DriftStatus::Drifting)
                .map(|v| rp.describe(v.index))
                .collect();
            if mon.ticks() >= 2 {
                assert_eq!(drifting, vec!["service_time(router)".to_string()]);
            }
        }
    }

    #[test]
    fn renormalized_probabilities_sum_to_one_even_when_one_edge_dominates() {
        // One edge carries (nearly) all the measured traffic. A
        // clamp-after-normalize would cap the dominant edge and leave the
        // set summing below 1; clamp-then-normalize keeps the invariant
        // exact.
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(100);
        let est = rp.update(&[
            OperatorCounters {
                items_out: 1000,
                ..OperatorCounters::default()
            },
            counters(1000, 1000, 150),
            counters(1000, 1000, 120), // a: got everything
            counters(0, 0, 0),         // b: starved
            counters(1000, 1000, 40),
        ]);
        let sum = est[8].unwrap() + est[9].unwrap();
        assert!((sum - 1.0).abs() < 1e-12, "estimates sum to {sum}");
        assert!(est.iter().flatten().all(|&p| p <= 1.0));
        // The annotated topology preserves the same invariant (and still
        // validates, which requires each out-edge set to close to 1).
        let topo = rp.annotated_topology().unwrap();
        let router = topo.operator_by_name("router").unwrap();
        let mass: f64 = topo
            .out_edges(router)
            .iter()
            .map(|e| topo.edge(*e).probability)
            .sum();
        assert!((mass - 1.0).abs() < 1e-12, "edge mass {mass}");
    }

    #[test]
    fn annotated_topology_applies_estimates() {
        let mut rp = Reprofiler::new(&diamond()).with_min_samples(100);
        rp.update(&[
            OperatorCounters {
                items_out: 1000,
                ..OperatorCounters::default()
            },
            counters(1000, 1000, 150),
            counters(600, 600, 120),
            counters(400, 200, 120),
            counters(800, 800, 40),
        ]);
        let topo = rp.annotated_topology().unwrap();
        let router = topo.operator_by_name("router").unwrap();
        assert!((topo.operator(router).service_time.as_secs() - 150e-6).abs() < 1e-12);
        let a = topo.operator_by_name("a").unwrap();
        assert!((topo.edge_probability(router, a).unwrap() - 0.6).abs() < 1e-9);
        let b = topo.operator_by_name("b").unwrap();
        assert!((topo.operator(b).selectivity.rate_factor() - 0.5).abs() < 1e-12);
    }
}
