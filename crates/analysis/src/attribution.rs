//! Bottleneck attribution: joining Algorithm 1's *predicted* bottleneck
//! with the *measured* one, and explaining disagreement through the
//! backpressure chain.
//!
//! Algorithm 1 names the operator with the highest utilization
//! `ρ = λ/µ` as the bottleneck. The live graph names its own: the
//! operator with the highest measured busy fraction. When the two agree,
//! the model describes the deployment. When they disagree, the telemetry's
//! blocked-time decomposition says *why*: under Blocking-After-Service
//! backpressure, an upstream operator that looks saturated to the model
//! spends its wall-clock blocked on a downstream mailbox, and the
//! receiver-edge stall counters (how long producers stalled on each
//! actor's inbox) trace the pressure hop-by-hop to the operator actually
//! limiting the flow. [`attribute`] materializes that join as one verdict
//! per operator plus the blocked-time edge chain.

use crate::steady_state::SteadyStateReport;
use spinstreams_core::{OperatorId, Topology};

/// Measured observability inputs for one operator, joined from telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObservedOperator {
    /// Measured busy fraction over the run (`None` when unobservable —
    /// sources, or operators replicated across several actors).
    pub utilization: Option<f64>,
    /// Total time this operator spent blocked sending into full
    /// downstream mailboxes, in nanoseconds.
    pub blocked_ns: u64,
    /// Receiver-edge stall: total time *producers* spent blocked on this
    /// operator's inbox, in nanoseconds.
    pub inbox_stall_ns: u64,
}

/// Per-operator verdict: the model's view next to the measured one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorVerdict {
    /// The operator.
    pub operator: OperatorId,
    /// Algorithm 1's predicted utilization `ρ` (capped at 1 by the
    /// steady-state solver's backpressure propagation).
    pub predicted_rho: f64,
    /// Measured busy fraction, if observable.
    pub measured_utilization: Option<f64>,
    /// Producer-side blocked time (ns).
    pub blocked_ns: u64,
    /// Receiver-edge inbox stall (ns).
    pub inbox_stall_ns: u64,
    /// True iff this operator is the model's bottleneck.
    pub predicted_bottleneck: bool,
    /// True iff this operator is the measured bottleneck.
    pub observed_bottleneck: bool,
}

/// The joined attribution of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// One verdict per operator, in operator-id order.
    pub verdicts: Vec<OperatorVerdict>,
    /// The operator Algorithm 1 predicts as the bottleneck (highest ρ;
    /// `None` only for a topology with no non-source operator).
    pub predicted: Option<OperatorId>,
    /// The measured bottleneck (highest observed busy fraction; `None`
    /// when no operator's utilization is observable).
    pub observed: Option<OperatorId>,
    /// True iff prediction and measurement name the same operator (or
    /// neither names one).
    pub agreement: bool,
    /// The backpressure chain from the predicted bottleneck to the
    /// operator the pressure actually originates from: starting at the
    /// predicted bottleneck, repeatedly follow the out-edge whose target
    /// absorbed the most inbox stall while the current operator spent
    /// time blocked. A single-element chain means the predicted
    /// bottleneck is not being backpressured.
    pub chain: Vec<OperatorId>,
}

impl AttributionReport {
    /// The verdict of `id`.
    pub fn verdict(&self, id: OperatorId) -> OperatorVerdict {
        self.verdicts[id.0]
    }
}

/// Joins Algorithm 1's steady-state prediction with measured utilization
/// and blocked-time telemetry into an [`AttributionReport`].
///
/// `observed` is indexed by operator id; missing entries are treated as
/// all-`None`/zero. The source operator is excluded from both bottleneck
/// rankings — it paces the flow rather than serving it (§3.1).
pub fn attribute(
    topo: &Topology,
    predicted: &SteadyStateReport,
    observed: &[ObservedOperator],
) -> AttributionReport {
    let get = |id: OperatorId| observed.get(id.0).copied().unwrap_or_default();
    let source = topo.source();

    // Predicted bottleneck: the non-source operator with the highest
    // *final* ρ. The solver's bottleneck events are recorded in detection
    // order at successive throttle stages, so their unconstrained
    // utilizations are not comparable across events — but an operator
    // still saturated in the final solution (ρ capped at 1) is the
    // binding constraint. Among equally saturated operators, the one
    // whose event recorded the highest unconstrained ρ wins; then the
    // earliest id.
    let event_rho = |id: OperatorId| {
        predicted
            .bottlenecks
            .iter()
            .find(|b| b.operator == id)
            .map(|b| b.utilization)
            .unwrap_or(0.0)
    };
    let predicted_bn: Option<OperatorId> =
        topo.operator_ids()
            .filter(|&id| id != source)
            .max_by(|&a, &b| {
                let key = |id: OperatorId| (predicted.metric(id).utilization, event_rho(id));
                let (ka, kb) = (key(a), key(b));
                ka.partial_cmp(&kb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break: earliest id wins (max_by keeps
                    // the *last* max otherwise).
                    .then(b.0.cmp(&a.0))
            });

    // Observed bottleneck: highest measured busy fraction.
    let observed_bn: Option<OperatorId> = topo
        .operator_ids()
        .filter(|&id| id != source)
        .filter_map(|id| get(id).utilization.map(|u| (id, u)))
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.0 .0.cmp(&a.0 .0))
        })
        .map(|(id, _)| id);

    let verdicts: Vec<OperatorVerdict> = topo
        .operator_ids()
        .map(|id| {
            let o = get(id);
            OperatorVerdict {
                operator: id,
                predicted_rho: predicted.metric(id).utilization,
                measured_utilization: o.utilization,
                blocked_ns: o.blocked_ns,
                inbox_stall_ns: o.inbox_stall_ns,
                predicted_bottleneck: Some(id) == predicted_bn,
                observed_bottleneck: Some(id) == observed_bn,
            }
        })
        .collect();

    // Follow the backpressure: while the current operator spent time
    // blocked, step to the successor whose inbox absorbed the most stall.
    // The topology is acyclic, so the walk terminates; the bound is belt
    // and braces.
    let mut chain = Vec::new();
    if let Some(start) = predicted_bn {
        let mut cur = start;
        chain.push(cur);
        for _ in 0..topo.num_operators() {
            if get(cur).blocked_ns == 0 {
                break;
            }
            let next = topo
                .successors(cur)
                .into_iter()
                .map(|s| (s, get(s).inbox_stall_ns))
                .filter(|&(_, stall)| stall > 0)
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0 .0.cmp(&a.0 .0)))
                .map(|(s, _)| s);
            match next {
                Some(s) => {
                    chain.push(s);
                    cur = s;
                }
                None => break,
            }
        }
    }

    AttributionReport {
        verdicts,
        predicted: predicted_bn,
        observed: observed_bn,
        agreement: predicted_bn == observed_bn,
        chain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steady_state;
    use spinstreams_core::{OperatorSpec, ServiceTime, Topology};

    /// src -> fast -> slow -> sink: `slow` is the model's bottleneck.
    fn pipeline() -> Topology {
        let mut b = Topology::builder();
        let src = b.add_operator(OperatorSpec::source("src", ServiceTime::from_micros(100.0)));
        let fast = b.add_operator(OperatorSpec::stateless(
            "fast",
            ServiceTime::from_micros(50.0),
        ));
        let slow = b.add_operator(OperatorSpec::stateless(
            "slow",
            ServiceTime::from_micros(400.0),
        ));
        let sink = b.add_operator(OperatorSpec::stateless(
            "sink",
            ServiceTime::from_micros(10.0),
        ));
        b.add_edge(src, fast, 1.0).unwrap();
        b.add_edge(fast, slow, 1.0).unwrap();
        b.add_edge(slow, sink, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn agreement_when_measured_matches_model() {
        let topo = pipeline();
        let report = steady_state(&topo);
        let observed = vec![
            ObservedOperator::default(), // src
            ObservedOperator {
                utilization: Some(0.12),
                blocked_ns: 40_000,
                inbox_stall_ns: 0,
                // fast: blocked on slow's inbox
            },
            ObservedOperator {
                utilization: Some(0.99),
                blocked_ns: 0,
                inbox_stall_ns: 900_000,
            },
            ObservedOperator {
                utilization: Some(0.02),
                ..ObservedOperator::default()
            },
        ];
        let attr = attribute(&topo, &report, &observed);
        assert_eq!(attr.predicted, Some(OperatorId(2)));
        assert_eq!(attr.observed, Some(OperatorId(2)));
        assert!(attr.agreement);
        assert!(attr.verdict(OperatorId(2)).predicted_bottleneck);
        assert!(attr.verdict(OperatorId(2)).observed_bottleneck);
        // Slow itself is not blocked: the chain stops immediately.
        assert_eq!(attr.chain, vec![OperatorId(2)]);
    }

    #[test]
    fn disagreement_traces_the_blocked_chain() {
        let topo = pipeline();
        let report = steady_state(&topo);
        // Live run: the *sink* is actually the slowest (e.g. stale
        // annotation) — slow blocks on it, pressure flows downstream.
        let observed = vec![
            ObservedOperator::default(),
            ObservedOperator {
                utilization: Some(0.10),
                blocked_ns: 10_000,
                inbox_stall_ns: 0,
            },
            ObservedOperator {
                utilization: Some(0.40),
                blocked_ns: 800_000,
                inbox_stall_ns: 15_000,
            },
            ObservedOperator {
                utilization: Some(0.97),
                blocked_ns: 0,
                inbox_stall_ns: 790_000,
            },
        ];
        let attr = attribute(&topo, &report, &observed);
        assert_eq!(attr.predicted, Some(OperatorId(2)));
        assert_eq!(attr.observed, Some(OperatorId(3)));
        assert!(!attr.agreement);
        // slow (blocked) -> sink (most-stalled successor, unblocked).
        assert_eq!(attr.chain, vec![OperatorId(2), OperatorId(3)]);
    }

    #[test]
    fn missing_observations_degrade_gracefully() {
        let topo = pipeline();
        let report = steady_state(&topo);
        let attr = attribute(&topo, &report, &[]);
        assert_eq!(attr.predicted, Some(OperatorId(2)));
        assert_eq!(attr.observed, None);
        assert!(!attr.agreement);
        assert_eq!(attr.chain, vec![OperatorId(2)]);
        assert_eq!(attr.verdicts.len(), 4);
    }
}
