//! Algorithm 3 — operator fusion.
//!
//! Replaces a sub-graph with a single *meta-operator* that is semantically
//! equivalent: each item entering at the sub-graph's unique front-end
//! travels one source→exit path inside it, so the meta-operator's service
//! time is the path-probability-weighted sum of the member service times
//! (Definition 2). The fused topology is then re-analyzed with Algorithm 1
//! to predict whether the fusion hampers performance.

use crate::{steady_state, SteadyStateReport};
use spinstreams_core::{
    OperatorId, OperatorSpec, Selectivity, ServiceTime, StateClass, Topology, TopologyError,
};
use std::collections::BTreeSet;
use std::fmt;

/// Why a sub-graph cannot be fused.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FusionError {
    /// The sub-graph is empty or references unknown operators.
    InvalidSubGraph {
        /// Human-readable description.
        reason: String,
    },
    /// The sub-graph does not have exactly one front-end vertex (a member
    /// with at least one input edge from outside the sub-graph).
    FrontEndCount {
        /// The front-end vertices found.
        front_ends: Vec<OperatorId>,
    },
    /// Contracting the sub-graph would create a cycle: some path leaves the
    /// sub-graph and re-enters it.
    WouldCreateCycle,
    /// The contracted topology failed validation for another reason.
    Rebuild(TopologyError),
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::InvalidSubGraph { reason } => {
                write!(f, "invalid fusion sub-graph: {reason}")
            }
            FusionError::FrontEndCount { front_ends } => write!(
                f,
                "fusion sub-graph must have exactly one front-end vertex, found {}: {:?}",
                front_ends.len(),
                front_ends
            ),
            FusionError::WouldCreateCycle => {
                write!(f, "fusing this sub-graph would create a cycle")
            }
            FusionError::Rebuild(e) => write!(f, "fused topology failed validation: {e}"),
        }
    }
}

impl std::error::Error for FusionError {}

/// The outcome of a fusion: the fused topology, its predicted steady state,
/// and the verdict the SpinStreams GUI reports to the user (§5.4).
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// The topology with the sub-graph replaced by one meta-operator.
    pub topology: Topology,
    /// Id of the meta-operator in the fused topology.
    pub fused_operator: OperatorId,
    /// Service time of the meta-operator (Definition 2 aggregate).
    pub fused_service_time: ServiceTime,
    /// Steady-state prediction for the fused topology.
    pub report: SteadyStateReport,
    /// Steady-state prediction for the original topology, for comparison.
    pub baseline: SteadyStateReport,
    /// Mapping from fused-topology operator ids to original ids
    /// (`None` for the meta-operator).
    pub origin: Vec<Option<OperatorId>>,
}

impl FusionOutcome {
    /// True if the fusion does **not** reduce the predicted topology
    /// throughput (the "fusion is feasible" verdict of Table 1).
    pub fn is_feasible(&self) -> bool {
        self.report.throughput.items_per_sec()
            >= self.baseline.throughput.items_per_sec() * (1.0 - 1e-9)
    }

    /// Predicted relative throughput change, e.g. `-0.25` for a 25%
    /// degradation (the alert of Table 2).
    pub fn throughput_change(&self) -> f64 {
        let before = self.baseline.throughput.items_per_sec();
        let after = self.report.throughput.items_per_sec();
        (after - before) / before
    }
}

/// Computes the Definition 2 aggregate service time of the sub-graph
/// `members` with front-end `front`, i.e. the paper's `fusionRate()`:
///
/// `T(v) = T_v + Σ_{(v,j) ∈ E, j ∈ members} f_v · p(v,j) · T(j)`
///
/// where `f_v` is member `v`'s selectivity rate factor (output/input,
/// §3.4). With identity selectivities this is exactly the
/// path-probability-weighted sum over all front-end→exit paths of the
/// per-path aggregate service times; with general selectivities each
/// internal hop is additionally weighted by the expected number of items
/// the upstream member forwards per item it receives — the §3.4
/// generalization of Algorithm 3 ("all the SpinStreams algorithms can be
/// easily generalized … by computing the departure rate as discussed").
/// A fused filter with output selectivity 0.5 therefore halves the cost
/// contribution of everything behind it, and a fused flatmap doubles it.
///
/// # Panics
///
/// Panics if `front` is not a member. Membership of other vertices is the
/// caller's responsibility; [`fuse`] validates the full set of constraints.
pub fn fusion_service_time(
    topo: &Topology,
    members: &BTreeSet<OperatorId>,
    front: OperatorId,
) -> ServiceTime {
    assert!(members.contains(&front), "front-end must be a member");
    let weights = visit_weights(topo, members, front);
    let total: f64 = members
        .iter()
        .map(|m| weights[m.0] * topo.operator(*m).service_time.as_secs())
        .sum();
    ServiceTime::from_secs(total)
}

/// Fuses the sub-graph `members` of `topo` into a single meta-operator and
/// predicts the outcome (Algorithm 3 plus the §3.3 constraint checks).
///
/// Constraints (§3.3): the sub-graph must have a *single front-end* vertex
/// and the contracted topology must remain acyclic. Edges from distinct
/// members to the same outside operator are merged and their probabilities
/// combined (renormalized over the meta-operator's total exit flow), as
/// described at the end of §3.3.
///
/// The meta-operator is stateful if any member is stateful, else
/// partitioned-stateful if any member is (fission of meta-operators is not
/// allowed in SpinStreams anyway), else stateless.
///
/// # Errors
///
/// Returns a [`FusionError`] if the structural constraints are violated.
pub fn fuse(topo: &Topology, members: &BTreeSet<OperatorId>) -> Result<FusionOutcome, FusionError> {
    if members.is_empty() {
        return Err(FusionError::InvalidSubGraph {
            reason: "empty member set".into(),
        });
    }
    for m in members {
        if m.0 >= topo.num_operators() {
            return Err(FusionError::InvalidSubGraph {
                reason: format!("unknown operator {m}"),
            });
        }
    }
    if members.len() == topo.num_operators() {
        return Err(FusionError::InvalidSubGraph {
            reason: "cannot fuse the entire topology".into(),
        });
    }

    // Single front-end: exactly one member with an input edge from outside.
    let mut front_ends: Vec<OperatorId> = Vec::new();
    for &m in members {
        let external_in = topo
            .in_edges(m)
            .iter()
            .any(|e| !members.contains(&topo.edge(*e).from));
        if external_in {
            front_ends.push(m);
        }
    }
    if members.contains(&topo.source()) {
        // The source has no external inputs; a sub-graph containing it can
        // never satisfy the front-end rule (and fusing away the source is
        // meaningless).
        return Err(FusionError::FrontEndCount { front_ends });
    }
    if front_ends.len() != 1 {
        return Err(FusionError::FrontEndCount { front_ends });
    }
    let front = front_ends[0];

    // Contracted-graph acyclicity: a path leaving and re-entering the
    // sub-graph becomes a cycle through the meta-vertex.
    {
        let n = topo.num_operators();
        // Map members to one contracted vertex id `n` is not needed: use
        // index n for the meta vertex.
        let meta = n;
        let mapped = |v: OperatorId| -> usize {
            if members.contains(&v) {
                meta
            } else {
                v.0
            }
        };
        let mut succ = vec![Vec::new(); n + 1];
        for e in topo.edges() {
            let (a, b) = (mapped(e.from), mapped(e.to));
            if a != b {
                succ[a].push(b);
            }
        }
        if !spinstreams_core::is_acyclic(n + 1, &succ) {
            return Err(FusionError::WouldCreateCycle);
        }
    }

    let fused_time = fusion_service_time(topo, members, front);

    // Meta-operator state class: the most restrictive among members.
    let any_stateful = members
        .iter()
        .any(|m| topo.operator(*m).state.is_stateful());
    let partitioned = members
        .iter()
        .find(|m| topo.operator(**m).state.is_partitioned());
    let state = if any_stateful {
        StateClass::Stateful
    } else if let Some(m) = partitioned {
        topo.operator(*m).state.clone()
    } else {
        StateClass::Stateless
    };

    // Exit-flow accounting for the meta-operator's output probabilities and
    // its aggregate output selectivity: for each member v, weight(v) is
    // the expected number of items reaching v per item entering the
    // sub-graph, folding in edge probabilities and member selectivity rate
    // factors (§3.4).
    let weights = visit_weights(topo, members, front);

    // Build the contracted topology. Keep non-members in their original
    // relative order; insert the meta-operator where the front-end was.
    let old_n = topo.num_operators();
    let mut new_index = vec![usize::MAX; old_n];
    let mut origin: Vec<Option<OperatorId>> = Vec::new();
    let mut specs: Vec<OperatorSpec> = Vec::new();
    #[allow(clippy::needless_range_loop)] // indices drive two parallel maps
    for v in 0..old_n {
        let id = OperatorId(v);
        if members.contains(&id) {
            if id == front {
                new_index[v] = specs.len();
                origin.push(None);
                let fused_names: Vec<&str> = members
                    .iter()
                    .map(|m| topo.operator(*m).name.as_str())
                    .collect();
                specs.push(OperatorSpec {
                    name: format!("F({})", fused_names.join("+")),
                    service_time: fused_time,
                    state: state.clone(),
                    selectivity: Selectivity::ONE,
                    kind: "meta".into(),
                    params: Default::default(),
                });
            }
        } else {
            new_index[v] = specs.len();
            origin.push(Some(id));
            specs.push(topo.operator(id).clone());
        }
    }
    let fused_idx = new_index[front.0];

    // Aggregate output selectivity of the meta-operator: expected number of
    // items leaving the sub-graph per item entering it.
    let total_exit: f64 = topo
        .edges()
        .iter()
        .filter(|e| members.contains(&e.from) && !members.contains(&e.to))
        .map(|e| {
            weights[e.from.0] * topo.operator(e.from).selectivity.rate_factor() * e.probability
        })
        .sum();
    if total_exit > 0.0 && (total_exit - 1.0).abs() > 1e-9 {
        specs[fused_idx].selectivity = Selectivity::output(total_exit);
    }

    // Edges of the fused topology: internal edges vanish; edges touching
    // members are re-pointed at the meta-operator, weighted by how much
    // exit flow they carry, and parallel edges merge by summing.
    let mut merged: Vec<(usize, usize, f64)> = Vec::new();
    for e in topo.edges() {
        let from_in = members.contains(&e.from);
        let to_in = members.contains(&e.to);
        if from_in && to_in {
            continue;
        }
        let (nf, nt, p) = if !from_in && !to_in {
            (new_index[e.from.0], new_index[e.to.0], e.probability)
        } else if !from_in {
            // external -> front-end (the only member with external inputs)
            (new_index[e.from.0], fused_idx, e.probability)
        } else {
            // member -> external: probability is this edge's share of the
            // total exit flow.
            let share =
                weights[e.from.0] * topo.operator(e.from).selectivity.rate_factor() * e.probability
                    / total_exit;
            (fused_idx, new_index[e.to.0], share)
        };
        if let Some(slot) = merged.iter_mut().find(|(a, b, _)| *a == nf && *b == nt) {
            slot.2 += p;
        } else {
            merged.push((nf, nt, p));
        }
    }

    let mut b = Topology::builder();
    for s in &specs {
        b.add_operator(s.clone());
    }
    for (f, t, p) in merged {
        b.add_edge(OperatorId(f), OperatorId(t), p.min(1.0))
            .map_err(FusionError::Rebuild)?;
    }
    let fused_topo = b.build().map_err(FusionError::Rebuild)?;

    let baseline = steady_state(topo);
    let report = steady_state(&fused_topo);

    Ok(FusionOutcome {
        topology: fused_topo,
        fused_operator: OperatorId(fused_idx),
        fused_service_time: fused_time,
        report,
        baseline,
        origin,
    })
}

/// For each member vertex, the expected number of items reaching it per
/// item entering the sub-graph at `front` (path-probability mass weighted
/// by the traversed members' selectivity rate factors, staying inside the
/// sub-graph).
fn visit_weights(topo: &Topology, members: &BTreeSet<OperatorId>, front: OperatorId) -> Vec<f64> {
    let mut w = vec![0.0f64; topo.num_operators()];
    w[front.0] = 1.0;
    // Members in topological order (global order restricted to members).
    let order = spinstreams_core::topological_order(topo);
    for id in order {
        if !members.contains(&id) || w[id.0] == 0.0 {
            continue;
        }
        let factor = topo.operator(id).selectivity.rate_factor();
        for &eid in topo.out_edges(id) {
            let e = topo.edge(eid);
            if members.contains(&e.to) {
                w[e.to.0] += w[id.0] * factor * e.probability;
            }
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_core::{Selectivity, ServiceTime};

    fn op(name: &str, ms: f64) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(ms))
    }

    /// The reconstructed Figure 11 topology with configurable member
    /// service times (ms) for operators 1..6.
    fn figure11(times: [f64; 6]) -> Topology {
        let mut b = Topology::builder();
        let ids: Vec<_> = (0..6)
            .map(|i| b.add_operator(op(&format!("{}", i + 1), times[i])))
            .collect();
        b.add_edge(ids[0], ids[1], 0.7).unwrap();
        b.add_edge(ids[0], ids[2], 0.3).unwrap();
        b.add_edge(ids[1], ids[5], 1.0).unwrap();
        b.add_edge(ids[2], ids[3], 0.5).unwrap();
        b.add_edge(ids[2], ids[4], 0.5).unwrap();
        b.add_edge(ids[4], ids[3], 0.35).unwrap();
        b.add_edge(ids[4], ids[5], 0.65).unwrap();
        b.add_edge(ids[3], ids[5], 1.0).unwrap();
        b.build().unwrap()
    }

    fn members_345() -> BTreeSet<OperatorId> {
        [OperatorId(2), OperatorId(3), OperatorId(4)]
            .into_iter()
            .collect()
    }

    #[test]
    fn table1_fused_service_time_is_2_80_ms() {
        let t = figure11([1.0, 1.2, 0.7, 2.0, 1.5, 0.2]);
        let ft = fusion_service_time(&t, &members_345(), OperatorId(2));
        assert!(
            (ft.as_millis() - 2.80).abs() < 1e-9,
            "got {} ms",
            ft.as_millis()
        );
    }

    #[test]
    fn table2_fused_service_time_is_4_42_ms() {
        let t = figure11([1.0, 1.2, 1.5, 2.7, 2.2, 0.2]);
        let ft = fusion_service_time(&t, &members_345(), OperatorId(2));
        assert!(
            (ft.as_millis() - 4.4225).abs() < 1e-9,
            "got {} ms",
            ft.as_millis()
        );
    }

    #[test]
    fn table1_fusion_is_feasible() {
        let t = figure11([1.0, 1.2, 0.7, 2.0, 1.5, 0.2]);
        let out = fuse(&t, &members_345()).unwrap();
        assert!(out.is_feasible());
        assert!((out.report.throughput.items_per_sec() - 1000.0).abs() < 1e-6);
        assert!((out.fused_service_time.as_millis() - 2.80).abs() < 1e-9);
        // ρ_F from Table 1 is 0.84: λ_F = 300/s, µ_F = 1/2.8ms ≈ 357/s.
        let rho_f = out.report.metric(out.fused_operator).utilization;
        assert!((rho_f - 0.84).abs() < 5e-3, "ρ_F = {rho_f}");
        // Topology shrank from 6 to 4 operators.
        assert_eq!(out.topology.num_operators(), 4);
    }

    #[test]
    fn table2_fusion_introduces_bottleneck() {
        let t = figure11([1.0, 1.2, 1.5, 2.7, 2.2, 0.2]);
        let out = fuse(&t, &members_345()).unwrap();
        assert!(!out.is_feasible());
        // Predicted degradation ≈ 1 - 1/(0.3·4.4225) ≈ 24.6%.
        let change = out.throughput_change();
        assert!(
            (-0.26..=-0.20).contains(&change),
            "throughput change {change}"
        );
        // Paper Table 2: predicted throughput ≈ 760 t/s (we compute 753.7,
        // matching the paper's *measured* 753 — their 760 is rounded from
        // the 4.42 ms they print).
        let thr = out.report.throughput.items_per_sec();
        assert!((thr - 753.7).abs() < 1.0, "throughput {thr}");
    }

    #[test]
    fn fused_exit_probabilities_form_distribution() {
        let t = figure11([1.0, 1.2, 0.7, 2.0, 1.5, 0.2]);
        let out = fuse(&t, &members_345()).unwrap();
        let f = out.fused_operator;
        let total: f64 = out
            .topology
            .out_edges(f)
            .iter()
            .map(|e| out.topology.edge(*e).probability)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
        // All exit flow of {3,4,5} goes to operator 6, so F has one output
        // edge with probability 1.
        assert_eq!(out.topology.out_edges(f).len(), 1);
    }

    #[test]
    fn multiple_front_ends_rejected() {
        let t = figure11([1.0; 6]);
        // {2, 3}: op2 receives from 1 (external) and op3 receives from 1
        // (external) -> two front-ends. (0-based ids 1 and 2.)
        let members: BTreeSet<_> = [OperatorId(1), OperatorId(2)].into_iter().collect();
        match fuse(&t, &members).unwrap_err() {
            FusionError::FrontEndCount { front_ends } => {
                assert_eq!(front_ends.len(), 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn leaving_and_reentering_subgraph_rejected() {
        // src -> a -> {b, c}, b -> c. Fusing {a, c} would contract to
        // meta -> b -> meta — a cycle. The single-front-end rule already
        // rejects it (c has the external input from b), and in fact any
        // would-be contraction cycle in an acyclic rooted topology implies a
        // second front end, so the dedicated cycle check is pure defense.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let a = b.add_operator(op("a", 1.0));
        let x = b.add_operator(op("b", 1.0));
        let c = b.add_operator(op("c", 1.0));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, x, 0.5).unwrap();
        b.add_edge(a, c, 0.5).unwrap();
        b.add_edge(x, c, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [a, c].into_iter().collect();
        match fuse(&t, &members).unwrap_err() {
            FusionError::FrontEndCount { front_ends } => {
                assert_eq!(front_ends, vec![a, c]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn subgraph_containing_source_rejected() {
        let t = figure11([1.0; 6]);
        let members: BTreeSet<_> = [OperatorId(0), OperatorId(1)].into_iter().collect();
        assert!(matches!(
            fuse(&t, &members).unwrap_err(),
            FusionError::FrontEndCount { .. }
        ));
    }

    #[test]
    fn empty_and_unknown_member_sets_rejected() {
        let t = figure11([1.0; 6]);
        assert!(matches!(
            fuse(&t, &BTreeSet::new()).unwrap_err(),
            FusionError::InvalidSubGraph { .. }
        ));
        let members: BTreeSet<_> = [OperatorId(99)].into_iter().collect();
        assert!(matches!(
            fuse(&t, &members).unwrap_err(),
            FusionError::InvalidSubGraph { .. }
        ));
    }

    #[test]
    fn whole_topology_fusion_rejected() {
        let t = figure11([1.0; 6]);
        let members: BTreeSet<_> = t.operator_ids().collect();
        assert!(matches!(
            fuse(&t, &members).unwrap_err(),
            FusionError::InvalidSubGraph { .. }
        ));
    }

    #[test]
    fn single_member_fusion_is_identity_like() {
        let t = figure11([1.0, 1.2, 0.7, 2.0, 1.5, 0.2]);
        let members: BTreeSet<_> = [OperatorId(3)].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!((out.fused_service_time.as_millis() - 2.0).abs() < 1e-12);
        assert_eq!(out.topology.num_operators(), 6);
        assert!(out.is_feasible());
    }

    #[test]
    fn fusing_chain_sums_service_times() {
        // src -> a -> b -> c (1, 2, 3 ms): fusing {a,b,c} gives 6 ms.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 10.0));
        let a = b.add_operator(op("a", 1.0));
        let x = b.add_operator(op("b", 2.0));
        let c = b.add_operator(op("c", 3.0));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, x, 1.0).unwrap();
        b.add_edge(x, c, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [a, x, c].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!((out.fused_service_time.as_millis() - 6.0).abs() < 1e-12);
        assert!(out.is_feasible(), "6 ms < the 10 ms source period");
        assert_eq!(out.topology.num_operators(), 2);
        // Meta-operator is a sink here.
        assert_eq!(out.topology.sinks(), vec![out.fused_operator]);
    }

    #[test]
    fn stateful_member_makes_meta_stateful() {
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 1.0));
        let a = b.add_operator(op("a", 0.1));
        let st = b.add_operator(OperatorSpec::stateful("st", ServiceTime::from_millis(0.1)));
        b.add_edge(s, a, 1.0).unwrap();
        b.add_edge(a, st, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [a, st].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!(out
            .topology
            .operator(out.fused_operator)
            .state
            .is_stateful());
    }

    #[test]
    fn fused_filter_attenuates_downstream_member_cost() {
        // src -> filter(sel 0.5, 1 ms) -> map (4 ms) -> sink.
        // Fusing {filter, map}: only half the items reach the map, so
        // T(F) = 1 + 0.5*4 = 3 ms, and F's output selectivity is 0.5.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 10.0));
        let f = b.add_operator(op("filter", 1.0).with_selectivity(Selectivity::output(0.5)));
        let m = b.add_operator(op("map", 4.0));
        let k = b.add_operator(op("sink", 0.1));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [f, m].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!((out.fused_service_time.as_millis() - 3.0).abs() < 1e-12);
        let meta = out.topology.operator(out.fused_operator);
        assert!((meta.selectivity.rate_factor() - 0.5).abs() < 1e-12);
        // Downstream arrival halves: sink sees 50/s when src runs at 100/s.
        let sink_arrival = out
            .report
            .metric(out.topology.operator_by_name("sink").unwrap())
            .arrival;
        assert!(
            (sink_arrival - 50.0).abs() < 1e-9,
            "sink lambda = {sink_arrival}"
        );
    }

    #[test]
    fn fused_flatmap_amplifies_downstream_member_cost() {
        // src -> flatmap(x3, 1 ms) -> map (2 ms): T(F) = 1 + 3*2 = 7 ms.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 10.0));
        let fm = b.add_operator(op("flat", 1.0).with_selectivity(Selectivity::output(3.0)));
        let m = b.add_operator(op("map", 2.0));
        b.add_edge(s, fm, 1.0).unwrap();
        b.add_edge(fm, m, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [fm, m].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!((out.fused_service_time.as_millis() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fused_window_divides_downstream_member_cost() {
        // src -> window(slide 10, 1 ms) -> post (5 ms):
        // T(F) = 1 + 0.1*5 = 1.5 ms and F emits one item per 10 inputs.
        let mut b = Topology::builder();
        let s = b.add_operator(op("src", 10.0));
        let w = b.add_operator(op("win", 1.0).with_selectivity(Selectivity::input(10.0)));
        let m = b.add_operator(op("post", 5.0));
        let k = b.add_operator(op("sink", 0.1));
        b.add_edge(s, w, 1.0).unwrap();
        b.add_edge(w, m, 1.0).unwrap();
        b.add_edge(m, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let members: BTreeSet<_> = [w, m].into_iter().collect();
        let out = fuse(&t, &members).unwrap();
        assert!((out.fused_service_time.as_millis() - 1.5).abs() < 1e-12);
        let meta = out.topology.operator(out.fused_operator);
        assert!((meta.selectivity.rate_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn origin_mapping_tracks_unfused_operators() {
        let t = figure11([1.0, 1.2, 0.7, 2.0, 1.5, 0.2]);
        let out = fuse(&t, &members_345()).unwrap();
        // Fused topo: [op1, op2, F, op6]
        assert_eq!(out.origin.len(), 4);
        assert_eq!(out.origin[0], Some(OperatorId(0)));
        assert_eq!(out.origin[1], Some(OperatorId(1)));
        assert_eq!(out.origin[2], None);
        assert_eq!(out.origin[3], Some(OperatorId(5)));
    }
}
