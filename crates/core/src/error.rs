//! Error type for topology construction and validation.

use std::fmt;

/// Errors produced while building or validating a [`Topology`].
///
/// SpinStreams only analyzes *rooted acyclic flow graphs* (§3.1): a single
/// source, no cycles, every vertex reachable from the source, and output-edge
/// probabilities that form a distribution. Violations of those structural
/// assumptions are reported through this type.
///
/// [`Topology`]: crate::Topology
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The topology has no operators at all.
    Empty,
    /// An operator id referenced by an edge does not exist.
    UnknownOperator {
        /// The out-of-range vertex index.
        index: usize,
    },
    /// An edge connects an operator to itself.
    SelfLoop {
        /// The vertex with the self loop.
        index: usize,
    },
    /// The same ordered pair of operators is connected twice.
    DuplicateEdge {
        /// Edge origin.
        from: usize,
        /// Edge destination.
        to: usize,
    },
    /// An edge probability is outside the half-open interval `(0, 1]`.
    InvalidProbability {
        /// Edge origin.
        from: usize,
        /// Edge destination.
        to: usize,
        /// The offending probability.
        probability: f64,
    },
    /// The graph contains a directed cycle.
    Cyclic,
    /// The graph has no source (a vertex without input edges) or more than
    /// one. SpinStreams requires exactly one; multi-source applications must
    /// first be rewritten with a fictitious source (see
    /// `spinstreams-analysis`).
    SourceCount {
        /// The vertices that have no input edges.
        sources: Vec<usize>,
    },
    /// Some vertex is not reachable from the source, so the graph is not a
    /// flow graph.
    Unreachable {
        /// The unreachable vertices.
        vertices: Vec<usize>,
    },
    /// The probabilities on the output edges of an operator do not sum to 1.
    ProbabilitySum {
        /// The operator whose output distribution is invalid.
        index: usize,
        /// The actual sum of its output-edge probabilities.
        sum: f64,
    },
    /// An operator parameter is invalid (e.g. non-positive selectivity).
    InvalidOperator {
        /// The operator index.
        index: usize,
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology has no operators"),
            TopologyError::UnknownOperator { index } => {
                write!(f, "edge references unknown operator index {index}")
            }
            TopologyError::SelfLoop { index } => {
                write!(f, "operator {index} has a self-loop edge")
            }
            TopologyError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge from operator {from} to operator {to}")
            }
            TopologyError::InvalidProbability {
                from,
                to,
                probability,
            } => write!(
                f,
                "edge ({from} -> {to}) has probability {probability} outside (0, 1]"
            ),
            TopologyError::Cyclic => write!(f, "topology contains a directed cycle"),
            TopologyError::SourceCount { sources } if sources.is_empty() => {
                write!(f, "topology has no source vertex (every vertex has inputs)")
            }
            TopologyError::SourceCount { sources } => write!(
                f,
                "topology must have exactly one source, found {}: {:?}",
                sources.len(),
                sources
            ),
            TopologyError::Unreachable { vertices } => write!(
                f,
                "vertices not reachable from the source: {vertices:?} (not a flow graph)"
            ),
            TopologyError::ProbabilitySum { index, sum } => write!(
                f,
                "output-edge probabilities of operator {index} sum to {sum}, expected 1"
            ),
            TopologyError::InvalidOperator { index, reason } => {
                write!(f, "operator {index} is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(TopologyError, &str)> = vec![
            (TopologyError::Empty, "no operators"),
            (TopologyError::UnknownOperator { index: 7 }, "7"),
            (TopologyError::SelfLoop { index: 3 }, "self-loop"),
            (TopologyError::DuplicateEdge { from: 1, to: 2 }, "duplicate"),
            (
                TopologyError::InvalidProbability {
                    from: 0,
                    to: 1,
                    probability: 1.5,
                },
                "1.5",
            ),
            (TopologyError::Cyclic, "cycle"),
            (
                TopologyError::SourceCount {
                    sources: vec![0, 4],
                },
                "exactly one source",
            ),
            (TopologyError::SourceCount { sources: vec![] }, "no source"),
            (
                TopologyError::Unreachable { vertices: vec![5] },
                "reachable",
            ),
            (TopologyError::ProbabilitySum { index: 2, sum: 0.8 }, "0.8"),
            (
                TopologyError::InvalidOperator {
                    index: 1,
                    reason: "bad selectivity".into(),
                },
                "bad selectivity",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TopologyError::Cyclic);
    }
}
