//! Topological ordering and acyclicity checks.
//!
//! The steady-state analysis (§3.1) visits vertices in a topological order so
//! that every predecessor's departure rate is known when a vertex is
//! examined. These helpers operate both on raw adjacency lists (used during
//! validation, before a [`Topology`] exists) and on validated topologies.
//!
//! [`Topology`]: crate::Topology

use crate::{OperatorId, Topology};

/// Returns true if the directed graph given as successor lists is acyclic.
///
/// Standard three-color depth-first search; `n` is the number of vertices
/// and `succ[v]` lists the successors of `v`.
///
/// # Panics
///
/// Panics if any successor index is `>= n`.
pub fn is_acyclic(n: usize, succ: &[Vec<usize>]) -> bool {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    // Iterative DFS with an explicit stack of (vertex, next-child-index).
    for root in 0..n {
        if color[root] != Color::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        color[root] = Color::Gray;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < succ[v].len() {
                let w = succ[v][*next];
                *next += 1;
                match color[w] {
                    Color::Gray => return false,
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    true
}

/// Computes a topological ordering of a validated [`Topology`], starting at
/// the source.
///
/// The ordering is produced by a depth-first search (reverse postorder), as
/// prescribed in §3.1. Since a validated topology is acyclic and rooted,
/// the ordering always exists and includes every operator, with the source
/// first.
pub fn topological_order(topo: &Topology) -> Vec<OperatorId> {
    let n = topo.num_operators();
    let mut visited = vec![false; n];
    let mut postorder: Vec<usize> = Vec::with_capacity(n);
    // Iterative DFS from the source; validated topologies are rooted, so one
    // root suffices.
    let mut stack: Vec<(usize, usize)> = vec![(topo.source().0, 0)];
    visited[topo.source().0] = true;
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        let succs = topo.successors(OperatorId(v));
        if *next < succs.len() {
            let w = succs[*next].0;
            *next += 1;
            if !visited[w] {
                visited[w] = true;
                stack.push((w, 0));
            }
        } else {
            postorder.push(v);
            stack.pop();
        }
    }
    postorder.reverse();
    debug_assert_eq!(postorder.len(), n, "rooted topology covers all vertices");
    postorder.into_iter().map(OperatorId).collect()
}

/// Verifies that `order` is a topological ordering of `topo`: it contains
/// every operator exactly once and every edge goes forward in the order.
pub fn is_topological_order(topo: &Topology, order: &[OperatorId]) -> bool {
    let n = topo.num_operators();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, id) in order.iter().enumerate() {
        if id.0 >= n || pos[id.0] != usize::MAX {
            return false;
        }
        pos[id.0] = i;
    }
    topo.edges().iter().all(|e| pos[e.from.0] < pos[e.to.0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OperatorSpec, ServiceTime, Topology};

    fn op(name: &str) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(1.0))
    }

    fn chain(len: usize) -> Topology {
        let mut b = Topology::builder();
        let ids: Vec<_> = (0..len)
            .map(|i| b.add_operator(op(&format!("op{i}"))))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], 1.0).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn acyclic_detection() {
        // 0 -> 1 -> 2
        assert!(is_acyclic(3, &[vec![1], vec![2], vec![]]));
        // 0 -> 1 -> 2 -> 0
        assert!(!is_acyclic(3, &[vec![1], vec![2], vec![0]]));
        // self loop
        assert!(!is_acyclic(1, &[vec![0]]));
        // disconnected acyclic
        assert!(is_acyclic(4, &[vec![1], vec![], vec![3], vec![]]));
        // cycle in a non-root component
        assert!(!is_acyclic(4, &[vec![1], vec![], vec![3], vec![2]]));
        // empty graph
        assert!(is_acyclic(0, &[]));
    }

    #[test]
    fn deep_graph_does_not_overflow_stack() {
        let n = 200_000;
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|v| if v + 1 < n { vec![v + 1] } else { vec![] })
            .collect();
        assert!(is_acyclic(n, &succ));
    }

    #[test]
    fn chain_order_is_identity() {
        let t = chain(5);
        let order = topological_order(&t);
        assert_eq!(order, (0..5).map(OperatorId).collect::<Vec<_>>());
        assert!(is_topological_order(&t, &order));
    }

    #[test]
    fn diamond_order_is_topological() {
        let mut b = Topology::builder();
        let s = b.add_operator(op("s"));
        let l = b.add_operator(op("l"));
        let r = b.add_operator(op("r"));
        let k = b.add_operator(op("k"));
        b.add_edge(s, l, 0.5).unwrap();
        b.add_edge(s, r, 0.5).unwrap();
        b.add_edge(l, k, 1.0).unwrap();
        b.add_edge(r, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let order = topological_order(&t);
        assert_eq!(order[0], s);
        assert_eq!(order[3], k);
        assert!(is_topological_order(&t, &order));
    }

    #[test]
    fn order_starts_at_source() {
        let t = chain(10);
        assert_eq!(topological_order(&t)[0], t.source());
    }

    #[test]
    fn is_topological_order_rejects_bad_orders() {
        let t = chain(3);
        let ids: Vec<_> = (0..3).map(OperatorId).collect();
        // reversed
        assert!(!is_topological_order(&t, &[ids[2], ids[1], ids[0]]));
        // wrong length
        assert!(!is_topological_order(&t, &[ids[0], ids[1]]));
        // duplicates
        assert!(!is_topological_order(&t, &[ids[0], ids[0], ids[1]]));
        // out of range
        assert!(!is_topological_order(&t, &[ids[0], ids[1], OperatorId(7)]));
    }
}
