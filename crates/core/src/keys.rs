//! Key-frequency distributions for partitioned-stateful operators.

/// The frequency distribution of partitioning keys of a partitioned-stateful
/// operator (§3.2).
///
/// Entry `k` holds the probability `p_k` that an incoming item carries key
/// `k`. The distribution is normalized at construction. The bottleneck
/// elimination algorithm uses it to decide how many replicas a
/// partitioned-stateful operator can effectively use: with a skewed
/// distribution the most loaded replica bounds the achievable speedup.
///
/// # Example
///
/// ```
/// use spinstreams_core::KeyDistribution;
/// let d = KeyDistribution::new(vec![3.0, 1.0]).unwrap();
/// assert_eq!(d.frequency(0), 0.75);
/// assert_eq!(d.num_keys(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KeyDistribution {
    freqs: Vec<f64>,
}

impl KeyDistribution {
    /// Creates a distribution from non-negative weights, normalizing them to
    /// sum to one.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: Vec<f64>) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return None;
        }
        // Already-normalized input passes through bit-exactly (so
        // serialization round-trips are lossless); anything else is scaled.
        if (total - 1.0).abs() < 1e-12 {
            return Some(KeyDistribution { freqs: weights });
        }
        Some(KeyDistribution {
            freqs: weights.into_iter().map(|w| w / total).collect(),
        })
    }

    /// A uniform distribution over `num_keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys` is zero.
    pub fn uniform(num_keys: usize) -> Self {
        assert!(num_keys > 0, "a key distribution needs at least one key");
        KeyDistribution {
            freqs: vec![1.0 / num_keys as f64; num_keys],
        }
    }

    /// A Zipf-like power-law distribution over `num_keys` keys with scaling
    /// exponent `alpha > 0`: `p_k ∝ (k+1)^-alpha`.
    ///
    /// The paper's testbed generates key frequencies "by a random ZipF law";
    /// larger `alpha` means more skew.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys` is zero or `alpha` is not finite and positive.
    pub fn zipf(num_keys: usize, alpha: f64) -> Self {
        assert!(num_keys > 0, "a key distribution needs at least one key");
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "zipf exponent must be positive, got {alpha}"
        );
        let weights: Vec<f64> = (1..=num_keys).map(|k| (k as f64).powf(-alpha)).collect();
        KeyDistribution::new(weights).expect("zipf weights are positive")
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.freqs.len()
    }

    /// Probability of key `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn frequency(&self, k: usize) -> f64 {
        self.freqs[k]
    }

    /// All key probabilities, in key order.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The largest single-key probability.
    ///
    /// This lower-bounds the fraction of traffic the most loaded replica
    /// must absorb, regardless of how keys are assigned to replicas.
    pub fn max_frequency(&self) -> f64 {
        self.freqs.iter().cloned().fold(0.0, f64::max)
    }

    /// Samples a key index given a uniform draw `u ∈ [0, 1)` (inverse CDF).
    ///
    /// Deterministic given `u`, which keeps workload generation reproducible.
    pub fn sample(&self, u: f64) -> usize {
        let mut acc = 0.0;
        for (k, p) in self.freqs.iter().enumerate() {
            acc += p;
            if u < acc {
                return k;
            }
        }
        self.freqs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_weights() {
        let d = KeyDistribution::new(vec![1.0, 1.0, 2.0]).unwrap();
        assert!((d.frequency(2) - 0.5).abs() < 1e-12);
        assert!((d.frequencies().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(KeyDistribution::new(vec![]).is_none());
        assert!(KeyDistribution::new(vec![0.0, 0.0]).is_none());
        assert!(KeyDistribution::new(vec![1.0, -0.5]).is_none());
        assert!(KeyDistribution::new(vec![f64::NAN]).is_none());
        assert!(KeyDistribution::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn uniform_is_flat() {
        let d = KeyDistribution::uniform(4);
        for k in 0..4 {
            assert!((d.frequency(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(d.max_frequency(), 0.25);
    }

    #[test]
    fn zipf_is_skewed_and_monotone() {
        let d = KeyDistribution::zipf(10, 1.5);
        for k in 1..10 {
            assert!(d.frequency(k - 1) > d.frequency(k));
        }
        assert!(d.max_frequency() > 0.1);
        assert!((d.frequencies().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn higher_alpha_means_more_skew() {
        let mild = KeyDistribution::zipf(50, 1.01);
        let harsh = KeyDistribution::zipf(50, 3.0);
        assert!(harsh.max_frequency() > mild.max_frequency());
    }

    #[test]
    fn sample_inverse_cdf() {
        let d = KeyDistribution::new(vec![0.5, 0.25, 0.25]).unwrap();
        assert_eq!(d.sample(0.0), 0);
        assert_eq!(d.sample(0.49), 0);
        assert_eq!(d.sample(0.5), 1);
        assert_eq!(d.sample(0.74), 1);
        assert_eq!(d.sample(0.75), 2);
        assert_eq!(d.sample(0.999), 2);
    }

    #[test]
    fn sample_clamps_to_last_key() {
        let d = KeyDistribution::uniform(3);
        assert_eq!(d.sample(1.0), 2);
    }
}
