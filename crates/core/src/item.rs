//! The item (tuple) data model shared by the runtime and operator library.

/// Number of numeric attributes carried by every [`Tuple`].
///
/// The evaluation operators (§5.1) work on "tuples representing records of
/// attributes". A small fixed arity keeps tuples `Copy`, which lets the
/// runtime move them through mailboxes without allocation.
pub const TUPLE_ARITY: usize = 4;

/// A stream item: a record of [`TUPLE_ARITY`] numeric attributes plus a
/// partitioning key and a sequence number.
///
/// * `key` — partitioning key used by partitioned-stateful operators and by
///   the emitter of a replicated operator (hash routing).
/// * `seq` — monotone sequence number assigned by the source; used by tests
///   to check semantic equivalence of fused vs unfused sub-graphs.
/// * `src_ns` — source emission timestamp in nanoseconds since run start
///   (`0` = unstamped). Stamped by the executors when an item leaves its
///   source and read back at the sinks to measure per-tuple end-to-end
///   latency; operators that forward (copies of) their input preserve it.
/// * `values` — numeric payload consumed by the real-world operators
///   (filters, aggregates, skyline, joins, …).
///
/// # Example
///
/// ```
/// use spinstreams_core::Tuple;
/// let t = Tuple::new(42, 7, [1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(t.key, 42);
/// assert_eq!(t.values[1], 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuple {
    /// Partitioning key.
    pub key: u64,
    /// Monotone sequence number assigned by the source.
    pub seq: u64,
    /// Source emission timestamp in nanoseconds since run start
    /// (`0` = unstamped).
    pub src_ns: u64,
    /// Numeric attributes.
    pub values: [f64; TUPLE_ARITY],
}

impl Tuple {
    /// Creates a tuple from its parts (unstamped; see [`Tuple::stamped`]).
    pub fn new(key: u64, seq: u64, values: [f64; TUPLE_ARITY]) -> Self {
        Tuple {
            key,
            seq,
            src_ns: 0,
            values,
        }
    }

    /// Creates a tuple with all attributes set to `v`.
    pub fn splat(key: u64, seq: u64, v: f64) -> Self {
        Tuple {
            key,
            seq,
            src_ns: 0,
            values: [v; TUPLE_ARITY],
        }
    }

    /// Returns a copy of this tuple stamped with a source emission
    /// timestamp. `0` means "unstamped", so the executors clamp the stamp
    /// to at least 1 ns.
    pub fn stamped(mut self, src_ns: u64) -> Self {
        self.src_ns = src_ns.max(1);
        self
    }

    /// End-to-end latency of this tuple relative to `now_ns`, or `None`
    /// if the tuple was never stamped at a source.
    pub fn latency_ns(&self, now_ns: u64) -> Option<u64> {
        if self.src_ns == 0 {
            None
        } else {
            Some(now_ns.saturating_sub(self.src_ns))
        }
    }

    /// Returns a copy of this tuple with `values[idx]` replaced by `v`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= TUPLE_ARITY`.
    pub fn with_value(mut self, idx: usize, v: f64) -> Self {
        self.values[idx] = v;
        self
    }

    /// Sum of all attributes.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }
}

impl Default for Tuple {
    fn default() -> Self {
        Tuple::splat(0, 0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let t = Tuple::new(1, 2, [0.5, 1.5, 2.5, 3.5]);
        assert_eq!(t.sum(), 8.0);
        let s = Tuple::splat(9, 0, 2.0);
        assert_eq!(s.values, [2.0; TUPLE_ARITY]);
        assert_eq!(s.sum(), 8.0);
    }

    #[test]
    fn with_value_replaces_one_attribute() {
        let t = Tuple::splat(0, 0, 1.0).with_value(2, 9.0);
        assert_eq!(t.values, [1.0, 1.0, 9.0, 1.0]);
    }

    #[test]
    fn tuple_is_copy() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Tuple>();
    }

    #[test]
    fn default_is_zero() {
        let t = Tuple::default();
        assert_eq!(t.key, 0);
        assert_eq!(t.seq, 0);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn stamping_and_latency() {
        let t = Tuple::splat(1, 2, 3.0);
        assert_eq!(t.src_ns, 0);
        assert_eq!(t.latency_ns(100), None);
        let s = t.stamped(40);
        assert_eq!(s.src_ns, 40);
        assert_eq!(s.latency_ns(100), Some(60));
        // A zero stamp is clamped to 1 so "stamped" stays distinguishable
        // from "unstamped".
        assert_eq!(t.stamped(0).src_ns, 1);
        // Latency never underflows if clocks disagree.
        assert_eq!(s.latency_ns(10), Some(0));
    }

    #[test]
    fn copy_roundtrip() {
        // Tuples are Copy (the runtime relies on it to move them through
        // mailboxes without allocation); a copy is bit-identical.
        let t = Tuple::new(3, 4, [1.0, 2.0, 3.0, 4.0]);
        let back = t;
        assert_eq!(t, back);
        assert_eq!(back.values, [1.0, 2.0, 3.0, 4.0]);
    }
}
