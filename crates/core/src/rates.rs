//! Newtypes for service times and service rates.
//!
//! The paper characterizes each operator by its *service rate* `µ` — the
//! average number of input items the operator can serve per time unit when
//! never starved — or equivalently by its *service time* `T = µ⁻¹`. The two
//! newtypes here keep the unit algebra honest: a [`ServiceTime`] is seconds
//! per item, a [`ServiceRate`] is items per second, and conversions between
//! them are explicit.

use std::fmt;
use std::ops::{Add, Div, Mul};
use std::time::Duration;

/// Average time an operator spends processing one input item, in seconds.
///
/// This is the reciprocal of the operator's [`ServiceRate`] and is the
/// quantity profiled from a running application (computation time plus the
/// communication latency to deliver the result, per §3.1).
///
/// # Example
///
/// ```
/// use spinstreams_core::ServiceTime;
/// let t = ServiceTime::from_millis(2.0);
/// assert_eq!(t.as_secs(), 0.002);
/// assert_eq!(t.rate().items_per_sec(), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ServiceTime(f64);

impl ServiceTime {
    /// A zero service time (used for idealized, infinitely fast operators).
    pub const ZERO: ServiceTime = ServiceTime(0.0);

    /// Creates a service time from seconds per item.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN or infinite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "service time must be finite and non-negative, got {secs}"
        );
        ServiceTime(secs)
    }

    /// Creates a service time from milliseconds per item.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Creates a service time from microseconds per item.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// Creates a service time from a [`Duration`].
    pub fn from_duration(d: Duration) -> Self {
        ServiceTime(d.as_secs_f64())
    }

    /// Returns the service time in seconds per item.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the service time in milliseconds per item.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the service time in microseconds per item.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the service time as a [`Duration`] (saturating at zero).
    pub fn to_duration(self) -> Duration {
        Duration::from_secs_f64(self.0.max(0.0))
    }

    /// Returns the corresponding service rate `µ = 1/T`.
    ///
    /// A zero service time maps to an infinite rate.
    pub fn rate(self) -> ServiceRate {
        if self.0 == 0.0 {
            ServiceRate(f64::INFINITY)
        } else {
            ServiceRate(1.0 / self.0)
        }
    }

    /// Returns true if this service time is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for ServiceTime {
    type Output = ServiceTime;
    fn add(self, rhs: ServiceTime) -> ServiceTime {
        ServiceTime(self.0 + rhs.0)
    }
}

impl Mul<f64> for ServiceTime {
    type Output = ServiceTime;
    fn mul(self, rhs: f64) -> ServiceTime {
        ServiceTime::from_secs(self.0 * rhs)
    }
}

impl fmt::Display for ServiceTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3} s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3} ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3} µs", self.0 * 1e6)
        }
    }
}

/// Average number of items an operator can serve per second (`µ` in §3.1).
///
/// Also used for arrival rates (`λ`) and departure rates (`δ`), which share
/// the same unit.
///
/// # Example
///
/// ```
/// use spinstreams_core::ServiceRate;
/// let mu = ServiceRate::per_sec(1000.0);
/// assert_eq!(mu.service_time().as_millis(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct ServiceRate(f64);

impl ServiceRate {
    /// A zero rate.
    pub const ZERO: ServiceRate = ServiceRate(0.0);

    /// Creates a rate from items per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or NaN (infinite is allowed and denotes
    /// an idealized infinitely fast operator).
    pub fn per_sec(rate: f64) -> Self {
        assert!(
            !rate.is_nan() && rate >= 0.0,
            "service rate must be non-negative, got {rate}"
        );
        ServiceRate(rate)
    }

    /// Returns the rate in items per second.
    pub fn items_per_sec(self) -> f64 {
        self.0
    }

    /// Returns the corresponding service time `T = 1/µ`.
    ///
    /// An infinite rate maps to a zero service time.
    pub fn service_time(self) -> ServiceTime {
        if self.0.is_infinite() {
            ServiceTime::ZERO
        } else {
            ServiceTime::from_secs(1.0 / self.0)
        }
    }

    /// Returns true if this rate is finite.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Mul<f64> for ServiceRate {
    type Output = ServiceRate;
    fn mul(self, rhs: f64) -> ServiceRate {
        ServiceRate::per_sec(self.0 * rhs)
    }
}

impl Div<f64> for ServiceRate {
    type Output = ServiceRate;
    fn div(self, rhs: f64) -> ServiceRate {
        ServiceRate::per_sec(self.0 / rhs)
    }
}

impl Add for ServiceRate {
    type Output = ServiceRate;
    fn add(self, rhs: ServiceRate) -> ServiceRate {
        ServiceRate(self.0 + rhs.0)
    }
}

impl fmt::Display for ServiceRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} items/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_rate_roundtrip() {
        let t = ServiceTime::from_millis(2.5);
        let r = t.rate();
        assert!((r.items_per_sec() - 400.0).abs() < 1e-9);
        assert!((r.service_time().as_secs() - t.as_secs()).abs() < 1e-15);
    }

    #[test]
    fn zero_time_is_infinite_rate() {
        assert!(ServiceTime::ZERO.rate().items_per_sec().is_infinite());
        assert!(ServiceRate::per_sec(f64::INFINITY).service_time().is_zero());
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(
            ServiceTime::from_micros(1500.0).as_secs(),
            ServiceTime::from_millis(1.5).as_secs()
        );
        assert_eq!(
            ServiceTime::from_duration(Duration::from_millis(3)).as_millis(),
            3.0
        );
    }

    #[test]
    fn arithmetic() {
        let a = ServiceTime::from_millis(1.0) + ServiceTime::from_millis(2.0);
        assert!((a.as_millis() - 3.0).abs() < 1e-12);
        let r = ServiceRate::per_sec(100.0) * 2.0 + ServiceRate::per_sec(50.0);
        assert!((r.items_per_sec() - 250.0).abs() < 1e-12);
        let half = ServiceRate::per_sec(100.0) / 2.0;
        assert!((half.items_per_sec() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_panics() {
        ServiceTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_panics() {
        ServiceRate::per_sec(-1.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", ServiceTime::from_secs(1.5)), "1.500 s");
        assert_eq!(format!("{}", ServiceTime::from_millis(2.0)), "2.000 ms");
        assert_eq!(format!("{}", ServiceTime::from_micros(70.0)), "70.000 µs");
    }

    #[test]
    fn duration_roundtrip() {
        let t = ServiceTime::from_millis(5.0);
        assert_eq!(t.to_duration(), Duration::from_millis(5));
    }
}
