//! Source-to-vertex path enumeration and linear flow coefficients.
//!
//! Theorem 3.2 expresses the arrival rate at a bottleneck as
//! `λᵢ = δ₁ · Σ_{π ∈ P(i)} Π_{(u,v) ∈ π} p(u,v)` — a sum over all paths from
//! the source. Explicit path enumeration ([`enumerate_paths`]) is exponential
//! in the worst case but fine for the tens-of-operators topologies the paper
//! targets; [`arrival_coefficients`] computes the same quantity for *every*
//! vertex in linear time by dynamic programming over a topological order,
//! additionally folding in operator selectivities (§3.4).

use crate::{topological_order, OperatorId, Topology};

/// A simple path from the source to some vertex, with its probability.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The vertices traversed, starting at the path's origin.
    pub vertices: Vec<OperatorId>,
    /// Product of the probabilities of the traversed edges.
    pub probability: f64,
}

impl Path {
    /// Number of edges in the path.
    pub fn len(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// Returns true if the path has no edges.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() <= 1
    }
}

/// Enumerates every path from `from` to `to` in the topology, with its
/// probability.
///
/// If `from == to` the single empty path (probability 1) is returned. The
/// graph is acyclic so enumeration terminates; worst-case cost is
/// exponential in `|V|`, acceptable for the small graphs SpinStreams
/// targets (§3.3 makes the same argument for `fusionRate`).
pub fn enumerate_paths(topo: &Topology, from: OperatorId, to: OperatorId) -> Vec<Path> {
    let mut out = Vec::new();
    let mut current = vec![from];
    let mut prob = vec![1.0f64];
    // DFS with explicit stacks: `frame` holds (vertex, next-successor-idx).
    fn dfs(
        topo: &Topology,
        v: OperatorId,
        to: OperatorId,
        current: &mut Vec<OperatorId>,
        prob: &mut Vec<f64>,
        out: &mut Vec<Path>,
    ) {
        if v == to {
            out.push(Path {
                vertices: current.clone(),
                probability: *prob.last().expect("prob stack nonempty"),
            });
            return;
        }
        for &eid in topo.out_edges(v) {
            let e = topo.edge(eid);
            current.push(e.to);
            prob.push(prob.last().unwrap() * e.probability);
            dfs(topo, e.to, to, current, prob, out);
            current.pop();
            prob.pop();
        }
    }
    dfs(topo, from, to, &mut current, &mut prob, &mut out);
    out
}

/// Linear-time computation, for every vertex, of the coefficient `cᵥ` such
/// that at steady state *with no bottlenecks* the arrival rate at `v` is
/// `λᵥ = δ₁ · cᵥ`.
///
/// The coefficient folds in both edge probabilities and the selectivity
/// rate factors of intermediate operators: a non-bottleneck operator departs
/// at `δ = λ · (output_selectivity / input_selectivity)`. For the source the
/// entry is `0` (a source has no arrivals).
///
/// With identity selectivities everywhere, `cᵥ` equals the path-probability
/// sum of Theorem 3.2, and the sum of sink *departure* coefficients equals 1
/// (Proposition 3.5).
pub fn arrival_coefficients(topo: &Topology) -> Vec<f64> {
    let order = topological_order(topo);
    let n = topo.num_operators();
    let mut arrival = vec![0.0f64; n];
    let mut departure = vec![0.0f64; n];
    for &id in &order {
        let d = if id == topo.source() {
            // The source's departure *is* δ₁: coefficient 1 by definition.
            1.0
        } else {
            arrival[id.0] * topo.operator(id).selectivity.rate_factor()
        };
        departure[id.0] = d;
        for &eid in topo.out_edges(id) {
            let e = topo.edge(eid);
            arrival[e.to.0] += d * e.probability;
        }
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OperatorSpec, Selectivity, ServiceTime, Topology};

    fn op(name: &str) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(1.0))
    }

    /// `0 -> {1 (0.3), 2 (0.7)}; 1 -> 3; 2 -> 3; 3 -> 4`
    fn diamond_chain() -> Topology {
        let mut b = Topology::builder();
        let s = b.add_operator(op("s"));
        let l = b.add_operator(op("l"));
        let r = b.add_operator(op("r"));
        let j = b.add_operator(op("j"));
        let k = b.add_operator(op("k"));
        b.add_edge(s, l, 0.3).unwrap();
        b.add_edge(s, r, 0.7).unwrap();
        b.add_edge(l, j, 1.0).unwrap();
        b.add_edge(r, j, 1.0).unwrap();
        b.add_edge(j, k, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn enumerates_both_diamond_paths() {
        let t = diamond_chain();
        let paths = enumerate_paths(&t, OperatorId(0), OperatorId(3));
        assert_eq!(paths.len(), 2);
        let total: f64 = paths.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for p in &paths {
            assert_eq!(p.vertices.first(), Some(&OperatorId(0)));
            assert_eq!(p.vertices.last(), Some(&OperatorId(3)));
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn empty_path_to_self() {
        let t = diamond_chain();
        let paths = enumerate_paths(&t, OperatorId(2), OperatorId(2));
        assert_eq!(paths.len(), 1);
        assert!(paths[0].is_empty());
        assert_eq!(paths[0].probability, 1.0);
    }

    #[test]
    fn no_paths_backward() {
        let t = diamond_chain();
        assert!(enumerate_paths(&t, OperatorId(3), OperatorId(0)).is_empty());
        // No path between the two diamond branches either.
        assert!(enumerate_paths(&t, OperatorId(1), OperatorId(2)).is_empty());
    }

    #[test]
    fn coefficients_match_path_enumeration_with_identity_selectivity() {
        let t = diamond_chain();
        let c = arrival_coefficients(&t);
        for (v, coeff) in c.iter().enumerate().skip(1) {
            let by_paths: f64 = enumerate_paths(&t, t.source(), OperatorId(v))
                .iter()
                .map(|p| p.probability)
                .sum();
            assert!(
                (coeff - by_paths).abs() < 1e-12,
                "vertex {v}: dp={coeff} paths={by_paths}"
            );
        }
        assert_eq!(c[0], 0.0, "source has no arrivals");
    }

    #[test]
    fn coefficients_fold_in_selectivity() {
        // source -> filter (output selectivity 0.5) -> sink
        let mut b = Topology::builder();
        let s = b.add_operator(op("s"));
        let f = b.add_operator(op("filter").with_selectivity(Selectivity::output(0.5)));
        let k = b.add_operator(op("k"));
        b.add_edge(s, f, 1.0).unwrap();
        b.add_edge(f, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let c = arrival_coefficients(&t);
        assert!((c[1] - 1.0).abs() < 1e-12);
        assert!((c[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn window_selectivity_divides_downstream_rate() {
        // source -> window (input selectivity 10) -> sink
        let mut b = Topology::builder();
        let s = b.add_operator(op("s"));
        let w = b.add_operator(op("w").with_selectivity(Selectivity::input(10.0)));
        let k = b.add_operator(op("k"));
        b.add_edge(s, w, 1.0).unwrap();
        b.add_edge(w, k, 1.0).unwrap();
        let t = b.build().unwrap();
        let c = arrival_coefficients(&t);
        assert!((c[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sink_departure_coefficients_sum_to_one_without_selectivity() {
        // Proposition 3.5: with identity selectivities, total sink departure
        // equals source departure — coefficients of sink arrivals sum to 1
        // (sinks have identity selectivity here).
        let t = diamond_chain();
        let c = arrival_coefficients(&t);
        let sink_total: f64 = t.sinks().iter().map(|s| c[s.0]).sum();
        assert!((sink_total - 1.0).abs() < 1e-12);
    }
}
