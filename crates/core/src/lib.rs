//! # spinstreams-core
//!
//! Core data model for the SpinStreams static optimization tool
//! (Mencagli, Dazzi, Tonci — Middleware 2018).
//!
//! This crate defines the *abstract representation* of a streaming
//! application on which all SpinStreams cost models operate:
//!
//! * [`Topology`] — a rooted acyclic flow graph of operators connected by
//!   probability-weighted edges (the queueing-network abstraction of §3).
//! * [`OperatorSpec`] — one vertex: a name, a profiled [`ServiceTime`],
//!   a [`StateClass`] (stateless / partitioned-stateful / stateful) and a
//!   [`Selectivity`] pair (§3.4).
//! * [`Tuple`] — the item data model shared by the runtime and the
//!   real-world operator library.
//!
//! The model enforces the paper's structural assumptions at construction
//! time (single source, acyclicity, every vertex reachable from the source,
//! output-edge probabilities summing to one), so the analysis algorithms in
//! `spinstreams-analysis` can rely on them as invariants.
//!
//! # Example
//!
//! ```
//! use spinstreams_core::{Topology, OperatorSpec, ServiceTime};
//!
//! # fn main() -> Result<(), spinstreams_core::TopologyError> {
//! let mut b = Topology::builder();
//! let src = b.add_operator(OperatorSpec::source("source", ServiceTime::from_millis(1.0)));
//! let map = b.add_operator(OperatorSpec::stateless("map", ServiceTime::from_millis(2.0)));
//! b.add_edge(src, map, 1.0)?;
//! let topo = b.build()?;
//! assert_eq!(topo.source(), src);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod error;
mod item;
mod keys;
mod operator;
mod order;
mod paths;
mod rates;
mod topology;

pub use error::TopologyError;
pub use item::{Tuple, TUPLE_ARITY};
pub use keys::KeyDistribution;
pub use operator::{OperatorSpec, Selectivity, StateClass};
pub use order::{is_acyclic, is_topological_order, topological_order};
pub use paths::{arrival_coefficients, enumerate_paths, Path};
pub use rates::{ServiceRate, ServiceTime};
pub use topology::{Edge, EdgeId, OperatorId, Topology, TopologyBuilder};
