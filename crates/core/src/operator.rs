//! Operator specifications: state class, selectivity, profiled service time.

use crate::{KeyDistribution, ServiceRate, ServiceTime};
use std::collections::BTreeMap;
use std::fmt;

/// How an operator holds state, which determines whether fission applies
/// (§3.2).
///
/// * [`StateClass::Stateless`] — any load-balanced distribution of items
///   among replicas is legal; the optimal replication degree `⌈ρ⌉` always
///   removes the bottleneck.
/// * [`StateClass::PartitionedStateful`] — state is partitioned by key;
///   each key must be processed by a single replica, so the achievable
///   speedup is bounded by the key-frequency skew.
/// * [`StateClass::Stateful`] — monolithic state; fission cannot be used
///   and a bottleneck of this class caps the whole topology through
///   backpressure.
#[derive(Debug, Clone, PartialEq)]
pub enum StateClass {
    /// No state: replicas are interchangeable.
    Stateless,
    /// State partitioned by key.
    PartitionedStateful {
        /// Frequency distribution of the partitioning keys.
        keys: KeyDistribution,
    },
    /// Monolithic state: cannot be replicated.
    Stateful,
}

impl StateClass {
    /// Returns true for [`StateClass::Stateless`].
    pub fn is_stateless(&self) -> bool {
        matches!(self, StateClass::Stateless)
    }

    /// Returns true for [`StateClass::PartitionedStateful`].
    pub fn is_partitioned(&self) -> bool {
        matches!(self, StateClass::PartitionedStateful { .. })
    }

    /// Returns true for [`StateClass::Stateful`].
    pub fn is_stateful(&self) -> bool {
        matches!(self, StateClass::Stateful)
    }
}

impl fmt::Display for StateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateClass::Stateless => write!(f, "stateless"),
            StateClass::PartitionedStateful { keys } => {
                write!(f, "partitioned-stateful({} keys)", keys.num_keys())
            }
            StateClass::Stateful => write!(f, "stateful"),
        }
    }
}

/// Input/output selectivity of an operator (§3.4).
///
/// * `input` — average number of input items consumed before a new output is
///   produced (sliding-window operators: the slide `s`).
/// * `output` — average number of output items produced per input item
///   (flatmap > 1, selection/filter < 1).
///
/// An operator with both equal to one produces exactly one output per input,
/// the base case of §3.1. The steady-state departure rate of an operator
/// with arrival rate `λ` and service rate `µ` is
/// `δ = min(λ, µ) · output / input`.
///
/// # Example
///
/// ```
/// use spinstreams_core::Selectivity;
/// let window = Selectivity::input(10.0);   // one aggregate per 10 items
/// assert_eq!(window.rate_factor(), 0.1);
/// let flatmap = Selectivity::output(3.0);  // three outputs per item
/// assert_eq!(flatmap.rate_factor(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Selectivity {
    /// Average inputs consumed per output produced (`≥ 0`, typically `≥ 1`).
    pub input: f64,
    /// Average outputs produced per input consumed.
    pub output: f64,
}

impl Selectivity {
    /// The identity selectivity: one output per input.
    pub const ONE: Selectivity = Selectivity {
        input: 1.0,
        output: 1.0,
    };

    /// Selectivity of an operator consuming `s` inputs per output.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite and positive.
    pub fn input(s: f64) -> Self {
        assert!(s.is_finite() && s > 0.0, "input selectivity must be > 0");
        Selectivity {
            input: s,
            output: 1.0,
        }
    }

    /// Selectivity of an operator producing `s` outputs per input.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not finite and non-negative.
    pub fn output(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "output selectivity must be >= 0");
        Selectivity {
            input: 1.0,
            output: s,
        }
    }

    /// Combined multiplicative effect on the departure rate:
    /// `δ = min(λ, µ) · rate_factor()`.
    pub fn rate_factor(self) -> f64 {
        self.output / self.input
    }

    /// Returns true if this is the identity selectivity.
    pub fn is_identity(self) -> bool {
        self.input == 1.0 && self.output == 1.0
    }

    /// Validates the selectivity values, returning a description of the
    /// problem if invalid.
    pub fn validate(self) -> Result<(), String> {
        if !self.input.is_finite() || self.input <= 0.0 {
            return Err(format!("input selectivity must be > 0, got {}", self.input));
        }
        if !self.output.is_finite() || self.output < 0.0 {
            return Err(format!(
                "output selectivity must be >= 0, got {}",
                self.output
            ));
        }
        Ok(())
    }
}

impl Default for Selectivity {
    fn default() -> Self {
        Selectivity::ONE
    }
}

/// One vertex of a streaming topology: a named operator with its profiled
/// performance characteristics.
///
/// The `kind` / `params` pair is an opaque tag consumed by the code
/// generator (`spinstreams-codegen`) to instantiate the concrete runtime
/// operator — the analogue of the `.class` file the paper's users provide
/// alongside the XML topology description (§4.1). Purely analytical
/// workflows may leave it empty.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    /// Human-readable unique name.
    pub name: String,
    /// Profiled average service time per input item (`µ⁻¹`).
    pub service_time: ServiceTime,
    /// How the operator holds state.
    pub state: StateClass,
    /// Input/output selectivity (§3.4).
    pub selectivity: Selectivity,
    /// Registry tag of the concrete operator implementation, if any.
    pub kind: String,
    /// Parameters forwarded to the operator factory (window length, …).
    pub params: BTreeMap<String, f64>,
}

impl OperatorSpec {
    /// Creates a stateless operator spec with identity selectivity.
    pub fn stateless(name: impl Into<String>, service_time: ServiceTime) -> Self {
        OperatorSpec {
            name: name.into(),
            service_time,
            state: StateClass::Stateless,
            selectivity: Selectivity::ONE,
            kind: String::new(),
            params: BTreeMap::new(),
        }
    }

    /// Creates a partitioned-stateful operator spec.
    pub fn partitioned(
        name: impl Into<String>,
        service_time: ServiceTime,
        keys: KeyDistribution,
    ) -> Self {
        OperatorSpec {
            name: name.into(),
            service_time,
            state: StateClass::PartitionedStateful { keys },
            selectivity: Selectivity::ONE,
            kind: String::new(),
            params: BTreeMap::new(),
        }
    }

    /// Creates a (monolithic) stateful operator spec.
    pub fn stateful(name: impl Into<String>, service_time: ServiceTime) -> Self {
        OperatorSpec {
            name: name.into(),
            service_time,
            state: StateClass::Stateful,
            selectivity: Selectivity::ONE,
            kind: String::new(),
            params: BTreeMap::new(),
        }
    }

    /// Creates a source operator spec.
    ///
    /// A source is modeled as a stateless operator whose service time is the
    /// inverse of its generation rate; by the paper's convention it is vertex
    /// 0 and has no input edges.
    pub fn source(name: impl Into<String>, service_time: ServiceTime) -> Self {
        Self::stateless(name, service_time)
    }

    /// Sets the selectivity (builder style).
    pub fn with_selectivity(mut self, selectivity: Selectivity) -> Self {
        self.selectivity = selectivity;
        self
    }

    /// Sets the registry kind tag (builder style).
    pub fn with_kind(mut self, kind: impl Into<String>) -> Self {
        self.kind = kind.into();
        self
    }

    /// Adds a factory parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: f64) -> Self {
        self.params.insert(key.into(), value);
        self
    }

    /// The operator's service rate `µ = 1 / service_time`.
    pub fn service_rate(&self) -> ServiceRate {
        self.service_time.rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_class_predicates() {
        assert!(StateClass::Stateless.is_stateless());
        assert!(StateClass::Stateful.is_stateful());
        let p = StateClass::PartitionedStateful {
            keys: KeyDistribution::uniform(8),
        };
        assert!(p.is_partitioned());
        assert!(!p.is_stateless() && !p.is_stateful());
    }

    #[test]
    fn state_class_display() {
        assert_eq!(StateClass::Stateless.to_string(), "stateless");
        assert_eq!(StateClass::Stateful.to_string(), "stateful");
        let p = StateClass::PartitionedStateful {
            keys: KeyDistribution::uniform(8),
        };
        assert_eq!(p.to_string(), "partitioned-stateful(8 keys)");
    }

    #[test]
    fn selectivity_rate_factor() {
        assert_eq!(Selectivity::ONE.rate_factor(), 1.0);
        assert!((Selectivity::input(4.0).rate_factor() - 0.25).abs() < 1e-12);
        assert!((Selectivity::output(2.0).rate_factor() - 2.0).abs() < 1e-12);
        let both = Selectivity {
            input: 10.0,
            output: 5.0,
        };
        assert!((both.rate_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selectivity_validation() {
        assert!(Selectivity::ONE.validate().is_ok());
        assert!(Selectivity {
            input: 0.0,
            output: 1.0
        }
        .validate()
        .is_err());
        assert!(Selectivity {
            input: 1.0,
            output: -1.0
        }
        .validate()
        .is_err());
        assert!(Selectivity {
            input: f64::NAN,
            output: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn selectivity_identity_check() {
        assert!(Selectivity::ONE.is_identity());
        assert!(Selectivity::default().is_identity());
        assert!(!Selectivity::input(2.0).is_identity());
    }

    #[test]
    fn spec_builders() {
        let spec = OperatorSpec::stateless("map", ServiceTime::from_millis(1.0))
            .with_selectivity(Selectivity::output(0.5))
            .with_kind("filter")
            .with_param("threshold", 0.7);
        assert_eq!(spec.name, "map");
        assert_eq!(spec.kind, "filter");
        assert_eq!(spec.params["threshold"], 0.7);
        assert_eq!(spec.selectivity.output, 0.5);
        assert!((spec.service_rate().items_per_sec() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn spec_clone_roundtrip() {
        let spec = OperatorSpec::partitioned(
            "agg",
            ServiceTime::from_millis(2.0),
            KeyDistribution::zipf(16, 1.2),
        )
        .with_selectivity(Selectivity::input(10.0));
        let back = spec.clone();
        assert_eq!(spec, back);
        assert_eq!(back.state, spec.state);
        assert_eq!(back.selectivity, spec.selectivity);
    }
}
