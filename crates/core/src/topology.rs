//! The rooted acyclic flow graph of a streaming application.

use crate::{is_acyclic, OperatorSpec, TopologyError};
use std::fmt;

/// Identifier of an operator (vertex) within one [`Topology`].
///
/// Ids are dense indices assigned in insertion order; the source is always
/// operator 0 once the topology validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OperatorId(pub usize);

impl OperatorId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OP{}", self.0)
    }
}

/// Identifier of an edge within one [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A directed, probability-weighted stream between two operators.
///
/// The probability is the measured fraction of the origin's output items
/// routed onto this edge (§3.1); the probabilities of all output edges of an
/// operator sum to one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Origin operator.
    pub from: OperatorId,
    /// Destination operator.
    pub to: OperatorId,
    /// Routing probability in `(0, 1]`.
    pub probability: f64,
}

/// A validated streaming topology: a rooted acyclic flow graph.
///
/// Guarantees established by [`TopologyBuilder::build`]:
///
/// * at least one operator; exactly one *source* (vertex without inputs);
/// * no cycles, self-loops or duplicate edges;
/// * every vertex reachable from the source (flow-graph property);
/// * each edge probability in `(0, 1]`, and the output probabilities of
///   every non-sink operator summing to 1 (±1e-6);
/// * every operator's selectivity valid.
///
/// The structure is immutable after construction; optimization passes
/// produce *new* topologies.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    ops: Vec<OperatorSpec>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    source: OperatorId,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Number of operators `|V|`.
    pub fn num_operators(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The unique source operator.
    pub fn source(&self) -> OperatorId {
        self.source
    }

    /// The sink operators (vertices without output edges), in id order.
    pub fn sinks(&self) -> Vec<OperatorId> {
        (0..self.ops.len())
            .map(OperatorId)
            .filter(|id| self.out_adj[id.0].is_empty())
            .collect()
    }

    /// The spec of operator `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn operator(&self, id: OperatorId) -> &OperatorSpec {
        &self.ops[id.0]
    }

    /// All operator specs in id order.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.ops
    }

    /// Iterator over all operator ids.
    pub fn operator_ids(&self) -> impl Iterator<Item = OperatorId> + '_ {
        (0..self.ops.len()).map(OperatorId)
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.0]
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of the output edges of `id`, in insertion order.
    pub fn out_edges(&self, id: OperatorId) -> &[EdgeId] {
        &self.out_adj[id.0]
    }

    /// Ids of the input edges of `id`, in insertion order.
    pub fn in_edges(&self, id: OperatorId) -> &[EdgeId] {
        &self.in_adj[id.0]
    }

    /// The incoming neighborhood `IN(i)`: origins of the input edges of `id`.
    pub fn predecessors(&self, id: OperatorId) -> Vec<OperatorId> {
        self.in_adj[id.0]
            .iter()
            .map(|e| self.edges[e.0].from)
            .collect()
    }

    /// The outgoing neighborhood: destinations of the output edges of `id`.
    pub fn successors(&self, id: OperatorId) -> Vec<OperatorId> {
        self.out_adj[id.0]
            .iter()
            .map(|e| self.edges[e.0].to)
            .collect()
    }

    /// The probability of the edge from `from` to `to`, or `None` if no such
    /// edge exists.
    pub fn edge_probability(&self, from: OperatorId, to: OperatorId) -> Option<f64> {
        self.out_adj[from.0]
            .iter()
            .map(|e| self.edges[e.0])
            .find(|edge| edge.to == to)
            .map(|edge| edge.probability)
    }

    /// Looks up an operator by name.
    pub fn operator_by_name(&self, name: &str) -> Option<OperatorId> {
        self.ops
            .iter()
            .position(|op| op.name == name)
            .map(OperatorId)
    }

    /// Returns a builder pre-loaded with this topology's operators and
    /// edges, for deriving modified topologies.
    pub fn to_builder(&self) -> TopologyBuilder {
        TopologyBuilder {
            ops: self.ops.clone(),
            edges: self.edges.clone(),
        }
    }

    /// Rebuilds adjacency lists (used after deserialization, where they are
    /// skipped).
    fn rebuild_adjacency(&mut self) {
        self.out_adj = vec![Vec::new(); self.ops.len()];
        self.in_adj = vec![Vec::new(); self.ops.len()];
        for (i, edge) in self.edges.iter().enumerate() {
            self.out_adj[edge.from.0].push(EdgeId(i));
            self.in_adj[edge.to.0].push(EdgeId(i));
        }
    }

    /// Reconstructs and re-validates a topology from raw parts, e.g. after
    /// deserialization.
    pub fn from_parts(ops: Vec<OperatorSpec>, edges: Vec<Edge>) -> Result<Topology, TopologyError> {
        let mut b = TopologyBuilder {
            ops,
            ..Default::default()
        };
        for e in edges {
            b.add_edge(e.from, e.to, e.probability)?;
        }
        b.build()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Topology: {} operators, {} edges",
            self.num_operators(),
            self.num_edges()
        )?;
        for id in self.operator_ids() {
            let op = self.operator(id);
            write!(
                f,
                "  {} {:<16} µ⁻¹={:<12} {:<28}",
                id,
                op.name,
                op.service_time.to_string(),
                op.state.to_string()
            )?;
            let outs: Vec<String> = self
                .out_edges(id)
                .iter()
                .map(|e| {
                    let edge = self.edge(*e);
                    format!("{}@{:.2}", edge.to, edge.probability)
                })
                .collect();
            if outs.is_empty() {
                writeln!(f, " -> (sink)")?;
            } else {
                writeln!(f, " -> {}", outs.join(", "))?;
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Topology`].
///
/// Collects operators and edges, then validates all structural assumptions
/// in [`TopologyBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct TopologyBuilder {
    ops: Vec<OperatorSpec>,
    edges: Vec<Edge>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operator and returns its id.
    pub fn add_operator(&mut self, spec: OperatorSpec) -> OperatorId {
        self.ops.push(spec);
        OperatorId(self.ops.len() - 1)
    }

    /// Adds an edge with the given routing probability.
    ///
    /// # Errors
    ///
    /// Returns an error immediately if either endpoint is unknown, the edge
    /// is a self-loop or a duplicate, or the probability is outside `(0,1]`.
    pub fn add_edge(
        &mut self,
        from: OperatorId,
        to: OperatorId,
        probability: f64,
    ) -> Result<EdgeId, TopologyError> {
        for id in [from, to] {
            if id.0 >= self.ops.len() {
                return Err(TopologyError::UnknownOperator { index: id.0 });
            }
        }
        if from == to {
            return Err(TopologyError::SelfLoop { index: from.0 });
        }
        if self.edges.iter().any(|e| e.from == from && e.to == to) {
            return Err(TopologyError::DuplicateEdge {
                from: from.0,
                to: to.0,
            });
        }
        if !probability.is_finite() || probability <= 0.0 || probability > 1.0 {
            return Err(TopologyError::InvalidProbability {
                from: from.0,
                to: to.0,
                probability,
            });
        }
        self.edges.push(Edge {
            from,
            to,
            probability,
        });
        Ok(EdgeId(self.edges.len() - 1))
    }

    /// Number of operators added so far.
    pub fn num_operators(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if an edge `from -> to` has already been added.
    pub fn has_edge(&self, from: OperatorId, to: OperatorId) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }

    /// Returns true if operator `id` currently has at least one input edge.
    pub fn has_inputs(&self, id: OperatorId) -> bool {
        self.edges.iter().any(|e| e.to == id)
    }

    /// Number of input edges of `id` added so far.
    pub fn in_degree(&self, id: OperatorId) -> usize {
        self.edges.iter().filter(|e| e.to == id).count()
    }

    /// Mutable access to an operator spec added earlier (e.g. to adjust a
    /// profiled service time before building).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn operator_mut(&mut self, id: OperatorId) -> &mut OperatorSpec {
        &mut self.ops[id.0]
    }

    /// Validates every structural assumption of §3.1 and produces the
    /// immutable [`Topology`].
    ///
    /// # Errors
    ///
    /// See [`TopologyError`] for the full list of structural violations.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.ops.is_empty() {
            return Err(TopologyError::Empty);
        }
        let n = self.ops.len();

        // Selectivity validation.
        for (i, op) in self.ops.iter().enumerate() {
            if let Err(reason) = op.selectivity.validate() {
                return Err(TopologyError::InvalidOperator { index: i, reason });
            }
        }

        // Exactly one source.
        let mut has_input = vec![false; n];
        for e in &self.edges {
            has_input[e.to.0] = true;
        }
        let sources: Vec<usize> = (0..n).filter(|i| !has_input[*i]).collect();
        if sources.len() != 1 {
            return Err(TopologyError::SourceCount { sources });
        }
        let source = OperatorId(sources[0]);

        // Acyclicity.
        let succ: Vec<Vec<usize>> = {
            let mut s = vec![Vec::new(); n];
            for e in &self.edges {
                s[e.from.0].push(e.to.0);
            }
            s
        };
        if !is_acyclic(n, &succ) {
            return Err(TopologyError::Cyclic);
        }

        // Reachability from the source (flow graph).
        let mut seen = vec![false; n];
        let mut stack = vec![source.0];
        seen[source.0] = true;
        while let Some(v) = stack.pop() {
            for &w in &succ[v] {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        let unreachable: Vec<usize> = (0..n).filter(|i| !seen[*i]).collect();
        if !unreachable.is_empty() {
            return Err(TopologyError::Unreachable {
                vertices: unreachable,
            });
        }

        // Output probability distributions.
        let mut out_sum = vec![0.0f64; n];
        let mut out_count = vec![0usize; n];
        for e in &self.edges {
            out_sum[e.from.0] += e.probability;
            out_count[e.from.0] += 1;
        }
        for i in 0..n {
            if out_count[i] > 0 && (out_sum[i] - 1.0).abs() > 1e-6 {
                return Err(TopologyError::ProbabilitySum {
                    index: i,
                    sum: out_sum[i],
                });
            }
        }

        let mut topo = Topology {
            ops: self.ops,
            edges: self.edges,
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            source,
        };
        topo.rebuild_adjacency();
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Selectivity, ServiceTime};

    fn op(name: &str) -> OperatorSpec {
        OperatorSpec::stateless(name, ServiceTime::from_millis(1.0))
    }

    /// Builds the diamond used in several tests:
    /// `0 -> {1 (0.4), 2 (0.6)}; 1 -> 3; 2 -> 3`.
    fn diamond() -> Topology {
        let mut b = Topology::builder();
        let a = b.add_operator(op("src"));
        let l = b.add_operator(op("left"));
        let r = b.add_operator(op("right"));
        let s = b.add_operator(op("sink"));
        b.add_edge(a, l, 0.4).unwrap();
        b.add_edge(a, r, 0.6).unwrap();
        b.add_edge(l, s, 1.0).unwrap();
        b.add_edge(r, s, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_valid_diamond() {
        let t = diamond();
        assert_eq!(t.num_operators(), 4);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.source(), OperatorId(0));
        assert_eq!(t.sinks(), vec![OperatorId(3)]);
        assert_eq!(
            t.predecessors(OperatorId(3)),
            vec![OperatorId(1), OperatorId(2)]
        );
        assert_eq!(
            t.successors(OperatorId(0)),
            vec![OperatorId(1), OperatorId(2)]
        );
        assert_eq!(t.edge_probability(OperatorId(0), OperatorId(2)), Some(0.6));
        assert_eq!(t.edge_probability(OperatorId(1), OperatorId(2)), None);
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            Topology::builder().build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        assert_eq!(
            b.add_edge(a, a, 1.0).unwrap_err(),
            TopologyError::SelfLoop { index: 0 }
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        let c = b.add_operator(op("b"));
        b.add_edge(a, c, 0.5).unwrap();
        assert!(matches!(
            b.add_edge(a, c, 0.5).unwrap_err(),
            TopologyError::DuplicateEdge { .. }
        ));
    }

    #[test]
    fn unknown_operator_rejected() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        assert!(matches!(
            b.add_edge(a, OperatorId(9), 1.0).unwrap_err(),
            TopologyError::UnknownOperator { index: 9 }
        ));
    }

    #[test]
    fn bad_probability_rejected() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        let c = b.add_operator(op("b"));
        for p in [0.0, -0.3, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                b.clone().add_edge(a, c, p).unwrap_err(),
                TopologyError::InvalidProbability { .. }
            ));
        }
    }

    #[test]
    fn cycle_rejected() {
        let mut b = Topology::builder();
        let s = b.add_operator(op("src"));
        let x = b.add_operator(op("x"));
        let y = b.add_operator(op("y"));
        b.add_edge(s, x, 1.0).unwrap();
        b.add_edge(x, y, 1.0).unwrap();
        b.add_edge(y, x, 1.0).unwrap();
        // x's output distribution is fine (1.0), y -> x creates a cycle.
        assert_eq!(b.build().unwrap_err(), TopologyError::Cyclic);
    }

    #[test]
    fn multi_source_rejected() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        let c = b.add_operator(op("b"));
        let d = b.add_operator(op("join"));
        b.add_edge(a, d, 1.0).unwrap();
        b.add_edge(c, d, 1.0).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::SourceCount {
                sources: vec![0, 1]
            }
        );
    }

    #[test]
    fn no_source_is_reported_via_cycle_or_sources() {
        // A pure 2-cycle has no vertex without inputs.
        let mut b = Topology::builder();
        let a = b.add_operator(op("a"));
        let c = b.add_operator(op("b"));
        b.add_edge(a, c, 1.0).unwrap();
        b.add_edge(c, a, 1.0).unwrap();
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::SourceCount { sources: vec![] }
        );
    }

    #[test]
    fn probability_sum_enforced() {
        let mut b = Topology::builder();
        let a = b.add_operator(op("src"));
        let l = b.add_operator(op("l"));
        let r = b.add_operator(op("r"));
        b.add_edge(a, l, 0.4).unwrap();
        b.add_edge(a, r, 0.4).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::ProbabilitySum { index: 0, .. }
        ));
    }

    #[test]
    fn invalid_selectivity_rejected_at_build() {
        let mut b = Topology::builder();
        let mut bad = op("src");
        bad.selectivity = Selectivity {
            input: -1.0,
            output: 1.0,
        };
        b.add_operator(bad);
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::InvalidOperator { index: 0, .. }
        ));
    }

    #[test]
    fn single_vertex_topology_is_valid() {
        let mut b = Topology::builder();
        b.add_operator(op("only"));
        let t = b.build().unwrap();
        assert_eq!(t.source(), OperatorId(0));
        assert_eq!(t.sinks(), vec![OperatorId(0)]);
    }

    #[test]
    fn operator_by_name() {
        let t = diamond();
        assert_eq!(t.operator_by_name("right"), Some(OperatorId(2)));
        assert_eq!(t.operator_by_name("nope"), None);
    }

    #[test]
    fn to_builder_roundtrip() {
        let t = diamond();
        let t2 = t.to_builder().build().unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn from_parts_revalidates() {
        let t = diamond();
        let t2 = Topology::from_parts(t.operators().to_vec(), t.edges().to_vec()).unwrap();
        assert_eq!(t.num_edges(), t2.num_edges());
        assert_eq!(t.source(), t2.source());
        // And rejects bad parts.
        assert!(Topology::from_parts(vec![], vec![]).is_err());
    }

    #[test]
    fn parts_roundtrip_rebuilds_adjacency() {
        // The (ops, edges) pair is the serialized form of a topology;
        // from_parts must rebuild the derived adjacency exactly.
        let t = diamond();
        let rebuilt = Topology::from_parts(t.operators().to_vec(), t.edges().to_vec()).unwrap();
        assert_eq!(rebuilt, t);
        assert_eq!(rebuilt.successors(OperatorId(0)).len(), 2);
    }

    #[test]
    fn display_mentions_every_operator() {
        let t = diamond();
        let s = t.to_string();
        for name in ["src", "left", "right", "sink"] {
            assert!(s.contains(name), "{s}");
        }
        assert!(s.contains("(sink)"));
    }

    #[test]
    fn unreachable_vertex_rejected() {
        // 0 -> 1, and 2 -> 1 makes 2 a second source; instead craft
        // reachability failure via from_parts with an isolated vertex.
        let mut b = Topology::builder();
        let a = b.add_operator(op("src"));
        let c = b.add_operator(op("mid"));
        b.add_operator(op("isolated"));
        b.add_edge(a, c, 1.0).unwrap();
        // "isolated" has no inputs -> two sources, caught as SourceCount.
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::SourceCount { .. }
        ));
    }
}
