//! Count-based sliding windows (§3.4, §5.1).
//!
//! A count-based window of length `w` sliding by `s` triggers a computation
//! over the last `w` items every `s` new arrivals — the windowing model of
//! all the paper's aggregation, spatial and join operators. [`CountWindow`]
//! is the single-stream buffer; [`KeyedWindows`] maintains one window per
//! partitioning key (the partitioned-stateful variant).

use spinstreams_core::Tuple;
use spinstreams_runtime::{SnapshotReader, StateSnapshot};
use std::collections::HashMap;

/// A count-based sliding window over one stream.
///
/// # Example
///
/// ```
/// use spinstreams_operators::CountWindow;
/// use spinstreams_core::Tuple;
///
/// let mut w = CountWindow::new(3, 2);
/// assert!(w.push(Tuple::splat(0, 0, 1.0)).is_none());
/// assert!(w.push(Tuple::splat(0, 1, 2.0)).is_none()); // not full yet
/// assert!(w.push(Tuple::splat(0, 2, 3.0)).is_some()); // first full window
/// assert!(w.push(Tuple::splat(0, 3, 4.0)).is_none());
/// assert!(w.push(Tuple::splat(0, 4, 5.0)).is_some()); // slid by 2
/// ```
#[derive(Debug, Clone)]
pub struct CountWindow {
    buf: Vec<Tuple>,
    length: usize,
    slide: usize,
    since_trigger: usize,
    total: u64,
    eager: bool,
}

impl CountWindow {
    /// Creates a window of `length` items sliding every `slide` items.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `slide` is zero.
    pub fn new(length: usize, slide: usize) -> Self {
        assert!(length > 0, "window length must be positive");
        assert!(slide > 0, "window slide must be positive");
        CountWindow {
            buf: Vec::with_capacity(length),
            length,
            slide,
            since_trigger: 0,
            total: 0,
            eager: false,
        }
    }

    /// Switches the window to *eager* triggering: it fires every `slide`
    /// items even before the buffer is full, computing over the partial
    /// content. Eager windows reach their steady-state output rate (one
    /// trigger per `slide` items, §3.4) immediately, eliminating the
    /// fill-up transient that §5.2 identifies as the main source of
    /// prediction error for rarely-hit windows.
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }

    /// True if this window triggers eagerly on partial content.
    pub fn is_eager(&self) -> bool {
        self.eager
    }

    /// Window length `w`.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Window slide `s` — the operator's input selectivity (§3.4).
    pub fn slide(&self) -> usize {
        self.slide
    }

    /// Items currently buffered (`≤ length`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total
    }

    /// Pushes an item; returns the full window content when the window
    /// triggers (buffer full and `slide` items since the last trigger).
    pub fn push(&mut self, item: Tuple) -> Option<&[Tuple]> {
        if self.buf.len() == self.length {
            self.buf.remove(0);
        }
        self.buf.push(item);
        self.total += 1;
        self.since_trigger += 1;
        let full_enough = self.eager || self.buf.len() == self.length;
        if full_enough && self.since_trigger >= self.slide {
            self.since_trigger = 0;
            Some(&self.buf)
        } else {
            None
        }
    }

    /// The current buffer content (oldest first), regardless of triggering.
    pub fn content(&self) -> &[Tuple] {
        &self.buf
    }

    /// Discards all buffered items and trigger progress.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.since_trigger = 0;
        self.total = 0;
    }

    /// Appends the window's dynamic state (trigger progress + buffered
    /// items) to a checkpoint snapshot. Structural parameters (`length`,
    /// `slide`, eagerness) are construction-time and deliberately not
    /// encoded: restore targets an identically configured instance.
    pub fn encode_into(&self, snap: &mut StateSnapshot) {
        snap.push_u64(self.since_trigger as u64);
        snap.push_u64(self.total);
        snap.push_u64(self.buf.len() as u64);
        for t in &self.buf {
            snap.push_tuple(t);
        }
    }

    /// Restores state written by [`encode_into`](Self::encode_into) into
    /// this window. Returns `false` (leaving the window cleared) on a
    /// truncated or malformed snapshot.
    pub fn decode_from(&mut self, r: &mut SnapshotReader<'_>) -> bool {
        self.clear();
        let (Some(since), Some(total), Some(n)) = (r.read_u64(), r.read_u64(), r.read_u64()) else {
            return false;
        };
        for _ in 0..n {
            let Some(t) = r.read_tuple() else {
                self.clear();
                return false;
            };
            self.buf.push(t);
        }
        self.since_trigger = since as usize;
        self.total = total;
        true
    }
}

/// One [`CountWindow`] per partitioning key — the state layout of a
/// partitioned-stateful windowed operator (§3.2): each key's window is
/// touched only by items carrying that key, so replicas owning disjoint key
/// sets never share state.
#[derive(Debug, Clone)]
pub struct KeyedWindows {
    windows: HashMap<u64, CountWindow>,
    length: usize,
    slide: usize,
    eager: bool,
}

impl KeyedWindows {
    /// Creates the per-key window table.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `slide` is zero.
    pub fn new(length: usize, slide: usize) -> Self {
        assert!(
            length > 0 && slide > 0,
            "window parameters must be positive"
        );
        KeyedWindows {
            windows: HashMap::new(),
            length,
            slide,
            eager: false,
        }
    }

    /// Eager variant: per-key windows trigger on partial content (see
    /// [`CountWindow::eager`]).
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }

    /// Pushes an item into its key's window; returns the triggered window
    /// content, if any.
    pub fn push(&mut self, item: Tuple) -> Option<&[Tuple]> {
        let (length, slide, eager) = (self.length, self.slide, self.eager);
        self.windows
            .entry(item.key)
            .or_insert_with(|| {
                let w = CountWindow::new(length, slide);
                if eager {
                    w.eager()
                } else {
                    w
                }
            })
            .push(item)
    }

    /// Number of distinct keys seen.
    pub fn num_keys(&self) -> usize {
        self.windows.len()
    }

    /// Window slide (input selectivity).
    pub fn slide(&self) -> usize {
        self.slide
    }

    /// Window length.
    pub fn length(&self) -> usize {
        self.length
    }

    /// Discards every key's window.
    pub fn clear(&mut self) {
        self.windows.clear();
    }

    /// Appends the per-key window table to a checkpoint snapshot. Keys are
    /// written in sorted order so equal states produce byte-identical
    /// snapshots regardless of hash-map iteration order.
    pub fn encode_into(&self, snap: &mut StateSnapshot) {
        snap.push_u64(self.windows.len() as u64);
        let mut keys: Vec<u64> = self.windows.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            snap.push_u64(k);
            self.windows[&k].encode_into(snap);
        }
    }

    /// Removes the given keys' windows and appends them to `snap` in
    /// exactly the [`encode_into`](Self::encode_into) table layout — the
    /// drain side of a live key-repartitioning handoff. Keys this table
    /// has never seen are skipped (they have no state to move); after the
    /// call the table behaves as if it had never seen the moved keys.
    pub fn extract_keys_into(&mut self, keys: &[u64], snap: &mut StateSnapshot) {
        let mut moving: Vec<u64> = keys
            .iter()
            .copied()
            .filter(|k| self.windows.contains_key(k))
            .collect();
        moving.sort_unstable();
        moving.dedup();
        snap.push_u64(moving.len() as u64);
        for k in moving {
            snap.push_u64(k);
            let w = self.windows.remove(&k).expect("filtered on presence");
            w.encode_into(snap);
        }
    }

    /// Merges a table written by [`encode_into`](Self::encode_into) or
    /// [`extract_keys_into`](Self::extract_keys_into) into this one
    /// *without* clearing existing keys — the resume side of a handoff.
    /// An incoming key replaces a same-key window (handoff callers
    /// guarantee disjointness). Returns `false` on a malformed snapshot,
    /// leaving entries merged before the corruption point in place.
    pub fn merge_from(&mut self, r: &mut SnapshotReader<'_>) -> bool {
        let Some(n) = r.read_u64() else {
            return false;
        };
        for _ in 0..n {
            let Some(key) = r.read_u64() else {
                return false;
            };
            let mut w = CountWindow::new(self.length, self.slide);
            if self.eager {
                w = w.eager();
            }
            if !w.decode_from(r) {
                return false;
            }
            self.windows.insert(key, w);
        }
        true
    }

    /// Restores a table written by [`encode_into`](Self::encode_into).
    /// Returns `false` (leaving the table cleared) on a malformed snapshot.
    pub fn decode_from(&mut self, r: &mut SnapshotReader<'_>) -> bool {
        self.clear();
        let Some(n) = r.read_u64() else {
            return false;
        };
        for _ in 0..n {
            let Some(key) = r.read_u64() else {
                self.clear();
                return false;
            };
            let mut w = CountWindow::new(self.length, self.slide);
            if self.eager {
                w = w.eager();
            }
            if !w.decode_from(r) {
                self.clear();
                return false;
            }
            self.windows.insert(key, w);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(seq: u64, v: f64) -> Tuple {
        Tuple::splat(0, seq, v)
    }

    fn tk(key: u64, seq: u64) -> Tuple {
        Tuple::splat(key, seq, seq as f64)
    }

    #[test]
    fn window_triggers_once_full_then_every_slide() {
        let mut w = CountWindow::new(4, 2);
        let mut triggers = Vec::new();
        for i in 0..10 {
            if w.push(t(i, i as f64)).is_some() {
                triggers.push(i);
            }
        }
        // Full at item 3 (0-indexed), then every 2: 3, 5, 7, 9.
        assert_eq!(triggers, vec![3, 5, 7, 9]);
    }

    #[test]
    fn window_content_is_last_w_items() {
        let mut w = CountWindow::new(3, 3);
        let mut last: Vec<u64> = Vec::new();
        for i in 0..9 {
            if let Some(content) = w.push(t(i, 0.0)) {
                last = content.iter().map(|x| x.seq).collect();
            }
        }
        assert_eq!(last, vec![6, 7, 8]);
    }

    #[test]
    fn tumbling_window_when_slide_equals_length() {
        let mut w = CountWindow::new(5, 5);
        let trigger_count = (0..25).filter(|i| w.push(t(*i, 0.0)).is_some()).count();
        assert_eq!(trigger_count, 5);
    }

    #[test]
    fn slide_one_triggers_every_item_after_fill() {
        let mut w = CountWindow::new(3, 1);
        let trigger_count = (0..10).filter(|i| w.push(t(*i, 0.0)).is_some()).count();
        assert_eq!(trigger_count, 8); // items 2..=9
    }

    #[test]
    fn accessors() {
        let mut w = CountWindow::new(4, 2);
        assert_eq!(w.length(), 4);
        assert_eq!(w.slide(), 2);
        assert!(w.is_empty());
        w.push(t(0, 1.0));
        assert_eq!(w.len(), 1);
        assert_eq!(w.total_pushed(), 1);
        assert_eq!(w.content().len(), 1);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_rejected() {
        CountWindow::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "slide must be positive")]
    fn zero_slide_rejected() {
        CountWindow::new(1, 0);
    }

    #[test]
    fn keyed_windows_are_independent_per_key() {
        let mut kw = KeyedWindows::new(2, 2);
        // Alternate keys: each key's window fills after 2 of *its* items.
        assert!(kw.push(tk(1, 0)).is_none());
        assert!(kw.push(tk(2, 1)).is_none());
        assert!(kw.push(tk(1, 2)).is_some()); // key 1 window full
        assert!(kw.push(tk(2, 3)).is_some()); // key 2 window full
        assert_eq!(kw.num_keys(), 2);
        assert_eq!(kw.slide(), 2);
        assert_eq!(kw.length(), 2);
    }

    #[test]
    fn eager_window_triggers_before_full() {
        let mut w = CountWindow::new(10, 2).eager();
        assert!(w.is_eager());
        let mut triggers = Vec::new();
        for i in 0..8 {
            if let Some(content) = w.push(t(i, 0.0)) {
                triggers.push((i, content.len()));
            }
        }
        // Fires every 2 items with whatever is buffered.
        assert_eq!(triggers, vec![(1, 2), (3, 4), (5, 6), (7, 8)]);
    }

    #[test]
    fn eager_keyed_windows_trigger_per_key_slide() {
        let mut kw = KeyedWindows::new(100, 2).eager();
        let mut count = 0;
        for i in 0..20 {
            if kw.push(tk(i % 5, i)).is_some() {
                count += 1;
            }
        }
        // Each of 5 keys sees 4 items -> 2 triggers each.
        assert_eq!(count, 10);
    }

    #[test]
    fn snapshot_roundtrips_count_window() {
        let mut w = CountWindow::new(4, 3);
        for i in 0..6 {
            w.push(t(i, i as f64));
        }
        let mut snap = StateSnapshot::new();
        w.encode_into(&mut snap);
        let mut w2 = CountWindow::new(4, 3);
        let mut r = snap.reader();
        assert!(w2.decode_from(&mut r));
        assert!(r.is_exhausted());
        assert_eq!(w2.content(), w.content());
        assert_eq!(w2.total_pushed(), w.total_pushed());
        // The restored window continues the original's trigger schedule.
        for i in 6..12 {
            assert_eq!(
                w.push(t(i, 0.0)).is_some(),
                w2.push(t(i, 0.0)).is_some(),
                "trigger divergence at item {i}"
            );
        }
    }

    #[test]
    fn keyed_snapshot_is_insertion_order_independent() {
        let mut a = KeyedWindows::new(3, 2);
        let mut b = KeyedWindows::new(3, 2);
        let items = [tk(5, 0), tk(1, 1), tk(9, 2), tk(5, 3)];
        for it in items {
            a.push(it);
        }
        // Different cross-key interleaving, same per-key sequences.
        for it in [tk(9, 2), tk(1, 1), tk(5, 0), tk(5, 3)] {
            b.push(it);
        }
        let (mut sa, mut sb) = (StateSnapshot::new(), StateSnapshot::new());
        a.encode_into(&mut sa);
        b.encode_into(&mut sb);
        assert_eq!(sa, sb, "sorted-key encoding must be order-independent");
        let mut restored = KeyedWindows::new(3, 2);
        let mut r = sa.reader();
        assert!(restored.decode_from(&mut r));
        assert_eq!(restored.num_keys(), 3);
    }

    #[test]
    fn extract_keys_moves_state_and_merge_resumes_schedules() {
        // Build one table over 3 keys, extract key 1, merge it into a
        // fresh table: the split pair must jointly behave exactly like the
        // original — per-key trigger schedules survive the move.
        let mut donor = KeyedWindows::new(3, 2);
        let mut reference = KeyedWindows::new(3, 2);
        for i in 0..14 {
            donor.push(tk(i % 3, i));
            reference.push(tk(i % 3, i));
        }
        let mut snap = StateSnapshot::new();
        donor.extract_keys_into(&[1, 99], &mut snap); // 99: never seen, skipped
        assert_eq!(donor.num_keys(), 2, "extracted key is gone from the donor");
        let mut recipient = KeyedWindows::new(3, 2);
        recipient.push(tk(7, 0)); // pre-existing disjoint state survives the merge
        let mut r = snap.reader();
        assert!(recipient.merge_from(&mut r));
        assert!(r.is_exhausted());
        assert_eq!(recipient.num_keys(), 2);
        // Key 1 items now trigger on the recipient exactly as they would
        // have on the unsplit reference; keys 0/2 stay with the donor.
        for i in 14..26 {
            let k = i % 3;
            let split = if k == 1 {
                recipient.push(tk(k, i)).is_some()
            } else {
                donor.push(tk(k, i)).is_some()
            };
            assert_eq!(split, reference.push(tk(k, i)).is_some(), "item {i}");
        }
        // A donor that sees a moved key again starts it from scratch.
        assert!(donor.push(tk(1, 100)).is_none());
    }

    #[test]
    fn merge_from_rejects_truncation_without_clearing() {
        let mut kw = KeyedWindows::new(2, 1);
        kw.push(tk(5, 0));
        let mut truncated = StateSnapshot::new();
        truncated.push_u64(1); // one entry claimed
        truncated.push_u64(9); // key, then nothing
        let mut r = truncated.reader();
        assert!(!kw.merge_from(&mut r));
        assert_eq!(kw.num_keys(), 1, "existing keys survive a failed merge");
    }

    #[test]
    fn truncated_window_snapshot_restores_to_empty() {
        let mut w = CountWindow::new(4, 2);
        w.push(t(0, 1.0));
        let mut snap = StateSnapshot::new();
        w.encode_into(&mut snap);
        // Drop the tuple payload: claim one buffered item, provide none.
        let mut truncated = StateSnapshot::new();
        truncated.push_u64(0);
        truncated.push_u64(1);
        truncated.push_u64(1);
        let mut w2 = CountWindow::new(4, 2);
        let mut r = truncated.reader();
        assert!(!w2.decode_from(&mut r));
        assert!(w2.is_empty(), "failed decode must leave a clean window");
    }

    #[test]
    fn keyed_window_content_has_only_that_key() {
        let mut kw = KeyedWindows::new(3, 1);
        let mut seen: Vec<u64> = Vec::new();
        for i in 0..30 {
            if let Some(content) = kw.push(tk(i % 3, i)) {
                seen = content.iter().map(|t| t.key).collect();
                assert!(seen.windows(2).all(|p| p[0] == p[1]));
            }
        }
        assert_eq!(seen.len(), 3);
    }
}
