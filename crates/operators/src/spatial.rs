//! Spatial window queries (§5.1): skyline and top-k.

use crate::window::CountWindow;
use spinstreams_core::Tuple;
use spinstreams_runtime::operators::synthetic_work;
use spinstreams_runtime::{Outputs, StreamOperator};

/// 2-D skyline over a count-based window.
///
/// On each trigger computes the set of non-dominated points
/// (`values[0]`, `values[1]`) — point *a* dominates *b* if it is ≤ on both
/// coordinates and < on at least one (minimization skyline). Emits one
/// summary tuple per trigger whose `values[0]` is the skyline cardinality
/// and `values[1]` the minimal first coordinate. Global window state makes
/// it a monolithic *stateful* operator.
pub struct Skyline {
    window: CountWindow,
    extra_work_ns: u64,
}

impl Skyline {
    /// Creates the operator on a `length`/`slide` count window.
    pub fn new(length: usize, slide: usize, extra_work_ns: u64) -> Self {
        Skyline {
            window: CountWindow::new(length, slide),
            extra_work_ns,
        }
    }

    /// Switches to eager (partial-content) window triggering.
    pub fn eager(mut self) -> Self {
        self.window = self.window.eager();
        self
    }

    /// Computes the skyline (minimization, 2-D) of `points`.
    pub fn skyline_of(points: &[Tuple]) -> Vec<Tuple> {
        let mut result: Vec<Tuple> = Vec::new();
        'outer: for p in points {
            let (px, py) = (p.values[0], p.values[1]);
            let mut i = 0;
            while i < result.len() {
                let (qx, qy) = (result[i].values[0], result[i].values[1]);
                let q_dominates = qx <= px && qy <= py && (qx < px || qy < py);
                let p_dominates = px <= qx && py <= qy && (px < qx || py < qy);
                if q_dominates {
                    continue 'outer;
                }
                if p_dominates {
                    result.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            result.push(*p);
        }
        result
    }
}

impl StreamOperator for Skyline {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        if let Some(window) = self.window.push(item) {
            let sky = Self::skyline_of(window);
            let mut result = item;
            result.values[0] = sky.len() as f64;
            result.values[1] = sky
                .iter()
                .map(|t| t.values[0])
                .fold(f64::INFINITY, f64::min);
            out.emit_default(result);
        }
    }
    fn name(&self) -> &str {
        "skyline"
    }
}

/// Top-k over a count-based window: the k largest `values[0]`.
///
/// Emits one summary tuple per trigger: `values[0]` is the k-th largest
/// value (the top-k admission threshold), `values[1]` the largest. Global
/// window state — monolithic stateful.
pub struct TopK {
    k: usize,
    window: CountWindow,
    scratch: Vec<f64>,
    extra_work_ns: u64,
}

impl TopK {
    /// Creates the operator.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or larger than the window length.
    pub fn new(k: usize, length: usize, slide: usize, extra_work_ns: u64) -> Self {
        assert!(k >= 1 && k <= length, "k must be in 1..=length");
        TopK {
            k,
            window: CountWindow::new(length, slide),
            scratch: Vec::new(),
            extra_work_ns,
        }
    }

    /// Switches to eager (partial-content) window triggering.
    pub fn eager(mut self) -> Self {
        self.window = self.window.eager();
        self
    }
}

impl StreamOperator for TopK {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        if let Some(window) = self.window.push(item) {
            self.scratch.clear();
            self.scratch.extend(window.iter().map(|t| t.values[0]));
            // Partial selection of the k largest.
            self.scratch
                .sort_by(|a, b| b.partial_cmp(a).expect("finite attribute values"));
            let mut result = item;
            // With eager (partial) windows the buffer may hold < k items.
            let kth = self.k.min(self.scratch.len());
            result.values[0] = self.scratch[kth - 1];
            result.values[1] = self.scratch[0];
            out.emit_default(result);
        }
    }
    fn name(&self) -> &str {
        "top-k"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Tuple {
        Tuple::new(0, 0, [x, y, 0.0, 0.0])
    }

    fn drive(op: &mut dyn StreamOperator, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Outputs::new();
        let mut result = Vec::new();
        for x in inputs {
            op.process(*x, &mut out);
            result.extend(out.drain().map(|(_, t)| t));
        }
        result
    }

    #[test]
    fn skyline_of_dominated_points() {
        // (1,1) dominates everything else.
        let points = vec![pt(1.0, 1.0), pt(2.0, 2.0), pt(3.0, 1.5)];
        let sky = Skyline::skyline_of(&points);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky[0].values[0], 1.0);
    }

    #[test]
    fn skyline_of_pareto_front() {
        // Anti-chain: nothing dominates anything.
        let points = vec![pt(1.0, 3.0), pt(2.0, 2.0), pt(3.0, 1.0)];
        let sky = Skyline::skyline_of(&points);
        assert_eq!(sky.len(), 3);
    }

    #[test]
    fn skyline_removes_points_dominated_by_later_arrivals() {
        let points = vec![pt(5.0, 5.0), pt(1.0, 1.0)];
        let sky = Skyline::skyline_of(&points);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky[0].values[0], 1.0);
    }

    #[test]
    fn skyline_of_equal_points_keeps_both() {
        // Equal points do not strictly dominate each other.
        let points = vec![pt(2.0, 2.0), pt(2.0, 2.0)];
        assert_eq!(Skyline::skyline_of(&points).len(), 2);
    }

    #[test]
    fn skyline_operator_emits_per_trigger() {
        let mut op = Skyline::new(4, 2, 0);
        let inputs: Vec<Tuple> = (0..10).map(|i| pt(i as f64, (10 - i) as f64)).collect();
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 4); // triggers at 3,5,7,9
                                  // Each window of this anti-chain has all 4 points in the skyline.
        assert!(got.iter().all(|t| t.values[0] == 4.0));
    }

    #[test]
    fn topk_threshold_and_max() {
        let mut op = TopK::new(2, 5, 5, 0);
        let inputs: Vec<Tuple> = [0.1, 0.9, 0.5, 0.7, 0.3]
            .iter()
            .map(|v| pt(*v, 0.0))
            .collect();
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[0], 0.7); // 2nd largest
        assert_eq!(got[0].values[1], 0.9); // largest
    }

    #[test]
    fn topk_k_equals_window_takes_minimum_as_threshold() {
        let mut op = TopK::new(3, 3, 3, 0);
        let inputs: Vec<Tuple> = [0.4, 0.2, 0.6].iter().map(|v| pt(*v, 0.0)).collect();
        let got = drive(&mut op, &inputs);
        assert_eq!(got[0].values[0], 0.2);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=length")]
    fn topk_rejects_k_zero() {
        TopK::new(0, 5, 1, 0);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=length")]
    fn topk_rejects_k_above_window() {
        TopK::new(6, 5, 1, 0);
    }

    #[test]
    fn names() {
        assert_eq!(Skyline::new(2, 1, 0).name(), "skyline");
        assert_eq!(TopK::new(1, 2, 1, 0).name(), "top-k");
    }

    #[test]
    fn eager_topk_handles_partial_windows() {
        let mut op = TopK::new(3, 10, 1, 0).eager();
        let got = drive(&mut op, &[pt(0.5, 0.0), pt(0.9, 0.0)]);
        assert_eq!(got.len(), 2);
        // With a single buffered item, threshold == max == that item.
        assert_eq!(got[0].values[0], 0.5);
        assert_eq!(got[1].values[0], 0.5); // 2 items, k capped at 2
    }

    #[test]
    fn eager_skyline_triggers_early() {
        let mut op = Skyline::new(100, 1, 0).eager();
        let got = drive(&mut op, &[pt(1.0, 1.0)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[0], 1.0);
    }
}
