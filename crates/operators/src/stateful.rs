//! Miscellaneous stateful operators: distinct counting and change
//! detection. Both keep monolithic cross-key state and are therefore not
//! fissionable (the `stateful` flag of Algorithm 2).

use spinstreams_core::Tuple;
use spinstreams_runtime::operators::synthetic_work;
use spinstreams_runtime::{Outputs, StateSnapshot, StreamOperator};
use std::collections::HashSet;
use std::collections::VecDeque;

/// Counts distinct keys over a count-based window, emitting the cardinality
/// once per `slide` items.
pub struct DistinctCount {
    window: VecDeque<u64>,
    length: usize,
    slide: usize,
    since: usize,
    scratch: HashSet<u64>,
    extra_work_ns: u64,
    eager: bool,
}

impl DistinctCount {
    /// Creates the operator over a `length`/`slide` count window of keys.
    ///
    /// # Panics
    ///
    /// Panics if `length` or `slide` is zero.
    pub fn new(length: usize, slide: usize, extra_work_ns: u64) -> Self {
        assert!(
            length > 0 && slide > 0,
            "window parameters must be positive"
        );
        DistinctCount {
            window: VecDeque::with_capacity(length),
            length,
            slide,
            since: 0,
            scratch: HashSet::new(),
            extra_work_ns,
            eager: false,
        }
    }

    /// Switches to eager (partial-content) window triggering.
    pub fn eager(mut self) -> Self {
        self.eager = true;
        self
    }
}

impl StreamOperator for DistinctCount {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        if self.window.len() == self.length {
            self.window.pop_front();
        }
        self.window.push_back(item.key);
        self.since += 1;
        let full_enough = self.eager || self.window.len() == self.length;
        if full_enough && self.since >= self.slide {
            self.since = 0;
            self.scratch.clear();
            self.scratch.extend(self.window.iter().copied());
            let mut result = item;
            result.values[0] = self.scratch.len() as f64;
            out.emit_default(result);
        }
    }
    fn name(&self) -> &str {
        "distinct-count"
    }
    fn reset(&mut self) {
        self.window.clear();
        self.since = 0;
        self.scratch.clear();
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        let mut s = StateSnapshot::new();
        s.push_u64(self.since as u64);
        s.push_u64(self.window.len() as u64);
        for k in &self.window {
            s.push_u64(*k);
        }
        Some(s)
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        self.reset();
        let mut r = snapshot.reader();
        let (Some(since), Some(n)) = (r.read_u64(), r.read_u64()) else {
            return false;
        };
        for _ in 0..n {
            let Some(k) = r.read_u64() else {
                self.reset();
                return false;
            };
            self.window.push_back(k);
        }
        self.since = since as usize;
        true
    }
}

/// Emits an item only when its first attribute moved by more than
/// `epsilon` since the last *emitted* item — a change detector with a
/// single-cell state.
pub struct DeltaFilter {
    epsilon: f64,
    last: Option<f64>,
    extra_work_ns: u64,
}

impl DeltaFilter {
    /// Creates the operator.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f64, extra_work_ns: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be >= 0"
        );
        DeltaFilter {
            epsilon,
            last: None,
            extra_work_ns,
        }
    }
}

impl StreamOperator for DeltaFilter {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let v = item.values[0];
        let changed = match self.last {
            None => true,
            Some(prev) => (v - prev).abs() > self.epsilon,
        };
        if changed {
            self.last = Some(v);
            out.emit_default(item);
        }
    }
    fn name(&self) -> &str {
        "delta-filter"
    }
    fn reset(&mut self) {
        self.last = None;
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        let mut s = StateSnapshot::new();
        match self.last {
            Some(v) => {
                s.push_u64(1);
                s.push_f64(v);
            }
            None => s.push_u64(0),
        }
        Some(s)
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        let mut r = snapshot.reader();
        match r.read_u64() {
            Some(0) => {
                self.last = None;
                true
            }
            Some(1) => match r.read_f64() {
                Some(v) => {
                    self.last = Some(v);
                    true
                }
                None => false,
            },
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, seq: u64, v: f64) -> Tuple {
        Tuple::new(key, seq, [v, 0.0, 0.0, 0.0])
    }

    fn drive(op: &mut dyn StreamOperator, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Outputs::new();
        let mut result = Vec::new();
        for x in inputs {
            op.process(*x, &mut out);
            result.extend(out.drain().map(|(_, t)| t));
        }
        result
    }

    #[test]
    fn distinct_count_over_window() {
        let mut op = DistinctCount::new(4, 4, 0);
        let inputs = vec![t(1, 0, 0.0), t(2, 1, 0.0), t(1, 2, 0.0), t(3, 3, 0.0)];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[0], 3.0); // keys {1, 2, 3}
    }

    #[test]
    fn distinct_count_window_evicts_old_keys() {
        let mut op = DistinctCount::new(2, 1, 0);
        let inputs = vec![t(1, 0, 0.0), t(1, 1, 0.0), t(2, 2, 0.0), t(3, 3, 0.0)];
        let got = drive(&mut op, &inputs);
        // Windows: [1,1] -> 1, [1,2] -> 2, [2,3] -> 2.
        assert_eq!(
            got.iter().map(|x| x.values[0] as u64).collect::<Vec<_>>(),
            vec![1, 2, 2]
        );
    }

    #[test]
    fn delta_filter_emits_first_and_changes_only() {
        let mut op = DeltaFilter::new(0.1, 0);
        let inputs = vec![
            t(0, 0, 0.50),
            t(0, 1, 0.55), // within epsilon of 0.50
            t(0, 2, 0.70), // moved
            t(0, 3, 0.71), // within epsilon of 0.70
            t(0, 4, 0.10), // moved
        ];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.iter().map(|x| x.seq).collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn delta_filter_zero_epsilon_emits_on_any_change() {
        let mut op = DeltaFilter::new(0.0, 0);
        let inputs = vec![t(0, 0, 0.5), t(0, 1, 0.5), t(0, 2, 0.6)];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 2);
    }

    #[test]
    #[should_panic(expected = "epsilon must be >= 0")]
    fn negative_epsilon_rejected() {
        DeltaFilter::new(-0.5, 0);
    }

    #[test]
    fn eager_distinct_count_triggers_before_full() {
        let mut op = DistinctCount::new(100, 1, 0).eager();
        let got = drive(&mut op, &[t(1, 0, 0.0), t(2, 1, 0.0)]);
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].values[0], 2.0);
    }

    #[test]
    fn distinct_count_snapshot_roundtrips() {
        let inputs: Vec<Tuple> = (0..20).map(|i| t(i % 5, i, 0.0)).collect();
        let (head, tail) = inputs.split_at(10);
        let mut original = DistinctCount::new(6, 3, 0);
        drive(&mut original, head);
        let snap = original.snapshot().unwrap();
        let mut restored = DistinctCount::new(6, 3, 0);
        assert!(restored.restore(&snap));
        assert_eq!(drive(&mut original, tail), drive(&mut restored, tail));
    }

    #[test]
    fn delta_filter_snapshot_roundtrips() {
        let mut original = DeltaFilter::new(0.1, 0);
        drive(&mut original, &[t(0, 0, 0.5), t(0, 1, 0.9)]);
        let snap = original.snapshot().unwrap();
        let mut restored = DeltaFilter::new(0.1, 0);
        assert!(restored.restore(&snap));
        // Both remember last = 0.9: the next item within epsilon is muted.
        let tail = [t(0, 2, 0.95), t(0, 3, 0.2)];
        assert_eq!(drive(&mut original, &tail), drive(&mut restored, &tail));
        // A fresh (or reset) filter always emits the first item instead.
        let mut fresh = DeltaFilter::new(0.1, 0);
        assert_eq!(drive(&mut fresh, &[t(0, 2, 0.95)]).len(), 1);
    }

    #[test]
    fn names() {
        assert_eq!(DistinctCount::new(2, 1, 0).name(), "distinct-count");
        assert_eq!(DeltaFilter::new(0.1, 0).name(), "delta-filter");
    }
}
