//! The operator registry: symbolic kinds, factories and abstract metadata.
//!
//! This is the bridge between SpinStreams' abstract topology model and the
//! executable runtime — the role played in the paper by the XML `type=`
//! attributes plus the user-supplied `.class` files (§4.1). The random
//! topology generator assigns [`OperatorKind`]s to vertices, the profiler
//! measures their service times, and the code generator instantiates them
//! via [`build_operator`].

use crate::{Aggregation, WindowedAggregate, WindowedQuantile};
use spinstreams_core::{KeyDistribution, Selectivity, StateClass};
use spinstreams_runtime::StreamOperator;
use std::fmt;
use std::str::FromStr;

/// The catalogue of real-world operators (§5.1's testbed mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum OperatorKind {
    /// Stateless pass-through map.
    IdentityMap,
    /// Stateless compute-bound per-tuple transform.
    ArithmeticMap,
    /// Stateless selection (`values[0] < threshold`).
    Filter,
    /// Stateless 1→k expansion.
    FlatMap,
    /// Stateless attribute projection.
    Projection,
    /// Stateless enrichment with derived attributes.
    Enricher,
    /// Stateless probabilistic sampling.
    Sampler,
    /// Stateless re-keying.
    KeyRouter,
    /// Partitioned-stateful windowed sum.
    KeyedSum,
    /// Partitioned-stateful windowed max.
    KeyedMax,
    /// Partitioned-stateful windowed min.
    KeyedMin,
    /// Partitioned-stateful weighted moving average.
    KeyedWma,
    /// Partitioned-stateful windowed standard deviation.
    KeyedStdDev,
    /// Partitioned-stateful windowed quantile.
    KeyedQuantile,
    /// Monolithic-stateful global windowed sum.
    GlobalSum,
    /// Monolithic-stateful global weighted moving average.
    GlobalWma,
    /// Monolithic-stateful 2-D skyline query.
    Skyline,
    /// Monolithic-stateful top-k query.
    TopK,
    /// Monolithic-stateful band join (multi-input).
    BandJoin,
    /// Partitioned-stateful equi join (multi-input): matches require equal
    /// keys, so key-partitioned replicas preserve its semantics exactly.
    EquiJoin,
    /// Monolithic-stateful distinct-key counter.
    DistinctCount,
    /// Monolithic-stateful change detector.
    DeltaFilter,
}

impl OperatorKind {
    /// Every kind, in a stable order.
    pub fn all() -> &'static [OperatorKind] {
        use OperatorKind::*;
        &[
            IdentityMap,
            ArithmeticMap,
            Filter,
            FlatMap,
            Projection,
            Enricher,
            Sampler,
            KeyRouter,
            KeyedSum,
            KeyedMax,
            KeyedMin,
            KeyedWma,
            KeyedStdDev,
            KeyedQuantile,
            GlobalSum,
            GlobalWma,
            Skyline,
            TopK,
            BandJoin,
            EquiJoin,
            DistinctCount,
            DeltaFilter,
        ]
    }

    /// Stable textual label (used in XML files and reports).
    pub fn label(self) -> &'static str {
        use OperatorKind::*;
        match self {
            IdentityMap => "identity-map",
            ArithmeticMap => "arithmetic-map",
            Filter => "filter",
            FlatMap => "flatmap",
            Projection => "projection",
            Enricher => "enricher",
            Sampler => "sampler",
            KeyRouter => "key-router",
            KeyedSum => "keyed-sum",
            KeyedMax => "keyed-max",
            KeyedMin => "keyed-min",
            KeyedWma => "keyed-wma",
            KeyedStdDev => "keyed-stddev",
            KeyedQuantile => "keyed-quantile",
            GlobalSum => "global-sum",
            GlobalWma => "global-wma",
            Skyline => "skyline",
            TopK => "top-k",
            BandJoin => "band-join",
            EquiJoin => "equi-join",
            DistinctCount => "distinct-count",
            DeltaFilter => "delta-filter",
        }
    }

    /// True for the stateless kinds (fissionable with round-robin).
    pub fn is_stateless(self) -> bool {
        use OperatorKind::*;
        matches!(
            self,
            IdentityMap
                | ArithmeticMap
                | Filter
                | FlatMap
                | Projection
                | Enricher
                | Sampler
                | KeyRouter
        )
    }

    /// True for the partitioned-stateful kinds (fissionable by key).
    ///
    /// The equi join is included: a match requires both sides to carry the
    /// same key, so replicas owning disjoint key sets never miss a pair.
    /// The band join is *not* — its matches cross key boundaries.
    pub fn is_partitioned(self) -> bool {
        use OperatorKind::*;
        matches!(
            self,
            KeyedSum | KeyedMax | KeyedMin | KeyedWma | KeyedStdDev | KeyedQuantile | EquiJoin
        )
    }

    /// True for operators that make sense only with more than one input
    /// stream (joins); Algorithm 5 assigns them only to vertices with
    /// in-degree ≥ 2.
    pub fn requires_multi_input(self) -> bool {
        matches!(self, OperatorKind::BandJoin | OperatorKind::EquiJoin)
    }

    /// The abstract state class of this kind, used to build
    /// [`spinstreams_core::OperatorSpec`]s.
    ///
    /// `keys` is the key-frequency distribution attached to
    /// partitioned-stateful kinds (ignored otherwise).
    pub fn state_class(self, keys: &KeyDistribution) -> StateClass {
        if self.is_stateless() {
            StateClass::Stateless
        } else if self.is_partitioned() {
            StateClass::PartitionedStateful { keys: keys.clone() }
        } else {
            StateClass::Stateful
        }
    }

    /// The *nominal* selectivity implied by the parameters (§3.4): filters
    /// and samplers scale the output down, flatmaps scale it up, windowed
    /// operators consume `slide` inputs per output. Joins return identity —
    /// their selectivity is workload-dependent and must be profiled.
    pub fn nominal_selectivity(self, params: &OperatorParams) -> Selectivity {
        use OperatorKind::*;
        match self {
            Filter => Selectivity::output(params.threshold),
            Sampler => Selectivity::output(params.probability),
            FlatMap => Selectivity::output(params.fanout as f64),
            KeyedSum | KeyedMax | KeyedMin | KeyedWma | KeyedStdDev | KeyedQuantile | GlobalSum
            | GlobalWma | Skyline | TopK | DistinctCount => Selectivity::input(params.slide as f64),
            _ => Selectivity::ONE,
        }
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for OperatorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OperatorKind::all()
            .iter()
            .find(|k| k.label() == s)
            .copied()
            .ok_or_else(|| format!("unknown operator kind {s:?}"))
    }
}

/// Parameters consumed by the operator factories.
///
/// One flat bag with sensible defaults keeps XML/topology plumbing simple;
/// each kind reads only the fields it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorParams {
    /// Calibrated extra CPU time per item, ns.
    pub work_ns: u64,
    /// Count-window length.
    pub window: usize,
    /// Count-window slide.
    pub slide: usize,
    /// Filter threshold in `(0, 1]`.
    pub threshold: f64,
    /// Sampler keep-probability in `(0, 1]`.
    pub probability: f64,
    /// FlatMap fanout.
    pub fanout: usize,
    /// Projection attribute count.
    pub keep: usize,
    /// KeyRouter bucket count.
    pub num_keys: u64,
    /// Top-k `k`.
    pub k: usize,
    /// Band-join half width.
    pub band: f64,
    /// Quantile in `[0, 1]`.
    pub quantile: f64,
    /// ArithmeticMap rounds.
    pub rounds: u32,
    /// DeltaFilter epsilon.
    pub epsilon: f64,
}

impl Default for OperatorParams {
    fn default() -> Self {
        OperatorParams {
            work_ns: 0,
            window: 100,
            slide: 10,
            threshold: 0.5,
            probability: 0.5,
            fanout: 2,
            keep: 2,
            num_keys: 16,
            k: 5,
            band: 0.05,
            quantile: 0.5,
            rounds: 8,
            epsilon: 0.1,
        }
    }
}

impl OperatorParams {
    /// Serializes into the flat `name -> value` map carried by
    /// [`spinstreams_core::OperatorSpec::params`].
    pub fn to_spec_params(&self) -> std::collections::BTreeMap<String, f64> {
        let mut m = std::collections::BTreeMap::new();
        m.insert("work_ns".into(), self.work_ns as f64);
        m.insert("window".into(), self.window as f64);
        m.insert("slide".into(), self.slide as f64);
        m.insert("threshold".into(), self.threshold);
        m.insert("probability".into(), self.probability);
        m.insert("fanout".into(), self.fanout as f64);
        m.insert("keep".into(), self.keep as f64);
        m.insert("num_keys".into(), self.num_keys as f64);
        m.insert("k".into(), self.k as f64);
        m.insert("band".into(), self.band);
        m.insert("quantile".into(), self.quantile);
        m.insert("rounds".into(), self.rounds as f64);
        m.insert("epsilon".into(), self.epsilon);
        m
    }

    /// Reconstructs parameters from an [`spinstreams_core::OperatorSpec`]
    /// params map; missing entries fall back to the defaults.
    pub fn from_spec_params(m: &std::collections::BTreeMap<String, f64>) -> Self {
        let d = OperatorParams::default();
        let get = |key: &str, fallback: f64| m.get(key).copied().unwrap_or(fallback);
        OperatorParams {
            work_ns: get("work_ns", d.work_ns as f64) as u64,
            window: get("window", d.window as f64) as usize,
            slide: get("slide", d.slide as f64) as usize,
            threshold: get("threshold", d.threshold),
            probability: get("probability", d.probability),
            fanout: get("fanout", d.fanout as f64) as usize,
            keep: get("keep", d.keep as f64) as usize,
            num_keys: get("num_keys", d.num_keys as f64) as u64,
            k: get("k", d.k as f64) as usize,
            band: get("band", d.band),
            quantile: get("quantile", d.quantile),
            rounds: get("rounds", d.rounds as f64) as u32,
            epsilon: get("epsilon", d.epsilon),
        }
    }
}

/// Instantiates a runnable operator of the given kind.
pub fn build_operator(kind: OperatorKind, params: &OperatorParams) -> Box<dyn StreamOperator> {
    use OperatorKind::*;
    let p = params;
    match kind {
        IdentityMap => Box::new(crate::IdentityMap::new(p.work_ns)),
        ArithmeticMap => Box::new(crate::ArithmeticMap::new(p.rounds, p.work_ns)),
        Filter => Box::new(crate::Filter::new(p.threshold, p.work_ns)),
        FlatMap => Box::new(crate::FlatMap::new(p.fanout, p.work_ns)),
        Projection => Box::new(crate::Projection::new(p.keep, p.work_ns)),
        Enricher => Box::new(crate::Enricher::new(p.work_ns)),
        Sampler => Box::new(crate::Sampler::new(p.probability, p.work_ns)),
        KeyRouter => Box::new(crate::KeyRouter::new(p.num_keys, p.work_ns)),
        // Windowed kinds are built *eager* (partial-window triggering) so
        // their steady-state output rate 1/slide holds from the first item,
        // matching the §3.4 selectivity model without a fill-up transient.
        KeyedSum => Box::new(
            WindowedAggregate::keyed(Aggregation::Sum, p.window, p.slide, p.work_ns).eager(),
        ),
        KeyedMax => Box::new(
            WindowedAggregate::keyed(Aggregation::Max, p.window, p.slide, p.work_ns).eager(),
        ),
        KeyedMin => Box::new(
            WindowedAggregate::keyed(Aggregation::Min, p.window, p.slide, p.work_ns).eager(),
        ),
        KeyedWma => Box::new(
            WindowedAggregate::keyed(
                Aggregation::WeightedMovingAverage,
                p.window,
                p.slide,
                p.work_ns,
            )
            .eager(),
        ),
        KeyedStdDev => Box::new(
            WindowedAggregate::keyed(Aggregation::StdDev, p.window, p.slide, p.work_ns).eager(),
        ),
        KeyedQuantile => {
            Box::new(WindowedQuantile::keyed(p.quantile, p.window, p.slide, p.work_ns).eager())
        }
        GlobalSum => Box::new(
            WindowedAggregate::global(Aggregation::Sum, p.window, p.slide, p.work_ns).eager(),
        ),
        GlobalWma => Box::new(
            WindowedAggregate::global(
                Aggregation::WeightedMovingAverage,
                p.window,
                p.slide,
                p.work_ns,
            )
            .eager(),
        ),
        Skyline => Box::new(crate::Skyline::new(p.window, p.slide, p.work_ns).eager()),
        TopK => Box::new(crate::TopK::new(p.k.min(p.window), p.window, p.slide, p.work_ns).eager()),
        BandJoin => Box::new(crate::BandJoin::new(p.band, p.window, p.work_ns)),
        EquiJoin => Box::new(crate::EquiJoin::new(p.window, p.work_ns)),
        DistinctCount => Box::new(crate::DistinctCount::new(p.window, p.slide, p.work_ns).eager()),
        DeltaFilter => Box::new(crate::DeltaFilter::new(p.epsilon, p.work_ns)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_runtime::{profile_operator, sample_stream};

    #[test]
    fn catalogue_has_at_least_twenty_kinds() {
        // §5.1: "we developed 20 different real-world operators".
        assert!(OperatorKind::all().len() >= 20);
    }

    #[test]
    fn labels_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for k in OperatorKind::all() {
            assert!(seen.insert(k.label()), "duplicate label {}", k.label());
            assert_eq!(k.label().parse::<OperatorKind>().unwrap(), *k);
            assert_eq!(format!("{k}"), k.label());
        }
        assert!("nope".parse::<OperatorKind>().is_err());
    }

    #[test]
    fn state_classification_partitions_catalogue() {
        let keys = KeyDistribution::uniform(4);
        let mut stateless = 0;
        let mut partitioned = 0;
        let mut stateful = 0;
        for k in OperatorKind::all() {
            match k.state_class(&keys) {
                StateClass::Stateless => {
                    stateless += 1;
                    assert!(k.is_stateless());
                }
                StateClass::PartitionedStateful { .. } => {
                    partitioned += 1;
                    assert!(k.is_partitioned());
                }
                StateClass::Stateful => {
                    stateful += 1;
                    assert!(!k.is_stateless() && !k.is_partitioned());
                }
            }
        }
        assert_eq!(stateless, 8);
        assert_eq!(partitioned, 7);
        assert_eq!(stateful, 7);
    }

    #[test]
    fn joins_require_multi_input() {
        for k in OperatorKind::all() {
            assert_eq!(
                k.requires_multi_input(),
                matches!(k, OperatorKind::BandJoin | OperatorKind::EquiJoin)
            );
        }
    }

    #[test]
    fn nominal_selectivities() {
        let p = OperatorParams {
            threshold: 0.3,
            probability: 0.2,
            fanout: 4,
            slide: 10,
            ..Default::default()
        };
        assert_eq!(
            OperatorKind::Filter.nominal_selectivity(&p),
            Selectivity::output(0.3)
        );
        assert_eq!(
            OperatorKind::Sampler.nominal_selectivity(&p),
            Selectivity::output(0.2)
        );
        assert_eq!(
            OperatorKind::FlatMap.nominal_selectivity(&p),
            Selectivity::output(4.0)
        );
        assert_eq!(
            OperatorKind::KeyedSum.nominal_selectivity(&p),
            Selectivity::input(10.0)
        );
        assert_eq!(
            OperatorKind::IdentityMap.nominal_selectivity(&p),
            Selectivity::ONE
        );
        assert_eq!(
            OperatorKind::BandJoin.nominal_selectivity(&p),
            Selectivity::ONE
        );
    }

    #[test]
    fn every_kind_builds_and_processes() {
        let params = OperatorParams {
            window: 20,
            slide: 5,
            ..Default::default()
        };
        let inputs = sample_stream(200, 8, 42);
        for kind in OperatorKind::all() {
            let mut op = build_operator(*kind, &params);
            let prof = profile_operator(op.as_mut(), &inputs, 50);
            assert!(prof.mean_service_time.as_secs() >= 0.0, "{kind} profiled");
        }
    }

    #[test]
    fn windowed_kinds_profile_selectivity_near_nominal() {
        let params = OperatorParams {
            window: 10,
            slide: 5,
            ..Default::default()
        };
        let inputs = sample_stream(2000, 1, 3);
        let mut op = build_operator(OperatorKind::GlobalSum, &params);
        let prof = profile_operator(op.as_mut(), &inputs, 100);
        // One output per 5 inputs -> output selectivity ≈ 0.2.
        assert!(
            (prof.output_selectivity - 0.2).abs() < 0.05,
            "selectivity {}",
            prof.output_selectivity
        );
    }

    #[test]
    fn params_roundtrip_through_spec_map() {
        let p = OperatorParams {
            work_ns: 1234,
            window: 77,
            slide: 7,
            threshold: 0.25,
            probability: 0.6,
            fanout: 3,
            keep: 1,
            num_keys: 9,
            k: 4,
            band: 0.02,
            quantile: 0.9,
            rounds: 5,
            epsilon: 0.3,
        };
        let back = OperatorParams::from_spec_params(&p.to_spec_params());
        assert_eq!(p, back);
        // Missing entries fall back to defaults.
        let empty = std::collections::BTreeMap::new();
        assert_eq!(
            OperatorParams::from_spec_params(&empty),
            OperatorParams::default()
        );
    }

    #[test]
    fn work_ns_raises_profiled_service_time() {
        let base = OperatorParams::default();
        let heavy = OperatorParams {
            work_ns: 200_000,
            ..base.clone()
        };
        let inputs = sample_stream(100, 8, 5);
        let mut fast = build_operator(OperatorKind::IdentityMap, &base);
        let mut slow = build_operator(OperatorKind::IdentityMap, &heavy);
        let pf = profile_operator(fast.as_mut(), &inputs, 10);
        let ps = profile_operator(slow.as_mut(), &inputs, 10);
        assert!(
            ps.mean_service_time.as_secs() > pf.mean_service_time.as_secs() + 100e-6,
            "slow {} vs fast {}",
            ps.mean_service_time,
            pf.mean_service_time
        );
    }
}
