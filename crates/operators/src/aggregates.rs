//! Count-based windowed aggregations (§5.1): weighted moving average, sum,
//! max, min, standard deviation, and quantiles.
//!
//! Each operator triggers once per `slide` inputs over the last `length`
//! items and emits a single aggregate tuple, giving input selectivity
//! `slide` (§3.4). In *keyed* mode the state is one window per key —
//! partitioned-stateful, fissionable by key assignment; in *global* mode
//! there is a single window — monolithic stateful, not fissionable.

use crate::window::{CountWindow, KeyedWindows};
use spinstreams_core::Tuple;
use spinstreams_runtime::operators::synthetic_work;
use spinstreams_runtime::{Outputs, StateSnapshot, StreamOperator};

/// The aggregation function applied to a triggered window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Sum of `values[0]`.
    Sum,
    /// Maximum of `values[0]`.
    Max,
    /// Minimum of `values[0]`.
    Min,
    /// Weighted moving average of `values[0]` with linearly increasing
    /// weights (most recent item weighs most).
    WeightedMovingAverage,
    /// Standard deviation of `values[0]`.
    StdDev,
}

impl Aggregation {
    /// Applies the aggregation to a window.
    pub fn apply(self, window: &[Tuple]) -> f64 {
        debug_assert!(!window.is_empty());
        match self {
            Aggregation::Sum => window.iter().map(|t| t.values[0]).sum(),
            Aggregation::Max => window
                .iter()
                .map(|t| t.values[0])
                .fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Min => window
                .iter()
                .map(|t| t.values[0])
                .fold(f64::INFINITY, f64::min),
            Aggregation::WeightedMovingAverage => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (i, t) in window.iter().enumerate() {
                    let w = (i + 1) as f64;
                    num += w * t.values[0];
                    den += w;
                }
                num / den
            }
            Aggregation::StdDev => {
                let n = window.len() as f64;
                let mean = window.iter().map(|t| t.values[0]).sum::<f64>() / n;
                let var = window
                    .iter()
                    .map(|t| (t.values[0] - mean).powi(2))
                    .sum::<f64>()
                    / n;
                var.sqrt()
            }
        }
    }

    /// A short name for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Aggregation::Sum => "sum",
            Aggregation::Max => "max",
            Aggregation::Min => "min",
            Aggregation::WeightedMovingAverage => "wma",
            Aggregation::StdDev => "stddev",
        }
    }
}

enum WindowState {
    Keyed(KeyedWindows),
    Global(CountWindow),
}

impl WindowState {
    fn reset(&mut self) {
        match self {
            WindowState::Keyed(kw) => kw.clear(),
            WindowState::Global(w) => w.clear(),
        }
    }

    /// Tag + payload encoding; the tag guards restore against a snapshot
    /// captured in the other mode.
    fn snapshot(&self) -> StateSnapshot {
        let mut s = StateSnapshot::new();
        match self {
            WindowState::Keyed(kw) => {
                s.push_u64(1);
                kw.encode_into(&mut s);
            }
            WindowState::Global(w) => {
                s.push_u64(0);
                w.encode_into(&mut s);
            }
        }
        s
    }

    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        let mut r = snapshot.reader();
        match (r.read_u64(), &mut *self) {
            (Some(1), WindowState::Keyed(kw)) => kw.decode_from(&mut r),
            (Some(0), WindowState::Global(w)) => w.decode_from(&mut r),
            _ => false,
        }
    }

    /// Per-key extraction for live repartitioning — keyed mode only (the
    /// global window is monolithic state and must never be key-split).
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        match self {
            WindowState::Keyed(kw) => {
                let mut s = StateSnapshot::new();
                s.push_u64(1);
                kw.extract_keys_into(keys, &mut s);
                Some(s)
            }
            WindowState::Global(_) => None,
        }
    }

    /// Merges state extracted by [`extract_keys`](Self::extract_keys) on
    /// another replica; the mode tag guards against cross-mode injection.
    fn inject(&mut self, snapshot: &StateSnapshot) -> bool {
        let mut r = snapshot.reader();
        match (r.read_u64(), &mut *self) {
            (Some(1), WindowState::Keyed(kw)) => kw.merge_from(&mut r),
            _ => false,
        }
    }
}

/// A count-based windowed aggregation operator.
///
/// Emits, on each window trigger, a tuple whose `values[0]` is the
/// aggregate (key and seq copied from the triggering item).
pub struct WindowedAggregate {
    agg: Aggregation,
    state: WindowState,
    extra_work_ns: u64,
    name: String,
}

impl WindowedAggregate {
    /// Keyed (partitioned-stateful) variant: one window per key.
    pub fn keyed(agg: Aggregation, length: usize, slide: usize, extra_work_ns: u64) -> Self {
        WindowedAggregate {
            agg,
            state: WindowState::Keyed(KeyedWindows::new(length, slide)),
            extra_work_ns,
            name: format!("keyed-{}", agg.label()),
        }
    }

    /// Global (stateful) variant: a single window over the whole stream.
    pub fn global(agg: Aggregation, length: usize, slide: usize, extra_work_ns: u64) -> Self {
        WindowedAggregate {
            agg,
            state: WindowState::Global(CountWindow::new(length, slide)),
            extra_work_ns,
            name: format!("global-{}", agg.label()),
        }
    }

    /// Switches to eager (partial-content) window triggering; see
    /// [`CountWindow::eager`].
    pub fn eager(mut self) -> Self {
        self.state = match self.state {
            WindowState::Keyed(kw) => WindowState::Keyed(kw.eager()),
            WindowState::Global(w) => WindowState::Global(w.eager()),
        };
        self
    }
}

impl StreamOperator for WindowedAggregate {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let triggered = match &mut self.state {
            WindowState::Keyed(kw) => kw.push(item),
            WindowState::Global(w) => w.push(item),
        };
        if let Some(window) = triggered {
            let value = self.agg.apply(window);
            let mut result = item;
            result.values[0] = value;
            out.emit_default(result);
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn reset(&mut self) {
        self.state.reset();
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        Some(self.state.snapshot())
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        self.state.restore(snapshot)
    }
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        self.state.extract_keys(keys)
    }
    fn inject_state(&mut self, snapshot: &StateSnapshot) -> bool {
        self.state.inject(snapshot)
    }
}

/// Windowed quantile: emits the `q`-quantile of `values[0]` over the window
/// (computed by sorting a scratch copy — a deliberately compute-heavy
/// aggregate, like the paper's quantile operator).
pub struct WindowedQuantile {
    q: f64,
    state: WindowState,
    scratch: Vec<f64>,
    extra_work_ns: u64,
    name: String,
}

impl WindowedQuantile {
    /// Keyed variant.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn keyed(q: f64, length: usize, slide: usize, extra_work_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        WindowedQuantile {
            q,
            state: WindowState::Keyed(KeyedWindows::new(length, slide)),
            scratch: Vec::new(),
            extra_work_ns,
            name: "keyed-quantile".into(),
        }
    }

    /// Global variant.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn global(q: f64, length: usize, slide: usize, extra_work_ns: u64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        WindowedQuantile {
            q,
            state: WindowState::Global(CountWindow::new(length, slide)),
            scratch: Vec::new(),
            extra_work_ns,
            name: "global-quantile".into(),
        }
    }

    /// Switches to eager (partial-content) window triggering.
    pub fn eager(mut self) -> Self {
        self.state = match self.state {
            WindowState::Keyed(kw) => WindowState::Keyed(kw.eager()),
            WindowState::Global(w) => WindowState::Global(w.eager()),
        };
        self
    }
}

impl StreamOperator for WindowedQuantile {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let triggered = match &mut self.state {
            WindowState::Keyed(kw) => kw.push(item),
            WindowState::Global(w) => w.push(item),
        };
        if let Some(window) = triggered {
            self.scratch.clear();
            self.scratch.extend(window.iter().map(|t| t.values[0]));
            self.scratch
                .sort_by(|a, b| a.partial_cmp(b).expect("attribute values are finite"));
            let idx = ((self.scratch.len() - 1) as f64 * self.q).round() as usize;
            let mut result = item;
            result.values[0] = self.scratch[idx];
            out.emit_default(result);
        }
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn reset(&mut self) {
        self.state.reset();
        self.scratch.clear();
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        Some(self.state.snapshot())
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        self.state.restore(snapshot)
    }
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        self.state.extract_keys(keys)
    }
    fn inject_state(&mut self, snapshot: &StateSnapshot) -> bool {
        self.state.inject(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64, seq: u64) -> Tuple {
        Tuple::splat(0, seq, v)
    }

    fn drive(op: &mut dyn StreamOperator, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Outputs::new();
        let mut result = Vec::new();
        for x in inputs {
            op.process(*x, &mut out);
            result.extend(out.drain().map(|(_, t)| t));
        }
        result
    }

    #[test]
    fn aggregation_functions_are_correct() {
        let w: Vec<Tuple> = [1.0, 3.0, 2.0]
            .iter()
            .enumerate()
            .map(|(i, v)| t(*v, i as u64))
            .collect();
        assert_eq!(Aggregation::Sum.apply(&w), 6.0);
        assert_eq!(Aggregation::Max.apply(&w), 3.0);
        assert_eq!(Aggregation::Min.apply(&w), 1.0);
        // WMA weights 1,2,3: (1 + 6 + 6) / 6 = 13/6.
        assert!((Aggregation::WeightedMovingAverage.apply(&w) - 13.0 / 6.0).abs() < 1e-12);
        // StdDev of {1,3,2}: mean 2, var 2/3.
        assert!((Aggregation::StdDev.apply(&w) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn global_sum_emits_once_per_slide() {
        let mut op = WindowedAggregate::global(Aggregation::Sum, 4, 2, 0);
        let inputs: Vec<Tuple> = (0..12).map(|i| t(1.0, i)).collect();
        let got = drive(&mut op, &inputs);
        // Triggers at items 3,5,7,9,11 -> 5 outputs, each summing 4 ones.
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|x| x.values[0] == 4.0));
    }

    #[test]
    fn input_selectivity_is_slide() {
        let mut op = WindowedAggregate::global(Aggregation::Max, 10, 5, 0);
        let inputs: Vec<Tuple> = (0..1000).map(|i| t(0.5, i)).collect();
        let got = drive(&mut op, &inputs);
        // ~1000/5 outputs (minus window fill).
        assert_eq!(got.len(), (1000 - 10) / 5 + 1);
    }

    #[test]
    fn keyed_aggregate_isolates_keys() {
        let mut op = WindowedAggregate::keyed(Aggregation::Sum, 2, 2, 0);
        let inputs = vec![
            Tuple::splat(1, 0, 10.0),
            Tuple::splat(2, 1, 1.0),
            Tuple::splat(1, 2, 10.0),
            Tuple::splat(2, 3, 1.0),
        ];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 2);
        let by_key: std::collections::HashMap<u64, f64> =
            got.iter().map(|t| (t.key, t.values[0])).collect();
        assert_eq!(by_key[&1], 20.0);
        assert_eq!(by_key[&2], 2.0);
    }

    #[test]
    fn wma_weights_recent_items_more() {
        let mut op = WindowedAggregate::global(Aggregation::WeightedMovingAverage, 3, 3, 0);
        // Increasing series: WMA > plain mean.
        let inputs = vec![t(1.0, 0), t(2.0, 1), t(3.0, 2)];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 1);
        assert!(got[0].values[0] > 2.0);
    }

    #[test]
    fn quantile_median_of_window() {
        let mut op = WindowedQuantile::global(0.5, 5, 5, 0);
        let inputs: Vec<Tuple> = [5.0, 1.0, 4.0, 2.0, 3.0]
            .iter()
            .enumerate()
            .map(|(i, v)| t(*v, i as u64))
            .collect();
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[0], 3.0);
    }

    #[test]
    fn quantile_extremes() {
        let inputs: Vec<Tuple> = (0..10).map(|i| t(i as f64, i as u64)).collect();
        let mut p0 = WindowedQuantile::global(0.0, 10, 10, 0);
        assert_eq!(drive(&mut p0, &inputs)[0].values[0], 0.0);
        let mut p100 = WindowedQuantile::global(1.0, 10, 10, 0);
        assert_eq!(drive(&mut p100, &inputs)[0].values[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_out_of_range_rejected() {
        WindowedQuantile::global(1.5, 10, 10, 0);
    }

    #[test]
    fn keyed_quantile_works() {
        let mut op = WindowedQuantile::keyed(0.5, 3, 3, 0);
        let inputs = vec![
            Tuple::splat(7, 0, 1.0),
            Tuple::splat(7, 1, 9.0),
            Tuple::splat(7, 2, 5.0),
        ];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[0], 5.0);
        assert_eq!(got[0].key, 7);
    }

    #[test]
    fn eager_aggregate_emits_from_the_start() {
        let mut op = WindowedAggregate::global(Aggregation::Sum, 100, 2, 0).eager();
        let inputs: Vec<Tuple> = (0..10).map(|i| t(1.0, i)).collect();
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 5, "one output per slide from item 2 on");
        // Partial-window sums grow as the buffer fills.
        assert_eq!(got[0].values[0], 2.0);
        assert_eq!(got[4].values[0], 10.0);
    }

    #[test]
    fn snapshot_restore_resumes_identical_outputs() {
        // Drive a keyed aggregate halfway, snapshot, restore into a fresh
        // instance, and check both emit identical outputs from there on.
        let inputs: Vec<Tuple> = (0..40).map(|i| Tuple::splat(i % 3, i, i as f64)).collect();
        let (head, tail) = inputs.split_at(20);
        let mut original = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        drive(&mut original, head);
        let snap = original.snapshot().expect("stateful operators snapshot");
        let mut restored = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        assert!(restored.restore(&snap));
        assert_eq!(drive(&mut original, tail), drive(&mut restored, tail));
    }

    #[test]
    fn extract_inject_roundtrip_preserves_keyed_outputs() {
        // Split a keyed aggregate's keys across two replicas mid-stream
        // via extract_keys/inject_state; the pair must jointly emit what
        // the unsplit instance would.
        let inputs: Vec<Tuple> = (0..30).map(|i| Tuple::splat(i % 2, i, i as f64)).collect();
        let (head, tail) = inputs.split_at(16);
        let mut old_owner = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        let mut reference = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        drive(&mut old_owner, head);
        drive(&mut reference, head);
        let moved = old_owner.extract_keys(&[1]).expect("keyed mode extracts");
        let mut new_owner = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        assert!(new_owner.inject_state(&moved));
        let mut split_out = Vec::new();
        for t in tail {
            let owner: &mut WindowedAggregate = if t.key == 1 {
                &mut new_owner
            } else {
                &mut old_owner
            };
            split_out.extend(drive(owner, std::slice::from_ref(t)));
        }
        assert_eq!(split_out, drive(&mut reference, tail));
    }

    #[test]
    fn global_mode_refuses_key_extraction() {
        let mut op = WindowedAggregate::global(Aggregation::Sum, 4, 2, 0);
        drive(&mut op, &(0..8).map(|i| t(1.0, i)).collect::<Vec<_>>());
        assert!(
            op.extract_keys(&[0]).is_none(),
            "monolithic state must not split"
        );
        assert!(!op.inject_state(&StateSnapshot::new()));
    }

    #[test]
    fn restore_rejects_wrong_mode_snapshot() {
        let mut global = WindowedAggregate::global(Aggregation::Sum, 4, 2, 0);
        let snap = global.snapshot().unwrap();
        let mut keyed = WindowedAggregate::keyed(Aggregation::Sum, 4, 2, 0);
        assert!(!keyed.restore(&snap), "mode tag must guard restore");
    }

    #[test]
    fn reset_clears_window_state() {
        let mut op = WindowedQuantile::global(0.5, 4, 2, 0);
        drive(
            &mut op,
            &(0..10).map(|i| t(i as f64, i)).collect::<Vec<_>>(),
        );
        op.reset();
        // A reset operator behaves like a fresh one: no trigger until the
        // window refills.
        let got = drive(&mut op, &(0..3).map(|i| t(i as f64, i)).collect::<Vec<_>>());
        assert!(got.is_empty());
    }

    #[test]
    fn operator_names_distinguish_modes() {
        assert_eq!(
            WindowedAggregate::keyed(Aggregation::Sum, 2, 1, 0).name(),
            "keyed-sum"
        );
        assert_eq!(
            WindowedAggregate::global(Aggregation::Max, 2, 1, 0).name(),
            "global-max"
        );
        assert_eq!(
            WindowedQuantile::keyed(0.5, 2, 1, 0).name(),
            "keyed-quantile"
        );
    }
}
