//! Stateless tuple-by-tuple operators: maps, filters, flatmaps, projections
//! (§5.1: "stateless operators like filters and maps, which apply
//! transformations on a tuple-by-tuple basis").
//!
//! All of them are trivially fissionable with round-robin routing
//! ([`spinstreams_core::StateClass::Stateless`]).

use spinstreams_core::{Tuple, TUPLE_ARITY};
use spinstreams_runtime::operators::synthetic_work;
use spinstreams_runtime::{Outputs, StreamOperator};

/// Forwards tuples unchanged (plus optional calibrated extra work).
#[derive(Debug, Clone)]
pub struct IdentityMap {
    extra_work_ns: u64,
}

impl IdentityMap {
    /// Creates the operator with `extra_work_ns` of busy CPU per item.
    pub fn new(extra_work_ns: u64) -> Self {
        IdentityMap { extra_work_ns }
    }
}

impl StreamOperator for IdentityMap {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "identity-map"
    }
}

/// Applies a fixed-point polynomial transformation to every attribute —
/// a compute-bound map whose intrinsic cost scales with `rounds`.
#[derive(Debug, Clone)]
pub struct ArithmeticMap {
    rounds: u32,
    extra_work_ns: u64,
}

impl ArithmeticMap {
    /// `rounds` iterations of the polynomial per attribute.
    pub fn new(rounds: u32, extra_work_ns: u64) -> Self {
        ArithmeticMap {
            rounds,
            extra_work_ns,
        }
    }
}

impl StreamOperator for ArithmeticMap {
    fn process(&mut self, mut item: Tuple, out: &mut Outputs) {
        for v in item.values.iter_mut() {
            let mut x = *v;
            for _ in 0..self.rounds {
                // A contraction keeping x in [0, 1): cheap, non-optimizable
                // away, numerically stable.
                x = (x * x + 0.251).fract();
            }
            *v = x;
        }
        synthetic_work(self.extra_work_ns);
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "arithmetic-map"
    }
}

/// Drops tuples whose first attribute is at or above a threshold.
///
/// With attributes uniform in `[0, 1)`, the output selectivity equals the
/// threshold (§3.4).
#[derive(Debug, Clone)]
pub struct Filter {
    threshold: f64,
    extra_work_ns: u64,
}

impl Filter {
    /// Keeps items with `values[0] < threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not in `(0, 1]`.
    pub fn new(threshold: f64, extra_work_ns: u64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "filter threshold must be in (0, 1], got {threshold}"
        );
        Filter {
            threshold,
            extra_work_ns,
        }
    }

    /// The expected output selectivity on uniform input.
    pub fn selectivity(&self) -> f64 {
        self.threshold
    }
}

impl StreamOperator for Filter {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        if item.values[0] < self.threshold {
            out.emit_default(item);
        }
    }
    fn name(&self) -> &str {
        "filter"
    }
}

/// Emits `fanout` derived tuples per input (output selectivity `> 1`).
#[derive(Debug, Clone)]
pub struct FlatMap {
    fanout: usize,
    extra_work_ns: u64,
}

impl FlatMap {
    /// Emits `fanout` tuples per input.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn new(fanout: usize, extra_work_ns: u64) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        FlatMap {
            fanout,
            extra_work_ns,
        }
    }
}

impl StreamOperator for FlatMap {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        for i in 0..self.fanout {
            let mut t = item;
            t.values[1] = i as f64;
            out.emit_default(t);
        }
    }
    fn name(&self) -> &str {
        "flatmap"
    }
}

/// Keeps only the first `keep` attributes, zeroing the rest.
#[derive(Debug, Clone)]
pub struct Projection {
    keep: usize,
    extra_work_ns: u64,
}

impl Projection {
    /// Projects onto the first `keep` attributes.
    ///
    /// # Panics
    ///
    /// Panics if `keep` is zero or exceeds [`TUPLE_ARITY`].
    pub fn new(keep: usize, extra_work_ns: u64) -> Self {
        assert!(
            (1..=TUPLE_ARITY).contains(&keep),
            "keep must be in 1..={TUPLE_ARITY}"
        );
        Projection {
            keep,
            extra_work_ns,
        }
    }
}

impl StreamOperator for Projection {
    fn process(&mut self, mut item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        for v in item.values.iter_mut().skip(self.keep) {
            *v = 0.0;
        }
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "projection"
    }
}

/// Adds derived attributes (mean and range of the existing ones) —
/// a lightweight enrichment stage.
#[derive(Debug, Clone)]
pub struct Enricher {
    extra_work_ns: u64,
}

impl Enricher {
    /// Creates the operator.
    pub fn new(extra_work_ns: u64) -> Self {
        Enricher { extra_work_ns }
    }
}

impl StreamOperator for Enricher {
    fn process(&mut self, mut item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let mean = item.sum() / TUPLE_ARITY as f64;
        let max = item.values.iter().cloned().fold(f64::MIN, f64::max);
        let min = item.values.iter().cloned().fold(f64::MAX, f64::min);
        item.values[2] = mean;
        item.values[3] = max - min;
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "enricher"
    }
}

/// Probabilistic sampler: forwards each item with probability `p`,
/// deterministically derived from the tuple content (so replicas agree).
#[derive(Debug, Clone)]
pub struct Sampler {
    p: f64,
    extra_work_ns: u64,
}

impl Sampler {
    /// Keeps a fraction `p` of the items.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn new(p: f64, extra_work_ns: u64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "sampling rate must be in (0, 1]");
        Sampler { p, extra_work_ns }
    }
}

impl StreamOperator for Sampler {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        // Hash the sequence number into [0, 1).
        let h = item
            .seq
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(31)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < self.p {
            out.emit_default(item);
        }
    }
    fn name(&self) -> &str {
        "sampler"
    }
}

/// Re-keys tuples from their attribute content (e.g. ahead of a
/// partitioned-stateful aggregation over derived groups).
#[derive(Debug, Clone)]
pub struct KeyRouter {
    num_keys: u64,
    extra_work_ns: u64,
}

impl KeyRouter {
    /// Maps each tuple to one of `num_keys` derived keys.
    ///
    /// # Panics
    ///
    /// Panics if `num_keys` is zero.
    pub fn new(num_keys: u64, extra_work_ns: u64) -> Self {
        assert!(num_keys > 0, "num_keys must be positive");
        KeyRouter {
            num_keys,
            extra_work_ns,
        }
    }
}

impl StreamOperator for KeyRouter {
    fn process(&mut self, mut item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let bucket = (item.values[0] * self.num_keys as f64) as u64 % self.num_keys;
        item.key = bucket;
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "key-router"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinstreams_runtime::sample_stream;

    fn drive(op: &mut dyn StreamOperator, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Outputs::new();
        let mut result = Vec::new();
        for t in inputs {
            op.process(*t, &mut out);
            result.extend(out.drain().map(|(_, t)| t));
        }
        result
    }

    #[test]
    fn identity_map_forwards_unchanged() {
        let inputs = sample_stream(50, 4, 1);
        let got = drive(&mut IdentityMap::new(0), &inputs);
        assert_eq!(got, inputs);
    }

    #[test]
    fn arithmetic_map_keeps_values_in_unit_interval() {
        let inputs = sample_stream(100, 4, 2);
        let got = drive(&mut ArithmeticMap::new(16, 0), &inputs);
        assert_eq!(got.len(), 100);
        for t in &got {
            for v in &t.values {
                assert!((0.0..1.0).contains(v), "value {v}");
            }
        }
        // The transform actually changes values.
        assert_ne!(got[0].values, inputs[0].values);
    }

    #[test]
    fn filter_selectivity_matches_threshold() {
        let inputs = sample_stream(20_000, 4, 3);
        let mut f = Filter::new(0.3, 0);
        assert_eq!(f.selectivity(), 0.3);
        let got = drive(&mut f, &inputs);
        let frac = got.len() as f64 / inputs.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "selectivity {frac}");
        assert!(got.iter().all(|t| t.values[0] < 0.3));
    }

    #[test]
    #[should_panic(expected = "threshold must be in (0, 1]")]
    fn filter_rejects_bad_threshold() {
        Filter::new(1.5, 0);
    }

    #[test]
    fn flatmap_emits_fanout_items() {
        let inputs = sample_stream(10, 4, 4);
        let got = drive(&mut FlatMap::new(3, 0), &inputs);
        assert_eq!(got.len(), 30);
        // Derived items are tagged with their index.
        assert_eq!(got[0].values[1], 0.0);
        assert_eq!(got[1].values[1], 1.0);
        assert_eq!(got[2].values[1], 2.0);
    }

    #[test]
    fn projection_zeroes_dropped_attributes() {
        let inputs = sample_stream(5, 4, 5);
        let got = drive(&mut Projection::new(2, 0), &inputs);
        for t in &got {
            assert_eq!(t.values[2], 0.0);
            assert_eq!(t.values[3], 0.0);
        }
        assert_eq!(got[0].values[0], inputs[0].values[0]);
    }

    #[test]
    fn enricher_adds_mean_and_range() {
        let t = Tuple::new(0, 0, [0.2, 0.4, 0.0, 0.0]);
        let got = drive(&mut Enricher::new(0), &[t]);
        assert!((got[0].values[2] - 0.15).abs() < 1e-12); // mean
        assert!((got[0].values[3] - 0.4).abs() < 1e-12); // range
    }

    #[test]
    fn sampler_keeps_roughly_p_fraction_deterministically() {
        let inputs = sample_stream(20_000, 4, 6);
        let a = drive(&mut Sampler::new(0.25, 0), &inputs);
        let b = drive(&mut Sampler::new(0.25, 0), &inputs);
        assert_eq!(a, b, "sampling must be deterministic");
        let frac = a.len() as f64 / inputs.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn key_router_buckets_by_value() {
        let inputs = sample_stream(1000, 1, 7);
        let got = drive(&mut KeyRouter::new(8, 0), &inputs);
        assert!(got.iter().all(|t| t.key < 8));
        let distinct: std::collections::HashSet<u64> = got.iter().map(|t| t.key).collect();
        assert!(distinct.len() > 4, "uniform values hit most buckets");
    }

    #[test]
    fn operator_names_are_stable() {
        assert_eq!(IdentityMap::new(0).name(), "identity-map");
        assert_eq!(Filter::new(0.5, 0).name(), "filter");
        assert_eq!(FlatMap::new(2, 0).name(), "flatmap");
        assert_eq!(Sampler::new(0.5, 0).name(), "sampler");
    }
}
