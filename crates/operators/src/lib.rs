//! # spinstreams-operators
//!
//! The library of real-world streaming operators used by the paper's
//! evaluation (§5.1): "20 different real-world operators — stateless
//! operators like filters and maps, stateful operators based on count-based
//! windows for aggregation tasks (weighted moving average, sum, max, min and
//! quantiles), spatial queries (skyline and top-k) and join operators
//! performing band-join predicates on count-based windows."
//!
//! Every operator implements the runtime's [`StreamOperator`] trait and does
//! *real* computation on [`Tuple`] attributes; service times therefore come
//! from profiling (as in the paper's workflow), not from hardcoded model
//! numbers. An optional `extra work` knob adds calibrated CPU time per item
//! so test topologies can exhibit heterogeneous rates.
//!
//! The registry ([`OperatorKind`], [`build_operator`]) maps symbolic kinds to factories and
//! to abstract metadata (state class, selectivity) — the bridge between the
//! analytical topology model and the executable runtime, playing the role
//! of the paper's XML `type=` attributes plus `.class` files (§4.1).
//!
//! [`StreamOperator`]: spinstreams_runtime::StreamOperator
//! [`Tuple`]: spinstreams_core::Tuple

#![warn(missing_docs)]

mod aggregates;
mod join;
mod kernel;
mod registry;
mod spatial;
mod stateful;
mod stateless;
mod window;

pub use aggregates::{Aggregation, WindowedAggregate, WindowedQuantile};
pub use join::{BandJoin, EquiJoin};
pub use kernel::{build_kernel, StatelessKernel};
pub use registry::{build_operator, OperatorKind, OperatorParams};
pub use spatial::{Skyline, TopK};
pub use stateful::{DeltaFilter, DistinctCount};
pub use stateless::{
    ArithmeticMap, Enricher, Filter, FlatMap, IdentityMap, KeyRouter, Projection, Sampler,
};
pub use window::{CountWindow, KeyedWindows};
