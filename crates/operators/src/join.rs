//! Window joins (§5.1): band joins and equi joins over count-based windows.
//!
//! A join vertex has multiple input edges; in the runtime all upstream
//! streams share the actor's single FIFO mailbox, so the operator assigns
//! each arriving item to a logical *side* (A/B). The side is derived from
//! the tuple key's parity — a deterministic rule that works regardless of
//! which upstream the item came from, mirroring how the paper's randomly
//! generated topologies attach joins to arbitrary operator pairs.

use crate::window::CountWindow;
use spinstreams_core::Tuple;
use spinstreams_runtime::operators::synthetic_work;
use spinstreams_runtime::{Outputs, StreamOperator};

/// Band join: emits a match when `|a.values[0] - b.values[0]| <= band` for
/// an item `a` on one side and `b` within the opposite side's window.
///
/// Joins hold cross-stream window state that cannot be partitioned by a
/// single key in general — monolithic *stateful* (not fissionable), exactly
/// the operators that stay bottlenecks in §5.3's "7 out of 50" topologies.
pub struct BandJoin {
    band: f64,
    left: CountWindow,
    right: CountWindow,
    extra_work_ns: u64,
    emitted: u64,
}

impl BandJoin {
    /// Creates a band join with symmetric `length` windows (tumbling
    /// internally by `length`, probe-on-arrival semantics).
    ///
    /// # Panics
    ///
    /// Panics if `band` is negative or not finite.
    pub fn new(band: f64, length: usize, extra_work_ns: u64) -> Self {
        assert!(band.is_finite() && band >= 0.0, "band must be >= 0");
        BandJoin {
            band,
            left: CountWindow::new(length, length),
            right: CountWindow::new(length, length),
            extra_work_ns,
            emitted: 0,
        }
    }

    fn probe(&mut self, item: Tuple, against_left: bool, out: &mut Outputs) {
        let window = if against_left {
            self.left.content()
        } else {
            self.right.content()
        };
        for other in window {
            if (item.values[0] - other.values[0]).abs() <= self.band {
                let mut m = item;
                m.values[1] = other.values[0];
                m.values[2] = (item.values[0] - other.values[0]).abs();
                out.emit_default(m);
                self.emitted += 1;
            }
        }
    }

    /// Total matches emitted so far.
    pub fn matches(&self) -> u64 {
        self.emitted
    }
}

impl StreamOperator for BandJoin {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let is_left = item.key.is_multiple_of(2);
        if is_left {
            self.probe(item, false, out);
            self.left.push(item);
        } else {
            self.probe(item, true, out);
            self.right.push(item);
        }
    }
    fn name(&self) -> &str {
        "band-join"
    }
}

/// Equi join on the partitioning key over *per-key* count-based windows: an
/// arriving item matches every opposite-side buffered item with the same
/// key.
///
/// The window state is kept per key, so the operator is
/// *partitioned-stateful*: replicas owning disjoint key sets produce
/// exactly the matches the single instance would — a match requires both
/// sides to carry the same key, and each key's windows live wholly on one
/// replica.
pub struct EquiJoin {
    windows: std::collections::HashMap<
        u64,
        (
            std::collections::VecDeque<Tuple>,
            std::collections::VecDeque<Tuple>,
        ),
    >,
    length: usize,
    extra_work_ns: u64,
}

impl EquiJoin {
    /// Creates an equi join with symmetric per-key windows of `length`
    /// items. Sides are derived from `seq` parity (so equal keys can
    /// match).
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: usize, extra_work_ns: u64) -> Self {
        assert!(length > 0, "window length must be positive");
        EquiJoin {
            windows: std::collections::HashMap::new(),
            length,
            extra_work_ns,
        }
    }
}

impl StreamOperator for EquiJoin {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        synthetic_work(self.extra_work_ns);
        let is_left = item.seq.is_multiple_of(2);
        let (left, right) = self
            .windows
            .entry(item.key)
            .or_insert_with(|| (Default::default(), Default::default()));
        let (own, opposite) = if is_left {
            (left, right)
        } else {
            (right, left)
        };
        // Latest-match (enrichment) semantics: join the arriving item with
        // the most recent same-key item of the opposite side. Emitting one
        // output per probe keeps the selectivity ≤ 1 and the output stream
        // smooth; emitting *every* buffered match would produce same-key
        // bursts that all land on one replica of a partitioned deployment.
        if let Some(other) = opposite.back() {
            let mut m = item;
            m.values[1] = other.values[0];
            out.emit_default(m);
        }
        if own.len() == self.length {
            own.pop_front();
        }
        own.push_back(item);
    }
    fn name(&self) -> &str {
        "equi-join"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(key: u64, seq: u64, v: f64) -> Tuple {
        Tuple::new(key, seq, [v, 0.0, 0.0, 0.0])
    }

    fn drive(op: &mut dyn StreamOperator, inputs: &[Tuple]) -> Vec<Tuple> {
        let mut out = Outputs::new();
        let mut result = Vec::new();
        for x in inputs {
            op.process(*x, &mut out);
            result.extend(out.drain().map(|(_, t)| t));
        }
        result
    }

    #[test]
    fn band_join_matches_within_band() {
        let mut op = BandJoin::new(0.1, 16, 0);
        // Left item (even key) buffered first; right item (odd key) probes.
        let got = drive(&mut op, &[t(0, 0, 0.50), t(1, 1, 0.55)]);
        assert_eq!(got.len(), 1);
        assert!((got[0].values[2] - 0.05).abs() < 1e-12);
        assert_eq!(op.matches(), 1);
    }

    #[test]
    fn band_join_rejects_outside_band() {
        let mut op = BandJoin::new(0.1, 16, 0);
        let got = drive(&mut op, &[t(0, 0, 0.1), t(1, 1, 0.9)]);
        assert!(got.is_empty());
    }

    #[test]
    fn band_join_probes_whole_window() {
        let mut op = BandJoin::new(1.0, 16, 0);
        // Three left items, then one right item within band of all.
        let inputs = vec![t(0, 0, 0.1), t(2, 1, 0.2), t(4, 2, 0.3), t(1, 3, 0.25)];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn band_join_window_eviction_limits_matches() {
        let mut op = BandJoin::new(1.0, 2, 0);
        // Four left items overflow the 2-slot window; a probe matches ≤ 2.
        let inputs = vec![
            t(0, 0, 0.1),
            t(2, 1, 0.2),
            t(4, 2, 0.3),
            t(6, 3, 0.4),
            t(1, 4, 0.3),
        ];
        let got = drive(&mut op, &inputs);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn band_join_zero_band_needs_equality() {
        let mut op = BandJoin::new(0.0, 8, 0);
        let got = drive(&mut op, &[t(0, 0, 0.5), t(1, 1, 0.5), t(3, 2, 0.51)]);
        assert_eq!(got.len(), 1);
    }

    #[test]
    #[should_panic(expected = "band must be >= 0")]
    fn negative_band_rejected() {
        BandJoin::new(-1.0, 4, 0);
    }

    #[test]
    fn equi_join_matches_same_key_opposite_sides() {
        let mut op = EquiJoin::new(8, 0);
        // seq 0 (left, key 5), seq 1 (right, key 5) -> one match.
        let got = drive(&mut op, &[t(5, 0, 0.3), t(5, 1, 0.7)]);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].values[1], 0.3);
        // Different key: no match.
        let got = drive(&mut op, &[t(6, 2, 0.1), t(7, 3, 0.2)]);
        assert!(got.is_empty());
    }

    #[test]
    fn names() {
        assert_eq!(BandJoin::new(0.1, 4, 0).name(), "band-join");
        assert_eq!(EquiJoin::new(4, 0).name(), "equi-join");
    }
}
