//! Static kernels: the registry's stateless kinds as an enum-dispatched
//! [`Kernel`], consumed by the monomorphized [`FusedChain`] executor.
//!
//! Each variant *wraps the concrete operator struct* and delegates to its
//! [`StreamOperator::process`] — the kernel layer adds static dispatch,
//! not a second implementation, so a monomorphized chain is semantically
//! identical to the interpreted meta-operator by construction.
//!
//! [`FusedChain`]: spinstreams_runtime::FusedChain

use crate::{
    ArithmeticMap, Enricher, Filter, FlatMap, IdentityMap, KeyRouter, OperatorKind, OperatorParams,
    Projection, Sampler,
};
use spinstreams_core::Tuple;
use spinstreams_runtime::{Kernel, Outputs, StreamOperator};

/// A stateless registry operator, dispatched by `match` instead of vtable.
#[allow(missing_docs)] // variants mirror the operator structs they wrap
pub enum StatelessKernel {
    IdentityMap(IdentityMap),
    ArithmeticMap(ArithmeticMap),
    Filter(Filter),
    FlatMap(FlatMap),
    Projection(Projection),
    Enricher(Enricher),
    Sampler(Sampler),
    KeyRouter(KeyRouter),
}

impl Kernel for StatelessKernel {
    fn apply(&mut self, item: Tuple, out: &mut Outputs) {
        match self {
            StatelessKernel::IdentityMap(op) => op.process(item, out),
            StatelessKernel::ArithmeticMap(op) => op.process(item, out),
            StatelessKernel::Filter(op) => op.process(item, out),
            StatelessKernel::FlatMap(op) => op.process(item, out),
            StatelessKernel::Projection(op) => op.process(item, out),
            StatelessKernel::Enricher(op) => op.process(item, out),
            StatelessKernel::Sampler(op) => op.process(item, out),
            StatelessKernel::KeyRouter(op) => op.process(item, out),
        }
    }
}

/// Builds the static kernel for `kind`, or `None` if the kind has no
/// kernel form (stateful, windowed, or multi-input kinds must stay behind
/// the interpreted meta-operator).
///
/// Construction mirrors [`crate::build_operator`] parameter-for-parameter,
/// so a kernel and the boxed operator built from the same `params` compute
/// the same function.
pub fn build_kernel(kind: OperatorKind, params: &OperatorParams) -> Option<StatelessKernel> {
    use OperatorKind::*;
    let p = params;
    Some(match kind {
        IdentityMap => StatelessKernel::IdentityMap(crate::IdentityMap::new(p.work_ns)),
        ArithmeticMap => {
            StatelessKernel::ArithmeticMap(crate::ArithmeticMap::new(p.rounds, p.work_ns))
        }
        Filter => StatelessKernel::Filter(crate::Filter::new(p.threshold, p.work_ns)),
        FlatMap => StatelessKernel::FlatMap(crate::FlatMap::new(p.fanout, p.work_ns)),
        Projection => StatelessKernel::Projection(crate::Projection::new(p.keep, p.work_ns)),
        Enricher => StatelessKernel::Enricher(crate::Enricher::new(p.work_ns)),
        Sampler => StatelessKernel::Sampler(crate::Sampler::new(p.probability, p.work_ns)),
        KeyRouter => StatelessKernel::KeyRouter(crate::KeyRouter::new(p.num_keys, p.work_ns)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_operator;
    use spinstreams_runtime::sample_stream;

    #[test]
    fn every_stateless_kind_has_a_kernel_and_nothing_else_does() {
        let params = OperatorParams::default();
        for kind in OperatorKind::all() {
            assert_eq!(
                build_kernel(*kind, &params).is_some(),
                kind.is_stateless(),
                "{kind}"
            );
        }
    }

    #[test]
    fn kernel_matches_boxed_operator_bit_for_bit() {
        // Same params, same input stream: the kernel and the dynamic
        // operator must emit identical (port, tuple) sequences.
        let params = OperatorParams {
            work_ns: 0,
            threshold: 0.4,
            probability: 0.3,
            fanout: 3,
            keep: 1,
            num_keys: 7,
            rounds: 4,
            ..Default::default()
        };
        let inputs = sample_stream(500, 8, 99);
        for kind in OperatorKind::all().iter().filter(|k| k.is_stateless()) {
            let mut kernel = build_kernel(*kind, &params).unwrap();
            let mut boxed = build_operator(*kind, &params);
            let mut kout = Outputs::new();
            let mut bout = Outputs::new();
            for item in &inputs {
                kernel.apply(*item, &mut kout);
                boxed.process(*item, &mut bout);
            }
            assert_eq!(kout.items(), bout.items(), "{kind}");
        }
    }
}
