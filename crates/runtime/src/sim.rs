//! Discrete-event (virtual-time) executor.
//!
//! The paper's evaluation runs each actor on a dedicated thread of a
//! 2×12-core Xeon (§5.1). On machines without that parallelism a wall-clock
//! run cannot exhibit the concurrency the cost models describe, so this
//! module provides a *virtual-time* executor with identical semantics:
//!
//! * each actor is a single server with a bounded FIFO mailbox;
//! * a send into a full mailbox blocks the sender until a slot frees
//!   (Blocking After Service, §3) — in virtual time;
//! * service times are the operators' declared synthetic work
//!   ([`synthetic_work`]) plus their real measured compute time;
//! * actors are perfectly parallel: any number can be busy at the same
//!   virtual instant, exactly the dedicated-thread assumption of §5.1.
//!
//! The operator logic itself executes for real — filters drop real items,
//! windows aggregate real values, joins match real pairs — so measured
//! selectivities, routing randomness and queueing transients are all
//! genuine. Only the clock is simulated. Results come back as the same
//! [`RunReport`] the threaded engine produces, with all durations in
//! virtual nanoseconds.
//!
//! [`synthetic_work`]: crate::operators::synthetic_work

use crate::engine::validate;
use crate::graph::{ActorGraph, Behavior, SourceConfig};
use crate::metrics::{ActorReport, RunReport};
use crate::operator::Outputs;
use crate::rng::XorShift64;
use crate::route::RouteState;
use crate::telemetry::{
    HubActor, LatencyHistogram, RawCounters, TelemetryConfig, TelemetryHub, TelemetryReport,
    TraceEventKind,
};
use crate::{ActorId, EngineError, StreamOperator};
use spinstreams_core::{Tuple, TUPLE_ARITY};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the virtual-time executor.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Default mailbox capacity (overridable per actor in the graph).
    pub mailbox_capacity: usize,
    /// Base RNG seed; actor `i` uses `seed + i`.
    pub seed: u64,
    /// Include each operator's *real* measured compute time in its virtual
    /// service time (the default, and the faithful model). Disable to make
    /// service times purely the declared synthetic work, which renders the
    /// whole simulation — including telemetry snapshots — bit-for-bit
    /// reproducible across runs and hosts.
    pub intrinsic_time: bool,
    /// Accepted for configuration parity with
    /// [`crate::EngineConfig::batch_size`], and **ignored**: envelope
    /// batching amortizes lock acquisitions and condvar wakeups, which the
    /// discrete-event executor does not model (queues are plain `VecDeque`s
    /// and blocking is virtual), so every batch size produces the same
    /// schedule. Threaded and virtual runs of one experiment can therefore
    /// share a config without the virtual results drifting.
    pub batch_size: usize,
    /// Epoch marker cadence, for configuration parity with
    /// [`crate::EngineConfig::checkpoint_interval`]. The simulator models
    /// ideal (never-failing) operators, so barrier alignment and snapshots
    /// have no effect on the schedule; the only observable is the report's
    /// [`crate::RunReport::last_complete_epoch`], computed deterministically
    /// as the minimum over sources of `emitted / interval` (`None` when off
    /// or when no source finished a full epoch).
    pub checkpoint_interval: Option<u64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            mailbox_capacity: 256,
            seed: 0xC0FFEE,
            intrinsic_time: true,
            batch_size: 1,
            checkpoint_interval: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AState {
    Idle,
    Busy,
    Blocked,
}

enum Kind {
    Source {
        cfg: SourceConfig,
        produced: u64,
        next_due: u64,
        period_ns: u64,
        rng: XorShift64,
    },
    Worker {
        op: Box<dyn StreamOperator>,
    },
}

struct SimActor {
    name: String,
    kind: Kind,
    queue: VecDeque<Tuple>,
    cap: usize,
    waiters: VecDeque<usize>,
    pending: VecDeque<(usize, Tuple)>,
    in_flight: Vec<(usize, Tuple)>,
    routes: Vec<RouteState>,
    route_rng: XorShift64,
    state: AState,
    upstreams_open: usize,
    finished: bool,
    closed: bool,
    blocked_since: u64,
    downstream: Vec<usize>,
    /// Present only with telemetry enabled on sink actors.
    latency: Option<Arc<LatencyHistogram>>,
    // metrics
    items_in: u64,
    items_out: u64,
    busy_ns: u64,
    blocked_ns: u64,
    /// Receiver-edge stall view: total virtual time producers spent
    /// blocked on *this* actor's full mailbox (mirrors the threaded
    /// engine's per-mailbox stall counter).
    inbox_stall_ns: u64,
    first_out_ns: u64,
    last_out_ns: u64,
}

impl SimActor {
    fn record_out(&mut self, now: u64) {
        self.items_out += 1;
        if self.first_out_ns == u64::MAX {
            self.first_out_ns = now;
        }
        self.last_out_ns = now;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    SourceEmit,
    ServiceDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    actor: usize,
    kind: Ev,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for the max-heap: earliest time first, ties by seq.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Sim {
    actors: Vec<SimActor>,
    heap: BinaryHeap<Event>,
    seq: u64,
    out_buf: Outputs,
    end_time: u64,
    /// Present only with telemetry enabled.
    hub: Option<Arc<TelemetryHub>>,
    /// Stamp source emissions with their (virtual) departure time.
    stamp: bool,
    /// Include real measured compute in virtual service times.
    intrinsic_time: bool,
    /// Flight-recorder sampling mask (see the engine's `DeliveryCtx`):
    /// a tuple leaves one span event per hop iff `seq & mask == 0`.
    span_mask: Option<u64>,
    /// Epoch-marker interval, for the modeled per-sample epoch counter.
    ckpt_interval: Option<u64>,
}

impl Sim {
    fn push_event(&mut self, time: u64, actor: usize, kind: Ev) {
        self.seq += 1;
        let seq = self.seq;
        self.heap.push(Event {
            time,
            seq,
            actor,
            kind,
        });
    }

    /// Records a lifecycle trace event, if telemetry is enabled.
    fn trace(&self, now: u64, a: usize, kind: TraceEventKind) {
        if let Some(hub) = &self.hub {
            hub.trace.record(now, ActorId(a), kind);
        }
    }

    /// Snapshots every actor's counters and queue depth at virtual `t_ns`.
    fn take_sample(&self, t_ns: u64) {
        if let Some(hub) = &self.hub {
            let raw: Vec<RawCounters> = self
                .actors
                .iter()
                .map(|a| RawCounters {
                    items_in: a.items_in,
                    items_out: a.items_out,
                    busy_ns: a.busy_ns,
                    blocked_ns: a.blocked_ns,
                    inbox_stall_ns: a.inbox_stall_ns,
                    queue_depth: if matches!(a.kind, Kind::Source { .. }) {
                        None
                    } else {
                        Some(a.queue.len())
                    },
                    ..RawCounters::default()
                })
                .collect();
            hub.sample(t_ns, &raw, self.modeled_epoch());
        }
    }

    /// Models the checkpoint ledger for snapshots: ideal operators never
    /// fail, so the last complete epoch at any instant is bounded by the
    /// slowest source's emitted-marker count.
    fn modeled_epoch(&self) -> Option<u64> {
        let iv = self.ckpt_interval?;
        self.actors
            .iter()
            .filter_map(|a| match &a.kind {
                Kind::Source { produced, .. } => Some(*produced / iv),
                Kind::Worker { .. } => None,
            })
            .min()
            .filter(|&e| e > 0)
    }

    /// Runs the operator on one item, returning the virtual service time.
    fn run_operator(&mut self, a: usize, item: Tuple) -> u64 {
        crate::operators::take_virtual_work_ns();
        let src_ns = item.src_ns;
        let t0 = Instant::now();
        let mut out = std::mem::take(&mut self.out_buf);
        out.clear();
        if let Kind::Worker { op } = &mut self.actors[a].kind {
            op.process(item, &mut out);
        }
        let intrinsic = if self.intrinsic_time {
            t0.elapsed().as_nanos() as u64
        } else {
            0
        };
        let virt = crate::operators::take_virtual_work_ns();
        out.inherit_stamp(src_ns);
        self.actors[a].in_flight.clear();
        let in_flight: Vec<(usize, Tuple)> = out.drain().collect();
        self.actors[a].in_flight = in_flight;
        self.out_buf = out;
        intrinsic + virt
    }

    /// Moves the in-flight outputs into the pending queue, resolving each
    /// item's destination (sink emissions are recorded immediately).
    fn resolve_outputs(&mut self, a: usize, now: u64) {
        let in_flight = std::mem::take(&mut self.actors[a].in_flight);
        for (port, item) in in_flight {
            if port < self.actors[a].routes.len() {
                let actor = &mut self.actors[a];
                let dest = actor.routes[port].pick(&item, &mut actor.route_rng);
                actor.pending.push_back((dest.0, item));
            } else {
                // Sink emission: end of the tuple's end-to-end span.
                if let Some(hist) = &self.actors[a].latency {
                    if let Some(lat) = item.latency_ns(now) {
                        hist.record(lat);
                    }
                }
                self.actors[a].record_out(now);
            }
        }
    }

    /// Attempts to drain the pending deliveries of `a`; blocks (in virtual
    /// time) on the first full destination.
    fn deliver_pending(&mut self, a: usize, now: u64) {
        while let Some(&(dest, item)) = self.actors[a].pending.front() {
            if self.actors[dest].queue.len() >= self.actors[dest].cap {
                if self.actors[a].state != AState::Blocked {
                    self.actors[a].state = AState::Blocked;
                    self.actors[a].blocked_since = now;
                    self.actors[dest].waiters.push_back(a);
                }
                return;
            }
            self.actors[a].pending.pop_front();
            self.actors[dest].queue.push_back(item);
            self.actors[a].record_out(now);
            self.try_start(dest, now);
        }
        self.actors[a].state = AState::Idle;
        self.on_pending_drained(a, now);
    }

    /// Called when an actor finished delivering everything it owed.
    fn on_pending_drained(&mut self, a: usize, now: u64) {
        match &mut self.actors[a].kind {
            Kind::Source {
                cfg,
                produced,
                next_due,
                period_ns,
                ..
            } => {
                if *produced < cfg.count {
                    let t = now.max(*next_due);
                    *next_due = t + *period_ns;
                    self.push_event(t, a, Ev::SourceEmit);
                } else if !self.actors[a].closed {
                    self.close(a, now);
                }
            }
            Kind::Worker { .. } => {
                if self.actors[a].finished {
                    if !self.actors[a].closed {
                        self.close(a, now);
                    }
                } else {
                    self.try_start(a, now);
                }
            }
        }
    }

    /// Starts service on the next queued item, if the actor is idle.
    fn try_start(&mut self, a: usize, now: u64) {
        if self.actors[a].state != AState::Idle || self.actors[a].finished {
            return;
        }
        if matches!(self.actors[a].kind, Kind::Source { .. }) {
            return;
        }
        let Some(item) = self.actors[a].queue.pop_front() else {
            self.maybe_finish(a, now);
            return;
        };
        self.actors[a].items_in += 1;
        // Flight recorder: sampled tuples leave one span event per hop,
        // stamped at the exact virtual instant service starts.
        if let Some(mask) = self.span_mask {
            if item.seq & mask == 0 && item.src_ns != 0 {
                self.trace(
                    now,
                    a,
                    TraceEventKind::Span {
                        tuple_seq: item.seq,
                        src_ns: item.src_ns,
                    },
                );
            }
        }
        self.actors[a].state = AState::Busy;
        self.wake_waiters(a, now);
        let service = self.run_operator(a, item);
        self.actors[a].busy_ns += service;
        self.push_event(now + service, a, Ev::ServiceDone);
    }

    /// Wakes senders blocked on `dest`'s mailbox while slots remain.
    fn wake_waiters(&mut self, dest: usize, now: u64) {
        while self.actors[dest].queue.len() < self.actors[dest].cap {
            let Some(w) = self.actors[dest].waiters.pop_front() else {
                return;
            };
            let since = self.actors[w].blocked_since;
            let blocked = now.saturating_sub(since);
            self.actors[w].blocked_ns += blocked;
            self.actors[dest].inbox_stall_ns += blocked;
            if blocked > 0 {
                self.trace(now, w, TraceEventKind::Blocked { ns: blocked });
            }
            self.actors[w].state = AState::Idle;
            self.deliver_pending(w, now);
        }
    }

    /// Finishes a worker whose inputs are exhausted: flush, deliver, close.
    fn maybe_finish(&mut self, a: usize, now: u64) {
        let actor = &self.actors[a];
        if actor.finished
            || actor.upstreams_open > 0
            || actor.state != AState::Idle
            || !actor.queue.is_empty()
            || !actor.pending.is_empty()
            || matches!(actor.kind, Kind::Source { .. })
        {
            return;
        }
        self.actors[a].finished = true;
        crate::operators::take_virtual_work_ns();
        let t0 = Instant::now();
        let mut out = std::mem::take(&mut self.out_buf);
        out.clear();
        if let Kind::Worker { op } = &mut self.actors[a].kind {
            op.flush(&mut out);
        }
        let intrinsic = if self.intrinsic_time {
            t0.elapsed().as_nanos() as u64
        } else {
            0
        };
        let flush_ns = intrinsic + crate::operators::take_virtual_work_ns();
        self.actors[a].busy_ns += flush_ns;
        let in_flight: Vec<(usize, Tuple)> = out.drain().collect();
        self.out_buf = out;
        self.actors[a].in_flight = in_flight;
        self.resolve_outputs(a, now);
        self.deliver_pending(a, now);
    }

    /// Propagates end-of-stream to the downstream actors.
    fn close(&mut self, a: usize, now: u64) {
        if self.actors[a].closed {
            return;
        }
        self.actors[a].closed = true;
        self.trace(now, a, TraceEventKind::ActorFinished);
        self.end_time = self.end_time.max(now);
        let downstream = self.actors[a].downstream.clone();
        for d in downstream {
            self.actors[d].upstreams_open = self.actors[d].upstreams_open.saturating_sub(1);
            self.maybe_finish(d, now);
        }
    }

    fn handle_source_emit(&mut self, a: usize, now: u64) {
        let tuple = {
            let Kind::Source {
                cfg, produced, rng, ..
            } = &mut self.actors[a].kind
            else {
                return;
            };
            let seq = *produced;
            *produced += 1;
            let key = match &cfg.keys {
                Some(dist) => dist.sample(rng.next_f64()) as u64,
                None => seq,
            };
            let mut values = [0.0f64; TUPLE_ARITY];
            for v in values.iter_mut() {
                *v = rng.next_f64();
            }
            Tuple::new(key, seq, values)
        };
        let tuple = if self.stamp {
            tuple.stamped(now)
        } else {
            tuple
        };
        self.actors[a].in_flight.push((0, tuple));
        self.resolve_outputs(a, now);
        self.deliver_pending(a, now);
    }

    fn handle_service_done(&mut self, a: usize, now: u64) {
        self.actors[a].state = AState::Idle;
        self.resolve_outputs(a, now);
        self.deliver_pending(a, now);
    }
}

/// Executes the actor graph in virtual time and reports measured metrics —
/// the drop-in alternative to [`run`](crate::run) used on machines without
/// the testbed's core count (see the module docs).
///
/// # Errors
///
/// The same validation as the threaded engine ([`EngineError`]). Items are
/// never dropped (BAS with unbounded patience — §5.1 configures the
/// timeout so that no drops occur).
pub fn simulate(graph: ActorGraph, config: &SimConfig) -> Result<RunReport, EngineError> {
    simulate_with(graph, config, None).map(|(report, _)| report)
}

///// Like [`simulate`], but with the telemetry layer enabled: snapshots are
/// taken at exact virtual-clock boundaries (every `telemetry.interval` of
/// *virtual* time, plus one at end of run), so the sampled telemetry is as
/// deterministic as the simulation itself — bit-for-bit reproducible given
/// the seeds when [`SimConfig::intrinsic_time`] is off.
///
/// # Errors
///
/// Fails exactly as [`simulate`] does.
pub fn simulate_with_telemetry(
    graph: ActorGraph,
    config: &SimConfig,
    telemetry: &TelemetryConfig,
) -> Result<(RunReport, TelemetryReport), EngineError> {
    simulate_with(graph, config, Some(telemetry))
        .map(|(report, tel)| (report, tel.expect("telemetry was requested")))
}

fn simulate_with(
    graph: ActorGraph,
    config: &SimConfig,
    telemetry: Option<&TelemetryConfig>,
) -> Result<(RunReport, Option<TelemetryReport>), EngineError> {
    let in_degrees = graph.in_degrees();
    let actors = graph.into_actors();
    validate(&actors)?;

    let hub: Option<Arc<TelemetryHub>> = telemetry.map(|tcfg| {
        let hub_actors = actors
            .iter()
            .map(|spec| HubActor {
                name: spec.name.clone(),
                queue_capacity: if spec.behavior.is_source() {
                    None
                } else {
                    Some(spec.mailbox_capacity.unwrap_or(config.mailbox_capacity))
                },
                latency: if !spec.behavior.is_source() && spec.routes.is_empty() {
                    Some(Arc::new(LatencyHistogram::new()))
                } else {
                    None
                },
            })
            .collect();
        Arc::new(TelemetryHub::new(hub_actors, tcfg))
    });

    // RAII: virtual-work mode is restored even if an operator panics.
    let _mode = crate::operators::VirtualWorkGuard::enter();

    let n = actors.len();
    let mut sim = Sim {
        actors: Vec::with_capacity(n),
        heap: BinaryHeap::new(),
        seq: 0,
        out_buf: Outputs::new(),
        end_time: 0,
        hub: hub.clone(),
        stamp: hub.is_some(),
        intrinsic_time: config.intrinsic_time,
        span_mask: telemetry.and_then(|t| t.span_mask()),
        ckpt_interval: config.checkpoint_interval.filter(|&iv| iv > 0),
    };
    for (i, spec) in actors.into_iter().enumerate() {
        let downstream: Vec<usize> = {
            let mut d: Vec<usize> = spec
                .routes
                .iter()
                .flat_map(|r| r.destinations_iter())
                .map(|d| d.0)
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        let cap = spec.mailbox_capacity.unwrap_or(config.mailbox_capacity);
        let kind = match spec.behavior {
            Behavior::Source(cfg) => {
                let period_ns = if cfg.rate.is_finite() {
                    (1e9 / cfg.rate).round().max(1.0) as u64
                } else {
                    1
                };
                let rng = XorShift64::new(cfg.seed);
                Kind::Source {
                    cfg,
                    produced: 0,
                    next_due: 0,
                    period_ns,
                    rng,
                }
            }
            Behavior::Worker(op) => Kind::Worker { op },
        };
        sim.actors.push(SimActor {
            name: spec.name,
            kind,
            queue: VecDeque::new(),
            cap,
            waiters: VecDeque::new(),
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            routes: spec.routes.into_iter().map(RouteState::new).collect(),
            route_rng: XorShift64::new(config.seed.wrapping_add(i as u64)),
            state: AState::Idle,
            upstreams_open: in_degrees[i],
            finished: false,
            closed: false,
            blocked_since: 0,
            downstream,
            latency: hub.as_ref().and_then(|h| h.latency_of(i)),
            items_in: 0,
            items_out: 0,
            busy_ns: 0,
            blocked_ns: 0,
            inbox_stall_ns: 0,
            first_out_ns: u64::MAX,
            last_out_ns: 0,
        });
    }

    // Kick off: sources emit at t=0 (an empty source closes immediately);
    // input-less workers finish immediately. Every actor's (simulated)
    // server starts at t=0.
    for i in 0..n {
        sim.trace(0, i, TraceEventKind::ActorStarted);
    }
    for i in 0..n {
        match &sim.actors[i].kind {
            Kind::Source { cfg, .. } => {
                if cfg.count > 0 {
                    sim.push_event(0, i, Ev::SourceEmit);
                } else {
                    sim.close(i, 0);
                }
            }
            Kind::Worker { .. } => sim.maybe_finish(i, 0),
        }
    }

    // Virtual-clock sampling: before advancing past a sample boundary,
    // snapshot the state as of that exact virtual instant. Events at the
    // boundary itself are processed after the snapshot, a fixed (hence
    // deterministic) convention.
    let interval_ns: Option<u64> = telemetry.map(|t| (t.interval.as_nanos() as u64).max(1));
    let mut next_sample = interval_ns.unwrap_or(u64::MAX);
    let mut last_sample_t: Option<u64> = None;
    while let Some(ev) = sim.heap.pop() {
        if let Some(iv) = interval_ns {
            while ev.time >= next_sample {
                sim.take_sample(next_sample);
                last_sample_t = Some(next_sample);
                next_sample += iv;
            }
        }
        match ev.kind {
            Ev::SourceEmit => sim.handle_source_emit(ev.actor, ev.time),
            Ev::ServiceDone => sim.handle_service_done(ev.actor, ev.time),
        }
        sim.end_time = sim.end_time.max(ev.time);
    }
    // Final end-of-run snapshot (unless one landed exactly there already).
    if hub.is_some() && last_sample_t != Some(sim.end_time) {
        sim.take_sample(sim.end_time);
    }

    let started_at = Instant::now();
    let reports: Vec<ActorReport> = sim
        .actors
        .iter()
        .enumerate()
        .map(|(i, a)| ActorReport {
            id: ActorId(i),
            name: a.name.clone(),
            items_in: a.items_in,
            items_out: a.items_out,
            dropped: 0,
            busy: Duration::from_nanos(a.busy_ns),
            blocked: Duration::from_nanos(a.blocked_ns),
            first_out_ns: a.first_out_ns,
            last_out_ns: a.last_out_ns,
            // The simulator models ideal operators: no panics, so the
            // supervision and recovery counters are structurally zero.
            panics: 0,
            restarts: 0,
            backoff: Duration::ZERO,
            dead_letters: 0,
            snapshots: 0,
            snapshot_bytes: 0,
            align_stall: Duration::ZERO,
            recoveries: 0,
            replayed: 0,
            replay_overflows: 0,
            last_restored_epoch: None,
        })
        .collect();
    // Ideal operators never fail, so every injected epoch completes; the
    // last complete epoch is bounded by the shortest source.
    let last_complete_epoch = config
        .checkpoint_interval
        .filter(|&iv| iv > 0)
        .and_then(|iv| {
            sim.actors
                .iter()
                .filter_map(|a| match &a.kind {
                    Kind::Source { cfg, .. } => Some(cfg.count / iv),
                    Kind::Worker { .. } => None,
                })
                .min()
        })
        .filter(|&e| e > 0);
    let wall = Duration::from_nanos(sim.end_time);
    drop(sim); // releases the sim's hub clone so the unwrap below is unique
    let telemetry_report = hub.map(|hub| {
        Arc::try_unwrap(hub)
            .ok()
            .expect("simulation holds the only other hub reference")
            .into_report()
    });
    Ok((
        RunReport {
            actors: reports,
            wall,
            started_at,
            dead_letters: crate::supervision::DeadLetterLog::default(),
            last_complete_epoch,
        },
        telemetry_report,
    ))
}

/// Selects how a deployment is executed.
#[derive(Debug, Clone)]
pub enum Executor {
    /// Thread-per-actor with real bounded mailboxes (the Akka-like mode;
    /// needs roughly one core per concurrently busy actor to exhibit the
    /// modeled parallelism).
    Threads(crate::EngineConfig),
    /// Discrete-event virtual-time execution (perfect parallelism on any
    /// host; deterministic given seeds).
    VirtualTime(SimConfig),
}

impl Default for Executor {
    fn default() -> Self {
        Executor::VirtualTime(SimConfig::default())
    }
}

/// Runs `graph` on the selected executor.
///
/// # Errors
///
/// Validation errors from either engine ([`EngineError`]).
pub fn execute(graph: ActorGraph, executor: &Executor) -> Result<RunReport, EngineError> {
    match executor {
        Executor::Threads(cfg) => crate::run(graph, cfg),
        Executor::VirtualTime(cfg) => simulate(graph, cfg),
    }
}

/// Runs `graph` on the selected executor with the telemetry layer enabled
/// (see [`crate::run_with_telemetry`] and [`simulate_with_telemetry`]).
///
/// # Errors
///
/// Validation errors from either engine ([`EngineError`]).
pub fn execute_with_telemetry(
    graph: ActorGraph,
    executor: &Executor,
    telemetry: &TelemetryConfig,
) -> Result<(RunReport, TelemetryReport), EngineError> {
    match executor {
        Executor::Threads(cfg) => crate::run_with_telemetry(graph, cfg, telemetry),
        Executor::VirtualTime(cfg) => simulate_with_telemetry(graph, cfg, telemetry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{FnOperator, PassThrough};
    use crate::{Behavior, Route};

    fn cfg() -> SimConfig {
        SimConfig {
            mailbox_capacity: 64,
            seed: 1,
            ..SimConfig::default()
        }
    }

    /// A worker with `ns` virtual nanoseconds of service per item.
    fn work(ns: u64) -> Behavior {
        Behavior::Worker(Box::new(FnOperator::new(
            "work",
            move |t, out: &mut Outputs| {
                crate::operators::synthetic_work(ns);
                out.emit_default(t);
            },
        )))
    }

    #[test]
    fn delivers_all_items_in_virtual_time() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(1_000_000.0, 1000)),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 1000);
        assert_eq!(r.actor(s).items_out, 1000);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn source_rate_is_exact_in_virtual_time() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(10_000.0, 5000)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        let rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (rate - 10_000.0).abs() / 10_000.0 < 0.001,
            "virtual rate {rate}"
        );
    }

    #[test]
    fn backpressure_throttles_to_bottleneck_rate_exactly() {
        // Source 10k/s into a 1 ms server: steady state 1000/s.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(10_000.0, 4000)));
        let w = g.add_actor("slow", work(1_000_000));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 16);
        let r = simulate(g, &cfg()).unwrap();
        let src_rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (src_rate - 1000.0).abs() / 1000.0 < 0.02,
            "backpressured source rate {src_rate}"
        );
        assert!(r.actor(s).blocked > Duration::ZERO);
    }

    #[test]
    fn parallel_replicas_scale_in_virtual_time() {
        // One 1 ms server caps at 1000/s; three replicas behind a
        // round-robin emitter sustain 3000/s regardless of host cores.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(3_000.0, 6000)));
        let e = g.add_actor("emitter", Behavior::worker(PassThrough));
        let r0 = g.add_actor("r0", work(1_000_000));
        let r1 = g.add_actor("r1", work(1_000_000));
        let r2 = g.add_actor("r2", work(1_000_000));
        let c = g.add_actor("collector", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(e));
        g.connect(e, Route::RoundRobin(vec![r0, r1, r2]));
        for r in [r0, r1, r2] {
            g.connect(r, Route::Unicast(c));
        }
        let rep = simulate(g, &cfg()).unwrap();
        let src_rate = rep.actor(s).departure_rate().unwrap();
        assert!(
            (src_rate - 3000.0).abs() / 3000.0 < 0.02,
            "3-replica rate {src_rate}"
        );
        assert_eq!(rep.actor(c).items_in, 6000);
    }

    #[test]
    fn pipeline_throughput_matches_queueing_theory() {
        // src 2000/s -> 0.2 ms -> 1 ms (bottleneck, 1000/s) -> 0.1 ms.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(2_000.0, 5000)));
        let a = g.add_actor("a", work(200_000));
        let b = g.add_actor("b", work(1_000_000));
        let c = g.add_actor("c", work(100_000));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(c));
        // Small mailboxes keep the buffer-fill transient (source running at
        // its own 2000/s until the buffers fill) negligible.
        let r = simulate(
            g,
            &SimConfig {
                mailbox_capacity: 8,
                seed: 1,
                ..SimConfig::default()
            },
        )
        .unwrap();
        let thr = r.actor(s).departure_rate().unwrap();
        assert!((thr - 1000.0).abs() / 1000.0 < 0.02, "throughput {thr}");
        // The bottleneck's own departure rate is also ~1000/s.
        let b_rate = r.actor(b).departure_rate().unwrap();
        assert!((b_rate - 1000.0).abs() / 1000.0 < 0.02, "b rate {b_rate}");
        // And the cheap downstream stage is underutilized, not blocked.
        assert_eq!(r.actor(c).blocked, Duration::ZERO);
    }

    #[test]
    fn probabilistic_routes_split_flow() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e6, 20_000)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.3), (b, 0.7)],
            },
        );
        let r = simulate(g, &cfg()).unwrap();
        let fa = r.actor(a).items_in as f64 / 20_000.0;
        assert!((fa - 0.3).abs() < 0.02, "fraction {fa}");
    }

    #[test]
    fn flush_outputs_survive_to_downstream() {
        struct Hold(Vec<Tuple>);
        impl StreamOperator for Hold {
            fn process(&mut self, item: Tuple, _out: &mut Outputs) {
                self.0.push(item);
            }
            fn flush(&mut self, out: &mut Outputs) {
                for t in self.0.drain(..) {
                    out.emit_default(t);
                }
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e6, 100)));
        let h = g.add_actor("hold", Behavior::Worker(Box::new(Hold(Vec::new()))));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(h));
        g.connect(h, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 100);
    }

    #[test]
    fn simulation_is_deterministic() {
        let build = || {
            let mut g = ActorGraph::new();
            let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5_000.0, 2000)));
            let a = g.add_actor("a", work(300_000));
            let b = g.add_actor("b", work(150_000));
            g.connect(
                s,
                Route::Probabilistic {
                    choices: vec![(a, 0.5), (b, 0.5)],
                },
            );
            g
        };
        let r1 = simulate(build(), &cfg()).unwrap();
        let r2 = simulate(build(), &cfg()).unwrap();
        for (x, y) in r1.actors.iter().zip(&r2.actors) {
            assert_eq!(x.items_in, y.items_in);
            assert_eq!(x.items_out, y.items_out);
            // Virtual blocked time is exactly reproducible; busy time
            // includes real intrinsic nanoseconds which may jitter, so it
            // is not compared.
            assert_eq!(x.blocked, y.blocked);
        }
    }

    #[test]
    fn validation_still_applies() {
        let g = ActorGraph::new();
        assert_eq!(simulate(g, &cfg()).unwrap_err(), EngineError::NoActors);
    }

    #[test]
    fn telemetry_snapshots_fall_on_virtual_clock_boundaries() {
        // 1000/s bottleneck over 2000 items ≈ 2 s of virtual time; a
        // 100 ms virtual interval yields ~20 interior snapshots plus the
        // final one, each timestamped exactly on a boundary.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(2_000.0, 2000)));
        let w = g.add_actor("work", work(1_000_000));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_mailbox_capacity(w, 8);
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(100));
        let (report, tel) = simulate_with_telemetry(g, &cfg(), &tcfg).unwrap();
        assert_eq!(report.actor(k).items_in, 2000);
        assert!(tel.snapshots.len() >= 15, "got {}", tel.snapshots.len());
        for snap in &tel.snapshots[..tel.snapshots.len() - 1] {
            assert_eq!(snap.t_ns % 100_000_000, 0, "t_ns {}", snap.t_ns);
        }
        // Mid-run snapshots see the backpressured bottleneck saturated.
        let mid = &tel.snapshots[tel.snapshots.len() / 2];
        assert!(
            mid.actors[w.0].utilization > 0.9,
            "bottleneck utilization {}",
            mid.actors[w.0].utilization
        );
        assert!(
            (mid.actors[w.0].departure_rate - 1000.0).abs() / 1000.0 < 0.05,
            "rolling departure rate {}",
            mid.actors[w.0].departure_rate
        );
        // Latency at the sink reflects queueing behind the bottleneck.
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.latencies.len(), 1);
        assert_eq!(last.latencies[0].latency.count, 2000);
        assert!(last.latencies[0].latency.p50_ns >= 1_000_000);
        // Lifecycle: every actor started and finished.
        let count = |kind: TraceEventKind| tel.trace.iter().filter(|e| e.kind == kind).count();
        assert_eq!(count(TraceEventKind::ActorStarted), 3);
        assert_eq!(count(TraceEventKind::ActorFinished), 3);
        // Backpressure produced blocked-transition events.
        assert!(tel
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Blocked { .. })));
    }

    #[test]
    fn telemetry_without_intrinsic_time_is_bit_identical() {
        let build = || {
            let mut g = ActorGraph::new();
            let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5_000.0, 1500)));
            let a = g.add_actor("a", work(300_000));
            let b = g.add_actor("b", work(150_000));
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(
                s,
                Route::Probabilistic {
                    choices: vec![(a, 0.5), (b, 0.5)],
                },
            );
            g.connect(a, Route::Unicast(k));
            g.connect(b, Route::Unicast(k));
            g.set_mailbox_capacity(a, 8);
            g
        };
        let sim_cfg = SimConfig {
            intrinsic_time: false,
            ..cfg()
        };
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(20));
        let (_, t1) = simulate_with_telemetry(build(), &sim_cfg, &tcfg).unwrap();
        let (_, t2) = simulate_with_telemetry(build(), &sim_cfg, &tcfg).unwrap();
        assert_eq!(t1.to_jsonl(), t2.to_jsonl());
        assert!(!t1.snapshots.is_empty());
    }

    #[test]
    fn execute_dispatches_both_engines() {
        let build = || {
            let mut g = ActorGraph::new();
            let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e5, 100)));
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(s, Route::Unicast(k));
            g
        };
        let r = execute(build(), &Executor::VirtualTime(cfg())).unwrap();
        assert_eq!(r.actor(ActorId(1)).items_in, 100);
        let r = execute(build(), &Executor::Threads(crate::EngineConfig::default())).unwrap();
        assert_eq!(r.actor(ActorId(1)).items_in, 100);
        assert!(matches!(Executor::default(), Executor::VirtualTime(_)));
    }

    #[test]
    fn two_sources_merge_into_one_worker() {
        // The actor graph itself may have several sources (the abstract
        // model's single-source rule is enforced one level up); EOS
        // termination must wait for both.
        let mut g = ActorGraph::new();
        let s1 = g.add_actor("src1", Behavior::Source(SourceConfig::new(1_000.0, 300)));
        let s2 = g.add_actor("src2", Behavior::Source(SourceConfig::new(2_000.0, 600)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s1, Route::Unicast(k));
        g.connect(s2, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 900);
        // Virtual time: both sources finish at ~300 ms; wall = max.
        let wall = r.wall.as_secs_f64();
        assert!((wall - 0.3).abs() < 0.02, "virtual wall {wall}");
    }

    #[test]
    fn zero_item_source_terminates_cleanly() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1_000.0, 0)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.actor(s).items_out, 0);
    }

    #[test]
    fn blocked_time_is_attributed_to_the_blocked_sender() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(4_000.0, 2000)));
        let fast = g.add_actor("fast", work(100_000));
        let slow = g.add_actor("slow", work(1_000_000));
        g.connect(s, Route::Unicast(fast));
        g.connect(fast, Route::Unicast(slow));
        g.set_mailbox_capacity(slow, 4);
        g.set_mailbox_capacity(fast, 4);
        let r = simulate(g, &cfg()).unwrap();
        // `fast` spends most of the run blocked on `slow`'s full mailbox;
        // `slow` itself never blocks (it is the sink-side bottleneck).
        assert!(r.actor(fast).blocked > r.actor(fast).busy);
        assert_eq!(r.actor(slow).blocked, Duration::ZERO);
        // And the source is transitively throttled to ~1000/s.
        let rate = r.actor(s).departure_rate().unwrap();
        assert!((rate - 1000.0).abs() / 1000.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn diamond_converging_eos_counts() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1e6, 1000)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", work(50_000));
        let k = g.add_actor("k", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.5), (b, 0.5)],
            },
        );
        g.connect(a, Route::Unicast(k));
        g.connect(b, Route::Unicast(k));
        let r = simulate(g, &cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 1000);
    }
}
