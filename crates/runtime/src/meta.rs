//! The meta-operator: Algorithm 4, the executor of a fused sub-graph.
//!
//! A meta-operator owns the member operators of a fused sub-graph plus
//! their *internal* routing. For each input item it runs the front-end
//! member; every emitted item either feeds another member (processed
//! immediately, inside the same actor — no mailbox hop) or leaves the
//! sub-graph on one of the meta-operator's external ports. Because the
//! sub-graph is acyclic, the internal work-list always drains (§4.2).

use crate::checkpoint::StateSnapshot;
use crate::rng::XorShift64;
use crate::{Outputs, StreamOperator};
use spinstreams_core::Tuple;
use std::collections::VecDeque;

/// Where an item emitted by a member goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaDest {
    /// Another member of the fused sub-graph (index into the member list).
    Member(usize),
    /// An external port of the meta-operator.
    Output(usize),
}

/// Internal routing policy for one member port — mirrors [`crate::Route`]
/// but with member/output destinations.
#[derive(Debug, Clone)]
pub enum MetaRoute {
    /// Every item to the same destination.
    Unicast(MetaDest),
    /// Destination drawn from a fixed distribution (application-semantics
    /// simulation, as for the actor-level probabilistic routes).
    Probabilistic {
        /// Destinations and probabilities (sum ≈ 1).
        choices: Vec<(MetaDest, f64)>,
    },
}

/// The fused operator executing Algorithm 4.
pub struct MetaOperator {
    name: String,
    members: Vec<Box<dyn StreamOperator>>,
    /// `routes[m][p]` routes port `p` of member `m`.
    routes: Vec<Vec<MetaRoute>>,
    /// `cums[m][p]` is the cumulative distribution of a `Probabilistic`
    /// route (empty for `Unicast`), precomputed once at construction and
    /// accumulated left-to-right exactly like
    /// `XorShift64::sample_discrete`, so per-item resolution is a binary
    /// search with bit-identical results to the linear scan.
    cums: Vec<Vec<Vec<f64>>>,
    front: usize,
    rng: XorShift64,
    scratch: Outputs,
    /// Reusable Algorithm 4 work-list: drained back to empty by every
    /// activation, so steady state never re-allocates it.
    work: VecDeque<(usize, Tuple)>,
    /// Flush traversal (front first, then the rest), precomputed once.
    flush_order: Vec<usize>,
}

impl MetaOperator {
    /// Creates a meta-operator.
    ///
    /// * `members` — the fused operators;
    /// * `routes` — per member, per port, the internal route;
    /// * `front` — index of the front-end member (every input item starts
    ///   there).
    ///
    /// # Panics
    ///
    /// Panics if `front` is out of range or `routes` length differs from
    /// `members`. Route cycles are the builder's responsibility (fused
    /// sub-graphs are acyclic by construction, §3.3); a cycle would loop
    /// forever.
    pub fn new(
        name: impl Into<String>,
        members: Vec<Box<dyn StreamOperator>>,
        routes: Vec<Vec<MetaRoute>>,
        front: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(members.len(), routes.len(), "one route table per member");
        assert!(front < members.len(), "front-end index out of range");
        let cums = routes
            .iter()
            .map(|table| {
                table
                    .iter()
                    .map(|route| match route {
                        MetaRoute::Unicast(_) => Vec::new(),
                        MetaRoute::Probabilistic { choices } => {
                            let mut acc = 0.0;
                            choices
                                .iter()
                                .map(|(_, p)| {
                                    acc += p;
                                    acc
                                })
                                .collect()
                        }
                    })
                    .collect()
            })
            .collect();
        let flush_order = std::iter::once(front)
            .chain((0..members.len()).filter(|m| *m != front))
            .collect();
        MetaOperator {
            name: name.into(),
            members,
            routes,
            cums,
            front,
            rng: XorShift64::new(seed),
            scratch: Outputs::new(),
            work: VecDeque::with_capacity(4),
            flush_order,
        }
    }

    /// Number of fused members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    fn resolve(&mut self, member: usize, port: usize) -> Option<MetaDest> {
        let table = &self.routes[member];
        let route = table.get(port)?;
        Some(match route {
            MetaRoute::Unicast(d) => *d,
            MetaRoute::Probabilistic { choices } => {
                let cum = &self.cums[member][port];
                let u = self.rng.next_f64();
                // First index with `u < cum[idx]`; the last bucket absorbs
                // floating-point slack, matching `sample_discrete`.
                let idx = cum.partition_point(|&c| c <= u).min(choices.len() - 1);
                choices[idx].0
            }
        })
    }

    /// Drains `self.work` through the members, emitting externals to
    /// `out`. The queue is always empty on return, ready for reuse.
    fn drive(&mut self, out: &mut Outputs) {
        while let Some((m, item)) = self.work.pop_front() {
            self.scratch.clear();
            let mut scratch = std::mem::take(&mut self.scratch);
            self.members[m].process(item, &mut scratch);
            for (port, emitted) in scratch.drain() {
                match self.resolve(m, port) {
                    Some(MetaDest::Member(j)) => self.work.push_back((j, emitted)),
                    Some(MetaDest::Output(p)) => out.emit(p, emitted),
                    None => {} // unrouted member port: internal sink
                }
            }
            self.scratch = scratch;
        }
    }
}

impl StreamOperator for MetaOperator {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        self.work.push_back((self.front, item));
        self.drive(out);
    }

    fn flush(&mut self, out: &mut Outputs) {
        // Flush members front-first (precomputed order) so buffered
        // state (windows) drains through the same internal routing as
        // live items.
        for idx in 0..self.flush_order.len() {
            let m = self.flush_order[idx];
            self.scratch.clear();
            let mut scratch = std::mem::take(&mut self.scratch);
            self.members[m].flush(&mut scratch);
            for (port, emitted) in scratch.drain() {
                match self.resolve(m, port) {
                    Some(MetaDest::Member(j)) => self.work.push_back((j, emitted)),
                    Some(MetaDest::Output(p)) => out.emit(p, emitted),
                    None => {}
                }
            }
            self.scratch = scratch;
            self.drive(out);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        // A restart of the fused actor restarts every member: partial
        // state surviving in some members would break the sub-graph's
        // semantic equivalence with its unfused form.
        for m in &mut self.members {
            m.reset();
        }
        self.scratch.clear();
        self.work.clear();
    }

    fn snapshot(&mut self) -> Option<StateSnapshot> {
        // Layout: rng state, member count, then per member a presence
        // flag and (if present) its snapshot length-prefixed in 64-bit
        // words. Epoch barriers land between tuples, so the work-list
        // and scratch are empty and carry no state.
        let mut snap = StateSnapshot::new();
        snap.push_u64(self.rng.state());
        snap.push_u64(self.members.len() as u64);
        for m in &mut self.members {
            match m.snapshot() {
                Some(inner) => {
                    debug_assert_eq!(inner.len() % 8, 0, "snapshots are u64-aligned");
                    snap.push_u64(1);
                    snap.push_u64((inner.len() / 8) as u64);
                    let mut r = inner.reader();
                    while let Some(w) = r.read_u64() {
                        snap.push_u64(w);
                    }
                }
                None => snap.push_u64(0),
            }
        }
        Some(snap)
    }

    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        let mut r = snapshot.reader();
        let Some(rng_state) = r.read_u64() else {
            return false;
        };
        match r.read_u64() {
            Some(n) if n == self.members.len() as u64 => {}
            _ => return false,
        }
        for m in &mut self.members {
            match r.read_u64() {
                Some(0) => {} // stateless member: fresh instance is fine
                Some(1) => {
                    let Some(words) = r.read_u64() else {
                        return false;
                    };
                    let mut inner = StateSnapshot::new();
                    for _ in 0..words {
                        let Some(w) = r.read_u64() else {
                            return false;
                        };
                        inner.push_u64(w);
                    }
                    if !m.restore(&inner) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        self.rng.set_state(rng_state);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{FnOperator, PassThrough};

    fn add_op(delta: f64) -> Box<dyn StreamOperator> {
        Box::new(FnOperator::new(
            "add",
            move |t: Tuple, out: &mut Outputs| {
                out.emit_default(t.with_value(0, t.values[0] + delta));
            },
        ))
    }

    #[test]
    fn chain_of_members_applies_sequentially() {
        // front (+1) -> member1 (+10) -> external port 0.
        let meta = MetaOperator::new(
            "F",
            vec![add_op(1.0), add_op(10.0)],
            vec![
                vec![MetaRoute::Unicast(MetaDest::Member(1))],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
            ],
            0,
            1,
        );
        let mut meta = meta;
        let mut out = Outputs::new();
        meta.process(Tuple::splat(0, 0, 0.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.items()[0].1.values[0], 11.0);
        assert_eq!(meta.num_members(), 2);
    }

    #[test]
    fn probabilistic_internal_routing_splits_flow() {
        // front -> {member1 (p=0.3), output (p=0.7)}; member1 -> output.
        let mut meta = MetaOperator::new(
            "F",
            vec![add_op(0.0), add_op(100.0)],
            vec![
                vec![MetaRoute::Probabilistic {
                    choices: vec![(MetaDest::Member(1), 0.3), (MetaDest::Output(0), 0.7)],
                }],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
            ],
            0,
            42,
        );
        let mut out = Outputs::new();
        let n = 20_000;
        for i in 0..n {
            meta.process(Tuple::splat(0, i, 0.0), &mut out);
        }
        assert_eq!(out.len(), n as usize, "every item exits exactly once");
        let via_member1 = out
            .items()
            .iter()
            .filter(|(_, t)| t.values[0] >= 100.0)
            .count();
        let frac = via_member1 as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn unrouted_member_port_discards() {
        let mut meta = MetaOperator::new(
            "F",
            vec![Box::new(PassThrough) as Box<dyn StreamOperator>],
            vec![vec![]],
            0,
            1,
        );
        let mut out = Outputs::new();
        meta.process(Tuple::default(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn flush_drains_member_state_through_routing() {
        // A member that holds items until flush.
        struct Hold {
            buf: Vec<Tuple>,
        }
        impl StreamOperator for Hold {
            fn process(&mut self, item: Tuple, _out: &mut Outputs) {
                self.buf.push(item);
            }
            fn flush(&mut self, out: &mut Outputs) {
                for t in self.buf.drain(..) {
                    out.emit_default(t);
                }
            }
        }
        let mut meta = MetaOperator::new(
            "F",
            vec![
                Box::new(Hold { buf: Vec::new() }) as Box<dyn StreamOperator>,
                add_op(5.0),
            ],
            vec![
                vec![MetaRoute::Unicast(MetaDest::Member(1))],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
            ],
            0,
            1,
        );
        let mut out = Outputs::new();
        meta.process(Tuple::splat(0, 1, 1.0), &mut out);
        meta.process(Tuple::splat(0, 2, 2.0), &mut out);
        assert!(out.is_empty(), "held until flush");
        meta.flush(&mut out);
        assert_eq!(out.len(), 2);
        // The held items passed through member 1 (+5) during flush.
        assert_eq!(out.items()[0].1.values[0], 6.0);
        assert_eq!(out.items()[1].1.values[0], 7.0);
    }

    #[test]
    #[should_panic(expected = "front-end index out of range")]
    fn bad_front_index_panics() {
        MetaOperator::new("F", vec![], vec![], 0, 1);
    }

    #[test]
    fn diamond_inside_meta_preserves_item_count() {
        // front -> {m1 (0.5), m2 (0.5)}; m1 -> out, m2 -> out.
        let mut meta = MetaOperator::new(
            "F",
            vec![add_op(0.0), add_op(1.0), add_op(2.0)],
            vec![
                vec![MetaRoute::Probabilistic {
                    choices: vec![(MetaDest::Member(1), 0.5), (MetaDest::Member(2), 0.5)],
                }],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
                vec![MetaRoute::Unicast(MetaDest::Output(0))],
            ],
            0,
            7,
        );
        let mut out = Outputs::new();
        for i in 0..1000 {
            meta.process(Tuple::splat(0, i, 0.0), &mut out);
        }
        assert_eq!(out.len(), 1000);
    }
}
