//! Actor supervision: restart policies, degraded mode, dead letters.
//!
//! The threaded executor wraps every operator invocation in
//! `catch_unwind`, so a panicking operator never takes its actor thread
//! (let alone the whole process) down. What happens next is decided by the
//! actor's [`SupervisionPolicy`], mirroring Akka's supervision directives
//! (the paper's reference substrate, §4.2):
//!
//! * [`SupervisionPolicy::Resume`] — drop the poisoned item, keep the
//!   operator state, keep going;
//! * [`SupervisionPolicy::Restart`] — re-instantiate (or reset) the
//!   operator, subject to a restart budget and exponential backoff;
//! * [`SupervisionPolicy::Stop`] — stop processing and enter degraded
//!   mode, forwarding or dropping subsequent input per [`DegradePolicy`].
//!
//! Every item the runtime fails to deliver — send timeouts under
//! backpressure, routes into disconnected actors, items consumed by a
//! panic, items arriving at a stopped actor — is recorded structurally in
//! a [`DeadLetterLog`] surfaced through the run report, so lossy runs are
//! observable rather than silent.

use crate::graph::ActorId;
use crate::operator::StreamOperator;
use crate::rng::XorShift64;
use std::fmt;
use std::time::Duration;

/// What the supervisor does when an operator invocation panics.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum SupervisionPolicy {
    /// Drop the offending item and continue with the existing operator
    /// state (Akka's `Resume` directive).
    Resume,
    /// Re-instantiate the operator and continue, subject to the policy's
    /// restart budget and backoff (Akka's `Restart` directive).
    Restart(RestartPolicy),
    /// Stop the operator and switch the actor to degraded mode (Akka's
    /// `Stop` directive).
    #[default]
    Stop,
}

/// Budget and pacing for [`SupervisionPolicy::Restart`].
#[derive(Debug, Clone, PartialEq)]
pub struct RestartPolicy {
    /// Maximum number of restarts before the actor gives up and stops
    /// (degraded mode). `u32::MAX` means effectively unbounded.
    pub max_restarts: u32,
    /// Backoff schedule between a panic and the restart.
    pub backoff: Backoff,
}

impl RestartPolicy {
    /// A restart policy with the given budget and the default backoff.
    pub fn with_budget(max_restarts: u32) -> Self {
        RestartPolicy {
            max_restarts,
            backoff: Backoff::default(),
        }
    }
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 10,
            backoff: Backoff::default(),
        }
    }
}

/// Exponential backoff with jitter, Akka `BackoffSupervisor`-style.
///
/// The `n`-th restart (1-based) sleeps
/// `min(initial · multiplier^(n-1), max)`, scaled by a uniform jitter in
/// `[1 - jitter, 1 + jitter]` drawn from the actor's deterministic RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct Backoff {
    /// Delay before the first restart.
    pub initial: Duration,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Growth factor per restart (`>= 1`).
    pub multiplier: f64,
    /// Relative jitter in `[0, 1]`; `0.1` means ±10%.
    pub jitter: f64,
}

impl Backoff {
    /// No delay at all — restart immediately. Useful in tests.
    pub fn none() -> Self {
        Backoff {
            initial: Duration::ZERO,
            max: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
        }
    }

    /// Delay before restart number `n` (1-based), jittered via `rng`.
    pub fn delay(&self, n: u32, rng: &mut XorShift64) -> Duration {
        if self.initial.is_zero() {
            return Duration::ZERO;
        }
        let exp = n.saturating_sub(1).min(63);
        let base = self.initial.as_secs_f64() * self.multiplier.powi(exp as i32);
        let capped = base.min(self.max.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = 1.0 - jitter + 2.0 * jitter * rng.next_f64();
        Duration::from_secs_f64((capped * scale).max(0.0))
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(1),
            multiplier: 2.0,
            jitter: 0.1,
        }
    }
}

/// What a stopped actor does with input that keeps arriving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Forward input unchanged on the default port, as if the operator
    /// were an identity — keeps downstream fed at reduced fidelity.
    Forward,
    /// Drop input, recording each item as a dead letter.
    #[default]
    Drop,
}

/// Per-actor supervision configuration: the panic directive plus the
/// degraded-mode behavior once the actor stops.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SupervisorSpec {
    /// What to do when the operator panics.
    pub policy: SupervisionPolicy,
    /// What to do with input after the actor stops.
    pub degrade: DegradePolicy,
}

impl SupervisorSpec {
    /// Restart with the given budget and backoff, dropping input if the
    /// budget is ever exhausted.
    pub fn restart(max_restarts: u32, backoff: Backoff) -> Self {
        SupervisorSpec {
            policy: SupervisionPolicy::Restart(RestartPolicy {
                max_restarts,
                backoff,
            }),
            degrade: DegradePolicy::Drop,
        }
    }

    /// Resume: drop the poisoned item, keep state, keep going.
    pub fn resume() -> Self {
        SupervisorSpec {
            policy: SupervisionPolicy::Resume,
            degrade: DegradePolicy::Drop,
        }
    }

    /// Sets the degraded-mode behavior (builder style).
    pub fn with_degrade(mut self, degrade: DegradePolicy) -> Self {
        self.degrade = degrade;
        self
    }
}

/// A factory producing fresh operator instances, used by
/// [`SupervisionPolicy::Restart`] to re-instantiate a failed operator
/// from scratch. Without a factory, restart falls back to
/// [`StreamOperator::reset`].
pub struct OperatorFactory(Box<dyn Fn() -> Box<dyn StreamOperator> + Send>);

impl OperatorFactory {
    /// Wraps a closure producing fresh operator instances.
    pub fn new(f: impl Fn() -> Box<dyn StreamOperator> + Send + 'static) -> Self {
        OperatorFactory(Box::new(f))
    }

    /// Builds a fresh operator instance.
    pub fn build(&self) -> Box<dyn StreamOperator> {
        (self.0)()
    }
}

impl fmt::Debug for OperatorFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("OperatorFactory(..)")
    }
}

/// Why an item was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DeadLetterReason {
    /// The destination mailbox stayed full past the send timeout
    /// (Blocking-After-Service backpressure gave up).
    SendTimeout,
    /// The destination actor was gone (its mailbox disconnected).
    Disconnected,
    /// The item was consumed by an operator invocation that panicked.
    OperatorPanic,
    /// The item arrived at an actor that had stopped (degraded mode,
    /// [`DegradePolicy::Drop`]).
    StoppedActor,
}

impl fmt::Display for DeadLetterReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadLetterReason::SendTimeout => write!(f, "send-timeout"),
            DeadLetterReason::Disconnected => write!(f, "disconnected"),
            DeadLetterReason::OperatorPanic => write!(f, "operator-panic"),
            DeadLetterReason::StoppedActor => write!(f, "stopped-actor"),
        }
    }
}

/// One undeliverable item: where it came from, where it was going, why it
/// died, and which item it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The actor holding the item when it died.
    pub source: ActorId,
    /// The intended destination, if the item died in transit (`None` when
    /// it died inside `source`, e.g. consumed by a panic).
    pub destination: Option<ActorId>,
    /// Why delivery failed.
    pub reason: DeadLetterReason,
    /// Partitioning key of the dead item.
    pub key: u64,
    /// Sequence number of the dead item.
    pub seq: u64,
    /// The panic payload message, for items consumed by a caught panic
    /// ([`DeadLetterReason::OperatorPanic`]) — chaos runs can then assert
    /// *which* injected fault fired. `None` for non-panic reasons.
    pub message: Option<String>,
}

/// A capacity-bounded structural record of undelivered items.
///
/// The log keeps the first `capacity` letters verbatim and counts the
/// rest, so pathological runs can't exhaust memory while totals stay
/// exact.
#[derive(Debug, Clone, Default)]
pub struct DeadLetterLog {
    entries: Vec<DeadLetter>,
    capacity: usize,
    total: u64,
}

impl DeadLetterLog {
    /// Creates a log retaining at most `capacity` individual letters.
    pub fn with_capacity(capacity: usize) -> Self {
        DeadLetterLog {
            entries: Vec::new(),
            capacity,
            total: 0,
        }
    }

    /// Records a dead letter; the entry itself is kept only while under
    /// capacity, the total always counts.
    pub fn push(&mut self, letter: DeadLetter) {
        if self.entries.len() < self.capacity {
            self.entries.push(letter);
        }
        self.total += 1;
    }

    /// Total number of dead letters recorded (including any beyond
    /// capacity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The retained letters, in arrival order (at most `capacity`).
    pub fn entries(&self) -> &[DeadLetter] {
        &self.entries
    }

    /// Total count of letters with the given reason.
    ///
    /// Exact while the log is under capacity; a lower bound afterwards
    /// (only retained letters can be classified).
    pub fn by_reason(&self, reason: DeadLetterReason) -> u64 {
        self.entries.iter().filter(|l| l.reason == reason).count() as u64
    }

    /// True if nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Merges another log into this one, preserving totals and retaining
    /// entries up to this log's capacity.
    pub fn merge(&mut self, other: &DeadLetterLog) {
        for l in &other.entries {
            if self.entries.len() < self.capacity {
                self.entries.push(l.clone());
            }
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letter(reason: DeadLetterReason, seq: u64) -> DeadLetter {
        DeadLetter {
            source: ActorId(1),
            destination: Some(ActorId(2)),
            reason,
            key: 0,
            seq,
            message: None,
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let b = Backoff {
            initial: Duration::from_millis(10),
            max: Duration::from_millis(100),
            multiplier: 2.0,
            jitter: 0.0,
        };
        let mut rng = XorShift64::new(1);
        assert_eq!(b.delay(1, &mut rng), Duration::from_millis(10));
        assert_eq!(b.delay(2, &mut rng), Duration::from_millis(20));
        assert_eq!(b.delay(3, &mut rng), Duration::from_millis(40));
        // Capped at max from the 5th restart on.
        assert_eq!(b.delay(5, &mut rng), Duration::from_millis(100));
        assert_eq!(b.delay(40, &mut rng), Duration::from_millis(100));
    }

    #[test]
    fn backoff_jitter_stays_in_band() {
        let b = Backoff {
            initial: Duration::from_millis(100),
            max: Duration::from_secs(10),
            multiplier: 1.0,
            jitter: 0.2,
        };
        let mut rng = XorShift64::new(42);
        for _ in 0..1000 {
            let d = b.delay(1, &mut rng).as_secs_f64();
            assert!((0.08..=0.12).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn backoff_none_is_zero_everywhere() {
        let mut rng = XorShift64::new(7);
        for n in [1, 2, 10, 100] {
            assert_eq!(Backoff::none().delay(n, &mut rng), Duration::ZERO);
        }
    }

    #[test]
    fn backoff_huge_restart_count_does_not_overflow() {
        let b = Backoff::default();
        let mut rng = XorShift64::new(3);
        let d = b.delay(u32::MAX, &mut rng);
        assert!(d <= Duration::from_secs(2));
    }

    #[test]
    fn dead_letter_log_counts_past_capacity() {
        let mut log = DeadLetterLog::with_capacity(2);
        for seq in 0..5 {
            log.push(letter(DeadLetterReason::SendTimeout, seq));
        }
        assert_eq!(log.total(), 5);
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].seq, 0);
        assert_eq!(log.by_reason(DeadLetterReason::SendTimeout), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn dead_letter_log_merge_preserves_totals() {
        let mut a = DeadLetterLog::with_capacity(3);
        a.push(letter(DeadLetterReason::OperatorPanic, 1));
        let mut b = DeadLetterLog::with_capacity(3);
        b.push(letter(DeadLetterReason::StoppedActor, 2));
        b.push(letter(DeadLetterReason::StoppedActor, 3));
        b.push(letter(DeadLetterReason::Disconnected, 4));
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.entries().len(), 3, "capped at capacity");
        assert_eq!(a.by_reason(DeadLetterReason::StoppedActor), 2);
    }

    #[test]
    fn supervisor_spec_builders() {
        let s = SupervisorSpec::restart(3, Backoff::none()).with_degrade(DegradePolicy::Forward);
        match &s.policy {
            SupervisionPolicy::Restart(p) => assert_eq!(p.max_restarts, 3),
            other => panic!("unexpected policy {other:?}"),
        }
        assert_eq!(s.degrade, DegradePolicy::Forward);
        assert_eq!(SupervisorSpec::resume().policy, SupervisionPolicy::Resume);
        assert_eq!(SupervisorSpec::default().policy, SupervisionPolicy::Stop);
        assert_eq!(SupervisorSpec::default().degrade, DegradePolicy::Drop);
    }
}
