//! The execution engine: bounded BAS mailboxes, run-to-completion with
//! end-of-stream propagation, and per-actor supervision of panicking
//! operators (see [`crate::supervision`]).
//!
//! Two executors are available (see [`ExecutorKind`]): the classic
//! thread-per-actor configuration of §5.1, and a fixed-size cooperative
//! worker pool that multiplexes ready actors over a handful of OS threads —
//! the SS2Akka decoupling of logical operators from runtime executors (§4),
//! which keeps fission-inflated graphs from oversubscribing cores.

use crate::affinity::{pin_current_thread, PinningConfig};
use crate::checkpoint::{CheckpointCoordinator, ReplayBuffer, StateSnapshot};
use crate::graph::{ActorGraph, ActorSpec, Behavior, SourceConfig};
use crate::mailbox::{
    channel, channel_spsc, BatchFailure, BatchOutcome, BatchPool, DepthProbe, Envelope, RecvBatch,
    SendOutcome, Sender, TryRecvBatch, TrySend,
};
use crate::metrics::{ActorMetrics, RunReport};
use crate::operator::Outputs;
use crate::reconfig::{ReconfigOp, ReconfigTaskState};
use crate::rng::XorShift64;
use crate::route::{Route, RouteState};
use crate::supervision::{
    DeadLetter, DeadLetterLog, DeadLetterReason, DegradePolicy, OperatorFactory, RestartPolicy,
    SupervisionPolicy, SupervisorSpec,
};
use crate::telemetry::{
    HubActor, LatencyHistogram, RawCounters, TelemetryConfig, TelemetryHub, TelemetryReport,
    TraceEventKind, TraceLog,
};
use crate::ActorId;
use spinstreams_core::{Tuple, TUPLE_ARITY};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Which executor runs the actor graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// One dedicated OS thread per actor — the §5.1 configuration ("each
    /// actor is associated with a dedicated thread"). The default.
    ThreadPerActor,
    /// A fixed-size cooperative worker pool: sources keep dedicated
    /// threads (they pace wall-clock emission schedules), while worker
    /// actors are multiplexed over `workers` OS threads with a
    /// run-until-blocked scheduling loop. Post-fission graphs with dozens
    /// of actors then run on a handful of cores without context-switch
    /// thrash.
    Pool {
        /// Worker thread count; `0` means
        /// [`std::thread::available_parallelism`].
        workers: usize,
    },
}

impl ExecutorKind {
    /// Resolves the configured worker count for [`ExecutorKind::Pool`]
    /// (`0` → available parallelism), or `None` for thread-per-actor.
    pub fn pool_workers(self) -> Option<usize> {
        match self {
            ExecutorKind::ThreadPerActor => None,
            ExecutorKind::Pool { workers: 0 } => Some(
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            ),
            ExecutorKind::Pool { workers } => Some(workers),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Default mailbox capacity (overridable per actor in the graph).
    pub mailbox_capacity: usize,
    /// BAS send timeout after which an item is dropped. §5.1 sets this
    /// "significantly higher than the maximum operators' service time"
    /// (5 s there) so that nothing is dropped.
    pub send_timeout: Duration,
    /// Base RNG seed; actor `i` uses `seed + i` so runs are reproducible.
    pub seed: u64,
    /// Number of individual [`DeadLetter`] entries retained in the run
    /// report's log; totals stay exact past the cap.
    pub dead_letter_capacity: usize,
    /// Envelopes coalesced per destination before a mailbox handoff.
    ///
    /// `1` (the default) is the classic one-envelope-per-send path and is
    /// behaviorally identical to the unbatched engine. Larger values
    /// amortize one lock acquisition and condvar notify over the whole
    /// batch, trading a bounded amount of per-tuple latency for
    /// throughput. Values of `0` are treated as `1`.
    pub batch_size: usize,
    /// Deadline for coalesced output: a paced source flushes its buffers
    /// before sleeping if they have been held at least this long, so slow
    /// streams never stall behind an unfilled batch. Irrelevant at
    /// `batch_size = 1`.
    pub flush_interval: Duration,
    /// Which executor runs the graph (thread-per-actor by default).
    pub executor: ExecutorKind,
    /// Epoch-aligned checkpointing: every source injects a numbered epoch
    /// marker after each `n` emitted items, workers align on the markers
    /// (Chandy–Lamport-style barriers), snapshot their operator state via
    /// [`crate::StreamOperator::snapshot`], and ack a shared
    /// [`CheckpointCoordinator`]. On a supervised `Restart` the actor then
    /// recovers by restoring its last snapshot and replaying the logged
    /// post-snapshot input, instead of resetting to empty. `None` (the
    /// default, also `Some(0)`) disables the whole layer — the hot path is
    /// unchanged.
    pub checkpoint_interval: Option<u64>,
    /// Capacity (tuples) of each actor's bounded replay buffer — the input
    /// log replayed after restore. On overflow the buffer is invalidated
    /// until the next completed snapshot and recovery degrades to plain
    /// reset; overflows are counted in the report. Irrelevant with
    /// `checkpoint_interval = None`.
    pub replay_capacity: usize,
    /// CPU affinity for the engine's threads (disabled by default).
    ///
    /// When a core list is given, actors are *sharded by topological
    /// stage*: every actor's Kahn rank is mapped onto a contiguous band of
    /// the list, so pipeline neighbours land on nearby cores and a stage's
    /// working set stays in one cache domain. Thread-per-actor pins each
    /// actor thread to its band's core; the pool executor pins worker `w`
    /// to `cores[w % len]`, pins source threads round-robin, and splits its
    /// ready queue into per-core shards (workers drain their own shard
    /// first, then steal). On platforms without affinity support pinning
    /// degrades to a warn-once no-op and the run proceeds unpinned.
    pub pinning: PinningConfig,
    /// Live reconfiguration handle. When installed, every actor checks a
    /// shared generation counter once per batch and applies posted
    /// [`crate::ReconfigOp`]s at epoch barriers — route swaps, replica
    /// rescaling over pre-provisioned slots, and pause–drain–resume key
    /// handoffs (see [`crate::reconfig`]). Epoch-gated ops require
    /// checkpointing to be enabled (`checkpoint_interval`); without
    /// barriers they never fire. `None` (the default) keeps the hot path
    /// unchanged.
    pub reconfig: Option<crate::reconfig::ReconfigHandle>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mailbox_capacity: 256,
            send_timeout: Duration::from_secs(5),
            seed: 0xC0FFEE,
            dead_letter_capacity: 4096,
            batch_size: 1,
            flush_interval: Duration::from_millis(1),
            executor: ExecutorKind::ThreadPerActor,
            checkpoint_interval: None,
            replay_capacity: 8192,
            pinning: PinningConfig::default(),
            reconfig: None,
        }
    }
}

impl EngineConfig {
    /// Resolves the pool worker count like [`ExecutorKind::pool_workers`],
    /// except that `Pool { workers: 0 }` ("one per core") combined with a
    /// pinned core list means one worker per *pinned* core — the threads
    /// are confined to that set, so sizing the pool by total machine
    /// parallelism would oversubscribe the allowed cores.
    pub fn resolved_pool_workers(&self) -> Option<usize> {
        match self.executor {
            ExecutorKind::Pool { workers: 0 } if !self.pinning.cores.is_empty() => {
                Some(self.pinning.cores.len())
            }
            other => other.pool_workers(),
        }
    }
}

/// Structural problems that prevent executing an actor graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The graph has no actors.
    NoActors,
    /// The graph has no source actor.
    NoSource,
    /// A route references an actor id that does not exist.
    UnknownDestination {
        /// The actor owning the route.
        from: ActorId,
        /// The bad destination.
        to: ActorId,
    },
    /// A route targets a source actor (sources have no mailbox).
    RouteToSource {
        /// The actor owning the route.
        from: ActorId,
        /// The targeted source.
        to: ActorId,
    },
    /// A route is structurally invalid (empty destination list, probability
    /// mass far from 1, key map referencing a missing replica, …).
    InvalidRoute {
        /// The actor owning the route.
        from: ActorId,
        /// Description of the problem.
        reason: String,
    },
    /// The actor graph contains a cycle; BAS blocking could deadlock.
    Cyclic,
    /// An actor thread died in a way supervision could not contain (for
    /// example a panic inside a restart hook). [`run`] reports this
    /// instead of panicking the caller.
    ActorFailed {
        /// The actor whose thread died.
        actor: ActorId,
        /// The panic message, as far as it could be extracted.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoActors => write!(f, "actor graph has no actors"),
            EngineError::NoSource => write!(f, "actor graph has no source actor"),
            EngineError::UnknownDestination { from, to } => {
                write!(f, "{from} routes to unknown {to}")
            }
            EngineError::RouteToSource { from, to } => {
                write!(f, "{from} routes to source actor {to}")
            }
            EngineError::InvalidRoute { from, reason } => {
                write!(f, "invalid route on {from}: {reason}")
            }
            EngineError::Cyclic => write!(f, "actor graph contains a cycle"),
            EngineError::ActorFailed { actor, reason } => {
                write!(f, "{actor} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Validates the actor graph (see [`EngineError`] variants).
pub(crate) fn validate(actors: &[ActorSpec]) -> Result<(), EngineError> {
    if actors.is_empty() {
        return Err(EngineError::NoActors);
    }
    if !actors.iter().any(|a| a.behavior.is_source()) {
        return Err(EngineError::NoSource);
    }
    let n = actors.len();
    for (i, spec) in actors.iter().enumerate() {
        let from = ActorId(i);
        for route in &spec.routes {
            let mut dests = route.destinations_iter().peekable();
            if dests.peek().is_none() {
                return Err(EngineError::InvalidRoute {
                    from,
                    reason: "route has no destinations".into(),
                });
            }
            for d in dests {
                if d.0 >= n {
                    return Err(EngineError::UnknownDestination { from, to: d });
                }
                if actors[d.0].behavior.is_source() {
                    return Err(EngineError::RouteToSource { from, to: d });
                }
            }
            match route {
                Route::Probabilistic { choices } => {
                    let sum: f64 = choices.iter().map(|(_, p)| *p).sum();
                    if (sum - 1.0).abs() > 1e-6 || choices.iter().any(|(_, p)| *p < 0.0) {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: format!("probabilities sum to {sum}"),
                        });
                    }
                }
                Route::KeyMap {
                    key_map,
                    destinations,
                } => {
                    if key_map.is_empty() {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: "empty key map".into(),
                        });
                    }
                    if key_map.iter().any(|r| *r >= destinations.len()) {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: "key map references missing replica".into(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Acyclicity (actor-level): BAS blocking on a cycle can deadlock.
    let succ: Vec<Vec<usize>> = actors
        .iter()
        .map(|a| {
            let mut s: Vec<usize> = a
                .routes
                .iter()
                .flat_map(|r| r.destinations_iter())
                .map(|d| d.0)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    if !spinstreams_core::is_acyclic(n, &succ) {
        return Err(EngineError::Cyclic);
    }
    Ok(())
}

/// Shared per-thread context for delivering outputs.
struct DeliveryCtx {
    id: ActorId,
    senders: Vec<Option<Sender>>,
    routes: Vec<RouteState>,
    eos_targets: Vec<usize>,
    rng: XorShift64,
    metrics: Arc<ActorMetrics>,
    started_at: Instant,
    send_timeout: Duration,
    /// This actor's private dead-letter log: nothing shared sits on the
    /// send path. Per-actor logs are merged into the run report (in actor
    /// id order) at shutdown; the per-actor `dead_letters` metric keeps
    /// `total_dead_letters()` exact regardless of entry caps.
    dead_letters: DeadLetterLog,
    /// Present only with telemetry enabled on a sink actor: records
    /// end-to-end latency of every tuple consumed at a sink port.
    latency: Option<Arc<LatencyHistogram>>,
    /// Present only with telemetry enabled: structured lifecycle events.
    trace: Option<Arc<TraceLog>>,
    /// Stamp source emissions with their departure time (telemetry on).
    stamp: bool,
    /// Envelopes coalesced per destination before a mailbox handoff.
    batch_size: usize,
    /// Deadline after which a paced source flushes an unfilled batch.
    flush_interval: Duration,
    /// Per-destination coalescing buffers (indexed by actor id; only the
    /// slots of reachable destinations are ever used). Reachable slots are
    /// checked out of `buf_pool` pre-sized to the batch limit, so the
    /// steady-state send path never grows them.
    out_bufs: Vec<Vec<Envelope>>,
    /// The run-wide buffer slab `out_bufs` was drawn from; buffers go back
    /// to it in [`release_buffers`](Self::release_buffers) at actor finish.
    buf_pool: Arc<BatchPool>,
    /// Total envelopes currently coalesced across all buffers.
    buffered: usize,
    /// When the coalescing buffers were last drained (deadline policy).
    last_flush: Instant,
    /// Clock reading taken once per drained input batch (worker actors
    /// only; `0` = never refreshed). Sink-port latency/departure stamping
    /// uses this instead of one `Instant::now()` per envelope, bounding
    /// the stamp skew to one batch.
    cached_now_ns: u64,
    /// Sink-port departures accumulated since the last flush. All share
    /// the batch-cached clock reading, so they fold into one metrics
    /// update in [`flush_all`](Self::flush_all) instead of one RMW per
    /// consumed tuple.
    pending_sink_outs: u64,
    /// Run-length latency coalescing for the sink histogram: the current
    /// run's observed latency and its repeat count. Source stamps are
    /// batch-granular and the sink clock is batch-cached, so consecutive
    /// tuples usually observe the *same* latency — folding a run into one
    /// `record_n` replaces four shared-atomic RMWs per consumed tuple
    /// with four per distinct value.
    pending_lat_ns: u64,
    pending_lat_n: u64,
    /// Present only under the pool executor: lets a blocked flush run
    /// other ready actors instead of parking its worker thread.
    pool: Option<Arc<PoolShared>>,
    /// This actor's slot in the (possibly multi-tenant) pool: its tenant
    /// base offset plus its local actor id. Single-tenant runs have base
    /// 0, so slot == actor id. Only meaningful when `pool` is `Some`.
    pool_slot: usize,
    /// Span-sampling mask (telemetry on, `span_sample > 0`): a data tuple
    /// is flight-recorded at every hop iff `seq & mask == 0`. `None`
    /// disables span tracing so the hot path never tests per-tuple.
    span_mask: Option<u64>,
    /// Epoch-marker interval (sources inject one marker per `n` emitted
    /// items); `None` disables checkpointing for the whole run.
    checkpoint_interval: Option<u64>,
    /// Shared checkpoint ack ledger, present only with checkpointing on.
    coordinator: Option<Arc<CheckpointCoordinator>>,
}

impl DeliveryCtx {
    fn now_ns(&self) -> u64 {
        self.started_at.elapsed().as_nanos() as u64
    }

    /// Re-reads the clock into the per-batch cache. Called once per
    /// drained input batch, not per envelope.
    fn refresh_now(&mut self) {
        self.cached_now_ns = self.now_ns();
    }

    /// The batch-cached clock for sink-port stamping; falls back to a
    /// fresh read on actors that never refresh (sources, whose emission
    /// times *are* the measurement).
    fn sink_now(&self) -> u64 {
        if self.cached_now_ns != 0 {
            self.cached_now_ns
        } else {
            self.now_ns()
        }
    }

    /// Hands every checked-out coalescing buffer back to the run-wide
    /// [`BatchPool`]. Called exactly once, after the actor's terminal
    /// flush: the capacity this actor no longer needs is then reused by
    /// whoever allocates next instead of sitting dead until shutdown.
    fn release_buffers(&mut self) {
        let bufs = std::mem::take(&mut self.out_bufs);
        for buf in bufs {
            if buf.capacity() > 0 {
                self.buf_pool.give(buf);
            }
        }
    }

    /// Records a lifecycle trace event, if tracing is enabled.
    fn trace_event(&self, kind: TraceEventKind) {
        if let Some(trace) = &self.trace {
            trace.record(self.now_ns(), self.id, kind);
        }
    }

    /// Records `tuple` as undeliverable in this actor's private log — no
    /// shared lock on the send path. The per-actor logs are merged into
    /// the [`RunReport`] in actor-id order at shutdown; the per-actor
    /// `dead_letters` metric keeps `total_dead_letters()` exact even when
    /// the merged log's capacity truncates entries.
    fn dead_letter(
        &mut self,
        destination: Option<ActorId>,
        reason: DeadLetterReason,
        tuple: &Tuple,
    ) {
        self.dead_letter_msg(destination, reason, tuple, None);
    }

    /// Like [`dead_letter`](Self::dead_letter), carrying the panic payload
    /// message when the item was consumed by a caught panic — chaos runs
    /// can then assert *which* fault fired, not just that one did.
    fn dead_letter_msg(
        &mut self,
        destination: Option<ActorId>,
        reason: DeadLetterReason,
        tuple: &Tuple,
        message: Option<String>,
    ) {
        use std::sync::atomic::Ordering;
        self.metrics.dead_letters.fetch_add(1, Ordering::Relaxed);
        self.trace_event(TraceEventKind::DeadLetter { reason });
        self.dead_letters.push(DeadLetter {
            source: self.id,
            destination,
            reason,
            key: tuple.key,
            seq: tuple.seq,
            message,
        });
    }

    /// Routes everything in `out` into the per-destination coalescing
    /// buffers; a buffer reaching `batch_size` is handed to the mailbox
    /// immediately. With `batch_size = 1` every envelope flushes as it is
    /// buffered, reproducing the unbatched engine exactly.
    fn deliver(&mut self, out: &mut Outputs) {
        for (port, tuple) in out.drain() {
            self.deliver_one(port, tuple);
        }
    }

    /// Routes a single `(port, tuple)` emission — the per-item body of
    /// [`deliver`](Self::deliver), split out so the reconfiguration layer's
    /// pause interception can route the non-paused remainder item by item.
    #[inline]
    fn deliver_one(&mut self, port: usize, tuple: Tuple) {
        match self.routes.get_mut(port) {
            Some(route) => {
                let dest = route.pick(&tuple, &mut self.rng).0;
                self.out_bufs[dest].push(Envelope::Data(tuple));
                self.buffered += 1;
                if self.out_bufs[dest].len() >= self.batch_size {
                    self.flush_dest(dest);
                }
            }
            None => {
                // Sink port: the emission is the actor's departure —
                // and, with telemetry on, the end of the tuple's
                // end-to-end latency span. Never coalesced: there is
                // no mailbox hop to amortize. Workers stamp with the
                // batch-cached clock (one read per drained batch).
                if self.latency.is_some() {
                    if let Some(lat) = tuple.latency_ns(self.sink_now()) {
                        if self.pending_lat_n > 0 && lat == self.pending_lat_ns {
                            self.pending_lat_n += 1;
                        } else {
                            self.flush_latency();
                            self.pending_lat_ns = lat;
                            self.pending_lat_n = 1;
                        }
                    }
                }
                self.pending_sink_outs += 1;
            }
        }
    }

    /// Hands one destination's coalesced envelopes to its mailbox in a
    /// single batched send, with per-envelope accounting: delivered
    /// envelopes count as departures, undelivered ones dead-letter
    /// individually (partial delivery stops at the first timed-out slot).
    fn flush_dest(&mut self, dest: usize) {
        use std::sync::atomic::Ordering;
        let mut buf = std::mem::take(&mut self.out_bufs[dest]);
        if buf.is_empty() {
            self.out_bufs[dest] = buf;
            return;
        }
        self.buffered -= buf.len();
        let sender = self.senders[dest]
            .as_ref()
            .expect("validated destination has a mailbox");
        let outcome = match &self.pool {
            // Pooled actors must not park their worker thread while a
            // downstream mailbox is full — the consumer that would drain it
            // may be waiting for this very thread. Help run ready actors
            // instead of sleeping.
            Some(pool) => {
                let pool = Arc::clone(pool);
                pool_send_batch(&pool, sender, &mut buf, self.send_timeout, self.pool_slot)
            }
            None => sender.send_batch(&mut buf, self.send_timeout),
        };
        if outcome.blocked > Duration::ZERO {
            let ns = outcome.blocked.as_nanos() as u64;
            self.metrics.blocked_ns.fetch_add(ns, Ordering::Relaxed);
            // Charge the stall to the *receiving* mailbox as well: the
            // receiver-edge view ("how long did producers stall on my
            // inbox") is what the bottleneck attribution joins against.
            sender.add_stall_ns(ns);
            self.trace_event(TraceEventKind::Blocked { ns });
        }
        if outcome.delivered > 0 {
            self.metrics
                .record_out_n(self.now_ns(), outcome.delivered as u64);
        }
        if let Some(failure) = outcome.failure {
            let reason = match failure {
                BatchFailure::TimedOut => DeadLetterReason::SendTimeout,
                BatchFailure::Disconnected => DeadLetterReason::Disconnected,
            };
            for env in buf.drain(..) {
                if let Envelope::Data(tuple) = env {
                    self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                    self.dead_letter(Some(ActorId(dest)), reason, &tuple);
                }
            }
        }
        buf.clear();
        // Hand the (empty) buffer back so its allocation is reused.
        self.out_bufs[dest] = buf;
    }

    /// Drains every coalescing buffer. Called after each processed input
    /// batch, before EOS propagation, and on supervision events, so
    /// nothing ever sits buffered across a restart, a backoff sleep, or
    /// shutdown.
    fn flush_all(&mut self) {
        if self.pending_sink_outs > 0 {
            self.metrics
                .record_out_n(self.sink_now(), self.pending_sink_outs);
            self.pending_sink_outs = 0;
        }
        self.flush_latency();
        if self.buffered > 0 {
            for dest in 0..self.out_bufs.len() {
                if !self.out_bufs[dest].is_empty() {
                    self.flush_dest(dest);
                }
            }
        }
        if self.batch_size > 1 {
            // Batch-1 never consults the deadline; skip the clock read.
            self.last_flush = Instant::now();
        }
    }

    /// Folds the current latency run into the shared sink histogram.
    fn flush_latency(&mut self) {
        if self.pending_lat_n > 0 {
            if let Some(hist) = &self.latency {
                hist.record_n(self.pending_lat_ns, self.pending_lat_n);
            }
            self.pending_lat_n = 0;
        }
    }

    /// Deadline policy for paced sources: flush unfilled batches before
    /// sleeping until `wake_at` if they would otherwise be held past
    /// `flush_interval`, so a slow stream never stalls behind coalescing.
    fn flush_before_sleep(&mut self, wake_at: Instant) {
        if self.batch_size > 1
            && self.buffered > 0
            && wake_at.saturating_duration_since(self.last_flush) >= self.flush_interval
        {
            self.flush_all();
        }
    }

    /// Sends one EOS to every possible destination; EOS is never dropped.
    fn propagate_eos(&mut self) {
        // Coalesced data must drain before EOS: a worker counts EOS
        // markers to terminate, and FIFO order is only meaningful if every
        // buffered envelope precedes the marker in the mailbox.
        self.flush_all();
        for &d in &self.eos_targets {
            if let Some(sender) = &self.senders[d] {
                match &self.pool {
                    // Pooled: keep running ready actors while the target
                    // mailbox is full, falling back to short bounded
                    // blocking slices when nothing is runnable.
                    Some(pool) => {
                        let pool = Arc::clone(pool);
                        loop {
                            match sender.try_send(Envelope::Eos) {
                                TrySend::Sent | TrySend::Disconnected => break,
                                TrySend::Full => {
                                    if !run_one_ready(&pool, self.pool_slot) {
                                        let out =
                                            sender.send(Envelope::Eos, Duration::from_millis(1));
                                        if out.delivered() || out == SendOutcome::Disconnected {
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        // EOS must never be dropped: retry until delivered
                        // (or the receiver is gone).
                        while sender.send(Envelope::Eos, Duration::from_secs(3600))
                            == SendOutcome::TimedOut
                        {}
                    }
                }
            }
        }
        // Release all senders so downstream disconnect detection works.
        for s in self.senders.iter_mut() {
            *s = None;
        }
    }

    /// Sends one epoch marker to every destination (the same fan-out as
    /// EOS — markers, unlike routed data, must reach every downstream
    /// actor). Markers are never dropped: they pace the whole barrier
    /// protocol, so a lost marker would stall alignment forever. Coalesced
    /// data drains first — FIFO order is what makes the marker a barrier.
    fn broadcast_marker(&mut self, epoch: u64) {
        self.flush_all();
        for &d in &self.eos_targets {
            if let Some(sender) = &self.senders[d] {
                match &self.pool {
                    // Pooled: help run ready actors while the target
                    // mailbox is full (same discipline as EOS).
                    Some(pool) => {
                        let pool = Arc::clone(pool);
                        loop {
                            match sender.try_send(Envelope::Epoch(epoch)) {
                                TrySend::Sent | TrySend::Disconnected => break,
                                TrySend::Full => {
                                    if !run_one_ready(&pool, self.pool_slot) {
                                        let out = sender
                                            .send(Envelope::Epoch(epoch), Duration::from_millis(1));
                                        if out.delivered() || out == SendOutcome::Disconnected {
                                            break;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        while sender.send(Envelope::Epoch(epoch), Duration::from_secs(3600))
                            == SendOutcome::TimedOut
                        {}
                    }
                }
            }
        }
    }
}

/// Sleeps until `target`. Coarse sleep overshoot is tolerated: the source
/// keeps an *absolute* emission schedule and catches up after oversleeping,
/// so the average rate stays at the nominal value without busy-waiting.
fn pace_until(target: Instant) {
    let now = Instant::now();
    if now < target {
        thread::sleep(target - now);
    }
}

/// Runs a source actor to completion on the calling thread, returning its
/// private dead-letter log for the shutdown merge.
fn run_source(cfg: SourceConfig, mut ctx: DeliveryCtx) -> DeadLetterLog {
    ctx.trace_event(TraceEventKind::ActorStarted);
    let mut rng = XorShift64::new(cfg.seed);
    let mut out = Outputs::new();
    let period = if cfg.rate.is_finite() {
        Some(Duration::from_secs_f64(1.0 / cfg.rate))
    } else {
        None
    };
    // Departure stamping (telemetry on): a paced source reads the clock
    // per tuple — it sleeps between emissions, so the read is free and the
    // emission time *is* the measurement. An unpaced source saturates the
    // pipeline, where one `clock_gettime` per tuple is a measurable tax on
    // the hot path; it stamps a whole coalescing batch with one reading,
    // bounding the skew to one batch — the same bound the sink side
    // already accepts for latency termination.
    let stamp_every = if period.is_some() {
        1
    } else {
        ctx.batch_size.max(1) as u64
    };
    let mut stamp_ns = 0u64;
    // Countdown instead of `seq % stamp_every`: a u64 division per emitted
    // tuple is measurable at saturation rates.
    let mut until_stamp = 0u64;
    let mut next_t = Instant::now();
    for seq in 0..cfg.count {
        if let Some(p) = period {
            ctx.flush_before_sleep(next_t);
            pace_until(next_t);
            next_t += p;
            let now = Instant::now();
            if now > next_t + Duration::from_millis(50) {
                // Far behind schedule: that is backpressure, not timer
                // jitter — resume the nominal pace from now rather than
                // bursting to catch up.
                next_t = now;
            }
        }
        let key = match &cfg.keys {
            Some(dist) => dist.sample(rng.next_f64()) as u64,
            None => seq,
        };
        let mut values = [0.0f64; TUPLE_ARITY];
        for v in values.iter_mut() {
            *v = rng.next_f64();
        }
        let tuple = Tuple::new(key, seq, values);
        let tuple = if ctx.stamp {
            if until_stamp == 0 {
                stamp_ns = ctx.now_ns();
                until_stamp = stamp_every;
            }
            until_stamp -= 1;
            tuple.stamped(stamp_ns)
        } else {
            tuple
        };
        out.emit_default(tuple);
        ctx.deliver(&mut out);
        // Epoch injection: one numbered marker per `interval` emitted
        // items. The source has no state to snapshot — injecting *is* its
        // part of the barrier — so it acks the coordinator immediately.
        if let Some(interval) = ctx.checkpoint_interval {
            if (seq + 1).is_multiple_of(interval) {
                let epoch = (seq + 1) / interval;
                ctx.broadcast_marker(epoch);
                if let Some(c) = &ctx.coordinator {
                    c.ack(ctx.id.0, epoch);
                }
                ctx.trace_event(TraceEventKind::CheckpointCompleted { epoch, bytes: 0 });
            }
        }
    }
    ctx.propagate_eos();
    ctx.trace_event(TraceEventKind::ActorFinished);
    ctx.release_buffers();
    std::mem::take(&mut ctx.dead_letters)
}

thread_local! {
    /// While true, the process panic hook stays quiet on this thread —
    /// supervised operator panics are expected and reported through the
    /// run report, not stderr.
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that defers to the previous
/// hook except on threads currently running a supervised operator call.
fn install_panic_silencer() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Runs `f` with panics caught and the panic hook silenced, charging the
/// elapsed time to the actor's busy counter. Used for one-off calls (the
/// terminal `flush`); the per-tuple hot path uses [`guarded_raw`] and
/// batch-level timing instead — two `clock_gettime` calls per tuple cost
/// more than a pass-through operator does.
fn guarded_call(metrics: &ActorMetrics, f: impl FnOnce()) -> Result<(), Box<dyn Any + Send>> {
    use std::sync::atomic::Ordering;
    let t0 = Instant::now();
    let result = guarded_raw(f);
    metrics
        .busy_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    result
}

/// Runs `f` with panics caught and the panic hook silenced — no timing.
/// Callers account elapsed time at batch granularity (see
/// [`WorkerTask::process_batch`]).
fn guarded_raw(f: impl FnOnce()) -> Result<(), Box<dyn Any + Send>> {
    SILENCE_PANICS.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SILENCE_PANICS.with(|s| s.set(false));
    result
}

/// A worker actor's complete runnable state: operator, supervision,
/// mailbox receiver, and delivery context. Thread-per-actor drives it with
/// a blocking [`run_worker`] loop; the pool executor stores it in a
/// [`PoolShared`] slot and drives it with non-blocking [`WorkerTask::poll`]
/// calls whenever the actor is ready.
struct WorkerTask {
    op: Box<dyn crate::StreamOperator>,
    factory: Option<OperatorFactory>,
    supervision: SupervisorSpec,
    rx: crate::mailbox::Receiver,
    eos_left: usize,
    ctx: DeliveryCtx,
    out: Outputs,
    inbox: Vec<Envelope>,
    /// Degraded mode: the operator is gone; input is forwarded or dropped.
    stopped: bool,
    restarts_done: u32,
    /// Checkpoint/recovery state, present only with checkpointing on so
    /// the default hot path carries a single `Option` check per envelope.
    ckpt: Option<Box<CkptState>>,
    /// Live-reconfiguration state, present only when a
    /// [`crate::ReconfigHandle`] is installed; its absence keeps the hot
    /// path to one `Option` check per batch.
    reconfig: Option<Box<ReconfigTaskState>>,
    /// Input batches a single [`WorkerTask::poll`] may drain before
    /// yielding the worker thread back to the scheduler. Multi-tenant
    /// pools set a finite quantum so deficit round-robin can interleave
    /// tenants; single-tenant runs use `usize::MAX` (run-until-blocked,
    /// the classic behavior — the budget check never fires).
    poll_budget: usize,
}

/// Per-actor epoch-alignment and recovery state (checkpointing on).
struct CkptState {
    /// Markers received for the epoch currently aligning.
    markers_seen: usize,
    /// Upstream actors that have not yet sent EOS. The alignment quorum:
    /// an epoch completes when `markers_seen` covers every *open* input,
    /// so a finished upstream can't stall barriers from live ones.
    open_inputs: usize,
    /// Epoch currently aligning (`0` = none in progress).
    aligning: u64,
    /// Last locally completed epoch.
    completed: u64,
    /// Envelopes buffered behind the barrier while aligning. A fan-in
    /// mailbox merges upstreams, so post-marker data is held — for every
    /// channel — until the last marker lands (input-side barrier
    /// alignment); deferred later-epoch markers queue here too.
    align_buf: Vec<Envelope>,
    /// Bounded input log for post-restore replay, keyed by epoch.
    replay: ReplayBuffer,
    /// Latest successfully captured snapshot (`None` both before the
    /// first barrier and for stateless operators).
    snapshot: Option<StateSnapshot>,
    /// Epoch of `snapshot` (`0` = none).
    snapshot_epoch: u64,
    /// When the first marker of the aligning epoch arrived (stall metric).
    align_started: Option<Instant>,
}

impl WorkerTask {
    /// Processes every envelope currently in `self.inbox` under the
    /// actor's [`SupervisorSpec`] (operator invocations run inside
    /// `catch_unwind`). Returns true once the final EOS marker is seen.
    fn process_inbox(&mut self) -> bool {
        use std::sync::atomic::Ordering;
        let mut finished = false;
        let mut inbox = std::mem::take(&mut self.inbox);
        // Count arrivals once per drained batch. The loop below only stops
        // early at the *final* EOS marker, and FIFO order plus EOS-last per
        // upstream guarantee no data envelope sits behind it, so every
        // counted envelope is also processed (possibly via the alignment
        // buffer).
        // Flight recorder: sampled tuples leave one span event per hop,
        // stamped with the batch-cached clock (same skew bound as sink
        // latency). The span test shares the arrival-counting pass and
        // hoists the clock and log handle out of the loop; off (`None`)
        // the hot path never tests per-tuple.
        let arrived = match (self.ctx.span_mask, self.ctx.trace.as_ref()) {
            (Some(mask), Some(trace)) => {
                let now = self.ctx.sink_now();
                let mut n = 0u64;
                for env in inbox.iter() {
                    if let Envelope::Data(t) = env {
                        n += 1;
                        if t.seq & mask == 0 && t.src_ns != 0 {
                            trace.record(
                                now,
                                self.ctx.id,
                                TraceEventKind::Span {
                                    tuple_seq: t.seq,
                                    src_ns: t.src_ns,
                                },
                            );
                        }
                    }
                }
                n
            }
            _ => inbox
                .iter()
                .filter(|e| matches!(e, Envelope::Data(_)))
                .count() as u64,
        };
        if arrived > 0 {
            self.ctx
                .metrics
                .items_in
                .fetch_add(arrived, Ordering::Relaxed);
        }
        for env in inbox.drain(..) {
            if self.handle_env(env) {
                // FIFO per mailbox and EOS-last per upstream guarantee no
                // data follows the final marker.
                finished = true;
                break;
            }
        }
        // Hand the (drained) inbox back so its allocation is reused.
        self.inbox = inbox;
        finished
    }

    /// Handles one envelope: barrier alignment for epoch markers, the
    /// supervised operator invocation for data. Returns true once the
    /// final EOS marker is seen.
    fn handle_env(&mut self, env: Envelope) -> bool {
        match env {
            Envelope::Data(item) => {
                if let Some(ckpt) = self.ckpt.as_deref_mut() {
                    if ckpt.aligning != 0 {
                        // Mid-alignment: the merged fan-in mailbox cannot
                        // attribute data to a channel, so everything after
                        // the first marker waits behind the barrier.
                        ckpt.align_buf.push(Envelope::Data(item));
                        return false;
                    }
                }
                self.handle_data(item);
                false
            }
            Envelope::Epoch(e) => {
                let Some(ckpt) = self.ckpt.as_deref_mut() else {
                    // Checkpointing off: stray markers are inert.
                    return false;
                };
                if ckpt.aligning != 0 && e != ckpt.aligning {
                    // A later epoch's marker from a fast upstream: defer it
                    // behind the in-progress barrier.
                    ckpt.align_buf.push(Envelope::Epoch(e));
                    return false;
                }
                if ckpt.aligning == 0 {
                    if e <= ckpt.completed {
                        return false;
                    }
                    ckpt.aligning = e;
                    ckpt.markers_seen = 0;
                    ckpt.align_started = Some(Instant::now());
                }
                ckpt.markers_seen += 1;
                let aligned = ckpt.markers_seen >= ckpt.open_inputs;
                if aligned {
                    self.complete_alignment();
                }
                false
            }
            Envelope::Handoff(id) => {
                if let Some(ckpt) = self.ckpt.as_deref_mut() {
                    if ckpt.aligning != 0 {
                        // Handoff tokens respect the barrier like data:
                        // extraction/merge happens against post-barrier
                        // state.
                        ckpt.align_buf.push(Envelope::Handoff(id));
                        return false;
                    }
                }
                self.handle_handoff(id);
                false
            }
            Envelope::Eos => {
                self.eos_left = self.eos_left.saturating_sub(1);
                let mut aligned = false;
                if let Some(ckpt) = self.ckpt.as_deref_mut() {
                    // A finished upstream leaves the alignment quorum: its
                    // marker for the current epoch either already arrived
                    // or never will.
                    ckpt.open_inputs = ckpt.open_inputs.saturating_sub(1);
                    aligned = ckpt.aligning != 0 && ckpt.markers_seen >= ckpt.open_inputs;
                }
                if aligned {
                    self.complete_alignment();
                }
                self.eos_left == 0
            }
        }
    }

    /// Processes one data item under supervision. With checkpointing on,
    /// the item is logged to the replay buffer *before* the operator runs,
    /// so a panic leaves the poisoned item as the log's last entry.
    fn handle_data(&mut self, item: Tuple) {
        if self.stopped {
            match self.supervision.degrade {
                DegradePolicy::Forward => {
                    self.out.emit_default(item);
                    self.deliver_outputs();
                }
                DegradePolicy::Drop => {
                    self.ctx
                        .dead_letter(None, DeadLetterReason::StoppedActor, &item);
                }
            }
            return;
        }
        if let Some(ckpt) = self.ckpt.as_deref_mut() {
            ckpt.replay.push(ckpt.completed + 1, item);
        }
        let op = &mut self.op;
        let out = &mut self.out;
        match guarded_raw(|| op.process(item, out)) {
            Ok(()) => {
                self.out.inherit_stamp(item.src_ns);
                self.deliver_outputs();
            }
            Err(payload) => self.handle_panic(item, payload),
        }
    }

    /// The supervision path for a panicking `process` invocation.
    fn handle_panic(&mut self, item: Tuple, payload: Box<dyn Any + Send>) {
        use std::sync::atomic::Ordering;
        // The poisoned invocation may have emitted partial output before
        // dying; discard it — the item either fully processes or
        // dead-letters. Output coalesced from *earlier* items is sound:
        // flush it before any backoff sleep so downstream is not starved
        // while this actor recovers.
        self.out.clear();
        self.ctx.flush_all();
        self.ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
        self.ctx.trace_event(TraceEventKind::OperatorPanicked);
        let message = panic_message(payload.as_ref());
        let policy = self.supervision.policy.clone();
        match policy {
            SupervisionPolicy::Resume => {
                // The poisoned item is dropped, so it must not be in the
                // replay log either (it contributed nothing to state).
                if let Some(ckpt) = self.ckpt.as_deref_mut() {
                    ckpt.replay.pop_last();
                }
                self.ctx.dead_letter_msg(
                    None,
                    DeadLetterReason::OperatorPanic,
                    &item,
                    Some(message),
                );
            }
            SupervisionPolicy::Restart(policy) => {
                if self.restarts_done < policy.max_restarts {
                    self.restarts_done += 1;
                    self.restart_backoff(&policy);
                    match &self.factory {
                        Some(f) => self.op = f.build(),
                        None => self.op.reset(),
                    }
                    self.ctx.metrics.restarts.fetch_add(1, Ordering::Relaxed);
                    self.ctx.trace_event(TraceEventKind::OperatorRestarted);
                    // Stateful recovery: restore the last snapshot, replay
                    // the logged input with outputs suppressed (they were
                    // already delivered), then retry the failed item live —
                    // its output was never delivered.
                    let recovered = match self.ckpt.take() {
                        Some(mut ckpt) => {
                            let ok = self.recover(&mut ckpt, true);
                            self.ckpt = Some(ckpt);
                            ok
                        }
                        None => false,
                    };
                    if !recovered {
                        // No checkpoint layer (or an overflowed replay
                        // buffer): the pre-checkpoint semantics — the item
                        // dead-letters and the operator restarts empty.
                        self.ctx.dead_letter_msg(
                            None,
                            DeadLetterReason::OperatorPanic,
                            &item,
                            Some(message),
                        );
                        return;
                    }
                    let op = &mut self.op;
                    let out = &mut self.out;
                    if guarded_raw(|| op.process(item, out)).is_ok() {
                        self.out.inherit_stamp(item.src_ns);
                        self.deliver_outputs();
                    } else {
                        // The retried item panicked again: drop it (like
                        // Resume) instead of looping forever.
                        self.out.clear();
                        self.ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
                        self.ctx.trace_event(TraceEventKind::OperatorPanicked);
                        if let Some(ckpt) = self.ckpt.as_deref_mut() {
                            ckpt.replay.pop_last();
                        }
                        self.ctx.dead_letter_msg(
                            None,
                            DeadLetterReason::OperatorPanic,
                            &item,
                            Some(message),
                        );
                    }
                } else {
                    self.stopped = true;
                    self.ctx.trace_event(TraceEventKind::ActorStopped);
                    self.ctx.dead_letter_msg(
                        None,
                        DeadLetterReason::OperatorPanic,
                        &item,
                        Some(message),
                    );
                }
            }
            SupervisionPolicy::Stop => {
                self.stopped = true;
                self.ctx.trace_event(TraceEventKind::ActorStopped);
                self.ctx.dead_letter_msg(
                    None,
                    DeadLetterReason::OperatorPanic,
                    &item,
                    Some(message),
                );
            }
        }
    }

    /// Sleeps the restart backoff delay and records it.
    fn restart_backoff(&mut self, policy: &RestartPolicy) {
        use std::sync::atomic::Ordering;
        let delay = policy.backoff.delay(self.restarts_done, &mut self.ctx.rng);
        if !delay.is_zero() {
            thread::sleep(delay);
            self.ctx
                .metrics
                .backoff_ns
                .fetch_add(delay.as_nanos() as u64, Ordering::Relaxed);
            self.ctx.trace_event(TraceEventKind::Backoff {
                ns: delay.as_nanos() as u64,
            });
        }
    }

    /// Restores the freshly rebuilt operator from its last local snapshot
    /// and replays the logged post-snapshot input with outputs suppressed.
    /// With `skip_last` the log's final entry (the poisoned item, pushed
    /// just before its panic) is left to the caller to retry live. Returns
    /// false when the replay buffer overflowed since the last snapshot —
    /// recovery then degrades to the plain reset the caller already did.
    fn recover(&mut self, ckpt: &mut CkptState, skip_last: bool) -> bool {
        use std::sync::atomic::Ordering;
        if !ckpt.replay.is_valid() {
            return false;
        }
        if let Some(snap) = &ckpt.snapshot {
            let op = &mut self.op;
            // A panicking or failed restore leaves the operator freshly
            // reset — replay still reconstructs what it can.
            let _ = guarded_raw(|| {
                op.restore(snap);
            });
        }
        // Re-inject handoffs merged since the restored snapshot (their
        // published copies are retained in the shared map until the next
        // completed checkpoint for exactly this case): the snapshot
        // predates the merge and the replay log only holds data tuples.
        // Injection precedes replay — pre-merge replay data is for
        // disjoint keys (commutes), post-merge moved-key data then lands
        // on the re-injected state.
        if let Some(rc) = self.reconfig.as_deref_mut() {
            if !rc.merged_since_snapshot.is_empty() {
                let snaps: Vec<StateSnapshot> = {
                    let map = rc
                        .shared
                        .handoffs
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    rc.merged_since_snapshot
                        .iter()
                        .filter_map(|id| map.get(id).cloned())
                        .collect()
                };
                for snap in &snaps {
                    if !snap.is_empty() {
                        let op = &mut self.op;
                        let _ = guarded_raw(|| {
                            op.inject_state(snap);
                        });
                    }
                }
            }
        }
        let n = ckpt.replay.len().saturating_sub(skip_last as usize);
        for (_, tuple) in &ckpt.replay.entries()[..n] {
            let tuple = *tuple;
            let op = &mut self.op;
            let out = &mut self.out;
            // Replay panics are skipped: the tuple's output was already
            // delivered in its first life, and deterministic faults are
            // fire-once, so a second failure only means lost state we
            // cannot do better on.
            let _ = guarded_raw(|| op.process(tuple, out));
            self.out.clear();
        }
        // Re-drop keys extracted (handed off) since the restored snapshot:
        // restore + replay just rebuilt their state locally, but the
        // published copy is authoritative — stale local state would
        // double-emit at the terminal flush. Extraction follows replay so
        // pre-swap moved-key replay data is dropped with it.
        if let Some(rc) = self.reconfig.as_deref_mut() {
            for (_, keys) in rc.extracted_since_snapshot.iter() {
                let op = &mut self.op;
                let _ = guarded_raw(|| {
                    let _ = op.extract_keys(keys);
                });
            }
        }
        self.ctx.metrics.recoveries.fetch_add(1, Ordering::Relaxed);
        self.ctx
            .metrics
            .replayed
            .fetch_add(n as u64, Ordering::Relaxed);
        self.ctx
            .metrics
            .restored_epoch
            .store(ckpt.snapshot_epoch, Ordering::Relaxed);
        self.ctx.trace_event(TraceEventKind::Recovered {
            epoch: ckpt.snapshot_epoch,
            replayed: n as u64,
        });
        true
    }

    /// Finishes the in-progress barrier: snapshot (under supervision), ack
    /// the coordinator, re-broadcast the marker downstream, then release
    /// the buffered post-barrier envelopes in arrival order.
    fn complete_alignment(&mut self) {
        use std::sync::atomic::Ordering;
        let Some(mut ckpt) = self.ckpt.take() else {
            return;
        };
        let epoch = ckpt.aligning;
        ckpt.aligning = 0;
        ckpt.markers_seen = 0;
        ckpt.completed = epoch;
        if let Some(t0) = ckpt.align_started.take() {
            self.ctx
                .metrics
                .align_stall_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if !self.stopped {
            self.take_snapshot(&mut ckpt, epoch);
        }
        // Stopped (degraded) actors still ack and forward markers: a dead
        // operator must not stall the global checkpoint frontier.
        if let Some(c) = &self.ctx.coordinator {
            c.ack(self.ctx.id.0, epoch);
        }
        // Marker first, buffered data second: downstream must see the
        // barrier before any post-barrier output.
        self.ctx.broadcast_marker(epoch);
        // Staged route swaps fire here — after the marker broadcast (so
        // every pre-barrier tuple is already flushed under the old route)
        // and before the buffered post-barrier envelopes are released
        // (which would otherwise be routed pre-swap). This makes the swap
        // barrier-exact.
        self.apply_reconfig(epoch);
        let buffered = std::mem::take(&mut ckpt.align_buf);
        self.ckpt = Some(ckpt);
        for env in buffered {
            // Only Data, Handoff tokens and deferred Epoch markers are
            // ever buffered, so no termination signal can hide in here.
            let _ = self.handle_env(env);
        }
    }

    /// Captures the operator snapshot for `epoch`, routing a panicking
    /// `snapshot` (e.g. a deterministic `crash_at_epoch` fault) through
    /// the actor's supervision policy with one retry after recovery.
    fn take_snapshot(&mut self, ckpt: &mut CkptState, epoch: u64) {
        use std::sync::atomic::Ordering;
        let mut captured: Option<Option<StateSnapshot>> = None;
        let ok = {
            let op = &mut self.op;
            let slot = &mut captured;
            guarded_raw(|| *slot = Some(op.snapshot())).is_ok()
        };
        if !ok {
            self.ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            self.ctx.trace_event(TraceEventKind::OperatorPanicked);
            let policy = self.supervision.policy.clone();
            match policy {
                // Resume: state is intact as far as we know; keep the
                // previous snapshot and skip this epoch's capture.
                SupervisionPolicy::Resume => {}
                SupervisionPolicy::Restart(policy) => {
                    if self.restarts_done < policy.max_restarts {
                        self.restarts_done += 1;
                        self.restart_backoff(&policy);
                        match &self.factory {
                            Some(f) => self.op = f.build(),
                            None => self.op.reset(),
                        }
                        self.ctx.metrics.restarts.fetch_add(1, Ordering::Relaxed);
                        self.ctx.trace_event(TraceEventKind::OperatorRestarted);
                        // No in-flight item here: replay everything since
                        // the previous snapshot, then retry the capture
                        // once (deterministic faults are fire-once).
                        let _ = self.recover(ckpt, false);
                        let op = &mut self.op;
                        let slot = &mut captured;
                        let _ = guarded_raw(|| *slot = Some(op.snapshot()));
                    } else {
                        self.stopped = true;
                        self.ctx.trace_event(TraceEventKind::ActorStopped);
                    }
                }
                SupervisionPolicy::Stop => {
                    self.stopped = true;
                    self.ctx.trace_event(TraceEventKind::ActorStopped);
                }
            }
        }
        if let Some(snap) = captured {
            let bytes = snap.as_ref().map_or(0, StateSnapshot::len) as u64;
            // The fresh snapshot covers every handoff merged or extracted
            // so far: published copies of merged handoffs can leave the
            // shared map, and the restart re-drop list resets.
            if let Some(rc) = self.reconfig.as_deref_mut() {
                if !rc.merged_since_snapshot.is_empty() {
                    let mut map = rc
                        .shared
                        .handoffs
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    for id in rc.merged_since_snapshot.drain(..) {
                        map.remove(&id);
                    }
                }
                rc.extracted_since_snapshot.clear();
            }
            ckpt.snapshot = snap;
            ckpt.snapshot_epoch = epoch;
            // Everything at or before this barrier is in the snapshot; an
            // overflowed buffer re-arms here, consistent again.
            ckpt.replay.trim_through(epoch);
            self.ctx.metrics.snapshots.fetch_add(1, Ordering::Relaxed);
            self.ctx
                .metrics
                .snapshot_bytes
                .fetch_add(bytes, Ordering::Relaxed);
            self.ctx
                .trace_event(TraceEventKind::CheckpointCompleted { epoch, bytes });
        }
        // On an unrecovered capture failure the previous snapshot and the
        // untrimmed log stay authoritative — recovery remains correct,
        // just with a longer replay.
    }

    /// Processes the drained inbox and flushes coalesced output, charging
    /// the actor's busy counter once for the whole batch: elapsed wall
    /// time minus whatever the batch spent blocked on backpressure or
    /// sleeping in restart backoff (both tracked exactly, on this thread,
    /// by the paths that wait). Timing per batch instead of per operator
    /// call keeps `clock_gettime` off the per-tuple path — at
    /// pass-through service times the two reads cost more than the
    /// operator. The price is that busy time now includes routing and
    /// buffering overhead; see [`ActorReport::busy`].
    fn process_batch(&mut self) -> bool {
        use std::sync::atomic::Ordering;
        if self.reconfig.is_some() {
            self.poll_reconfig();
        }
        let blocked0 = self.ctx.metrics.blocked_ns.load(Ordering::Relaxed);
        let backoff0 = self.ctx.metrics.backoff_ns.load(Ordering::Relaxed);
        let t0 = Instant::now();
        let finished = self.process_inbox();
        // Coalesced output never outlives the input batch that produced
        // it: flush before the next intake so batching adds no cross-batch
        // latency.
        self.ctx.flush_all();
        let elapsed = t0.elapsed().as_nanos() as u64;
        let waited = (self.ctx.metrics.blocked_ns.load(Ordering::Relaxed) - blocked0)
            + (self.ctx.metrics.backoff_ns.load(Ordering::Relaxed) - backoff0);
        self.ctx
            .metrics
            .busy_ns
            .fetch_add(elapsed.saturating_sub(waited), Ordering::Relaxed);
        finished
    }

    /// Routes the operator's buffered emissions, holding back tuples whose
    /// key is in the active migration pause set (port 0 only — the data
    /// port). Collapses to the plain [`DeliveryCtx::deliver`] whenever no
    /// pause is active, i.e. always outside a key-handoff window.
    fn deliver_outputs(&mut self) {
        match self.reconfig.as_deref_mut() {
            Some(rc) if !rc.pause_keys.is_empty() => {
                for (port, tuple) in self.out.drain() {
                    if port == 0 && rc.pause_keys.contains(&tuple.key) {
                        rc.paused.push(tuple);
                    } else {
                        self.ctx.deliver_one(port, tuple);
                    }
                }
            }
            _ => self.ctx.deliver(&mut self.out),
        }
    }

    /// Once-per-batch reconfiguration poll: pulls freshly posted ops when
    /// the shared generation moved, applies them immediately when no
    /// barrier machinery exists to gate them, and completes any pending
    /// pause–drain–resume handoff.
    fn poll_reconfig(&mut self) {
        let Some(rc) = self.reconfig.as_deref_mut() else {
            return;
        };
        if rc.outdated() {
            let actor = self.ctx.id.0;
            rc.pull(actor);
            if self.ckpt.is_none() {
                // Checkpointing off: no barriers will ever fire, so
                // epoch-gated ops would rot. Apply now — only safe (and
                // only intended) for stateless rescaling.
                self.apply_reconfig(u64::MAX);
            }
        }
        self.try_complete_handoffs();
    }

    /// Applies every staged op gated on an epoch `<= epoch`: swaps the
    /// route, publishes extraction requests, forwards the in-band
    /// [`Envelope::Handoff`] request tokens to the old owners (FIFO-ordered
    /// behind the barrier marker just broadcast), and arms the pause set.
    fn apply_reconfig(&mut self, epoch: u64) {
        use std::sync::atomic::Ordering;
        let Some(rc) = self.reconfig.as_deref_mut() else {
            return;
        };
        if rc.staged.is_empty() {
            return;
        }
        let mut i = 0;
        while i < rc.staged.len() {
            let ReconfigOp::SwapRoute { at_epoch, .. } = &rc.staged[i];
            if *at_epoch > epoch {
                i += 1;
                continue;
            }
            let ReconfigOp::SwapRoute {
                port,
                route,
                pause_keys,
                handoffs,
                ..
            } = rc.staged.remove(i);
            let destinations = route.destinations().len() as u64;
            if port < self.ctx.routes.len() {
                self.ctx.routes[port] = RouteState::new(route);
            }
            self.ctx.trace_event(TraceEventKind::Reconfigured {
                epoch: if epoch == u64::MAX { 0 } else { epoch },
                port,
                destinations,
                moved_keys: pause_keys.len() as u64,
            });
            if handoffs.is_empty() {
                // Stateless rescale: the swap is complete as soon as the
                // route is replaced.
                rc.shared.applied.fetch_add(1, Ordering::Release);
                continue;
            }
            {
                let mut reqs = rc
                    .shared
                    .extract_requests
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                for h in &handoffs {
                    reqs.insert(h.id, h.keys.clone());
                }
            }
            for h in &handoffs {
                // In-band extraction request to the old owner; FIFO order
                // behind the marker makes the extracted state exactly the
                // barrier-consistent state.
                self.ctx.out_bufs[h.from].push(Envelope::Handoff(h.id));
                self.ctx.buffered += 1;
                rc.expect_handoffs.push((h.id, h.to));
            }
            rc.pause_keys.extend(pause_keys);
            rc.pending_release += 1;
            self.ctx.flush_all();
        }
    }

    /// Completes a pending pause–drain–resume: once every expected handoff
    /// is published, pushes the in-band merge token to each new owner and
    /// *then* releases the paused tuples through the new route — the shared
    /// FIFO buffer guarantees every new owner merges state before seeing
    /// any moved-key data.
    fn try_complete_handoffs(&mut self) {
        use std::sync::atomic::Ordering;
        let Some(rc) = self.reconfig.as_deref_mut() else {
            return;
        };
        if rc.expect_handoffs.is_empty() {
            if !rc.pause_keys.is_empty() || !rc.paused.is_empty() {
                // Defensive: a swap that paused keys without expecting
                // handoffs must not black-hole tuples.
                rc.pause_keys.clear();
                let paused = std::mem::take(&mut rc.paused);
                for tuple in paused {
                    self.ctx.deliver_one(0, tuple);
                }
                self.ctx.flush_all();
            }
            return;
        }
        if !rc.handoffs_ready() {
            return;
        }
        for (id, dest) in std::mem::take(&mut rc.expect_handoffs) {
            self.ctx.out_bufs[dest].push(Envelope::Handoff(id));
            self.ctx.buffered += 1;
        }
        rc.pause_keys.clear();
        let paused = std::mem::take(&mut rc.paused);
        for tuple in paused {
            self.ctx.deliver_one(0, tuple);
        }
        self.ctx.flush_all();
        rc.shared
            .applied
            .fetch_add(rc.pending_release, Ordering::Release);
        rc.pending_release = 0;
    }

    /// Handles an in-band [`Envelope::Handoff`] token. Which side this
    /// actor is on is decided by the shared maps: an outstanding extraction
    /// request makes it the old owner (extract + publish); otherwise a
    /// published snapshot makes it the new owner (merge). Unknown ids are
    /// inert.
    fn handle_handoff(&mut self, id: u64) {
        use std::sync::atomic::Ordering;
        let Some(rc) = self.reconfig.as_deref_mut() else {
            return;
        };
        let keys = {
            let mut reqs = rc
                .shared
                .extract_requests
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            reqs.remove(&id)
        };
        if let Some(keys) = keys {
            let mut extracted: Option<StateSnapshot> = None;
            {
                let op = &mut self.op;
                let slot = &mut extracted;
                let _ = guarded_raw(|| *slot = op.extract_keys(&keys));
            }
            let snap = extracted.unwrap_or_default();
            self.ctx.trace_event(TraceEventKind::StateMigrated {
                handoff: id,
                bytes: snap.len() as u64,
                outbound: true,
            });
            rc.extracted_since_snapshot.push((id, keys));
            rc.shared
                .handoffs
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(id, snap);
            return;
        }
        // New-owner side. The snapshot stays in the shared map until this
        // actor's next completed checkpoint covers the merge (see
        // `take_snapshot`), so a supervised restart in between re-injects
        // it during `recover`.
        let snap = {
            let map = rc
                .shared
                .handoffs
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            map.get(&id).cloned()
        };
        if let Some(snap) = snap {
            if !snap.is_empty() {
                let op = &mut self.op;
                let _ = guarded_raw(|| {
                    op.inject_state(&snap);
                });
            }
            rc.merged_since_snapshot.push(id);
            rc.shared.migrated.fetch_add(1, Ordering::Release);
            self.ctx.trace_event(TraceEventKind::StateMigrated {
                handoff: id,
                bytes: snap.len() as u64,
                outbound: false,
            });
        }
    }

    /// Blocks actor termination until any in-flight handoff completes: the
    /// paused tuples must flow before EOS. The old owners this actor is
    /// waiting on cannot be waiting on it in turn (they already have their
    /// extraction tokens and need no further input), so this terminates.
    /// Under the pool executor the wait helps run downstream-ranked actors
    /// instead of parking the worker thread.
    fn await_handoffs(&mut self) {
        loop {
            self.try_complete_handoffs();
            let waiting = self
                .reconfig
                .as_deref()
                .is_some_and(|rc| !rc.expect_handoffs.is_empty());
            if !waiting {
                return;
            }
            match self.ctx.pool.clone() {
                Some(pool) => {
                    if !run_one_ready(&pool, self.ctx.pool_slot) {
                        thread::yield_now();
                    }
                }
                None => thread::sleep(Duration::from_micros(100)),
            }
        }
    }

    /// Terminal sequence: final operator flush (unless degraded-stopped),
    /// EOS propagation, finish trace. Runs exactly once per actor.
    fn finish(&mut self) {
        use std::sync::atomic::Ordering;
        if let Some(ckpt) = &self.ckpt {
            self.ctx
                .metrics
                .replay_overflows
                .store(ckpt.replay.overflows(), Ordering::Relaxed);
        }
        if self.reconfig.is_some() {
            self.await_handoffs();
        }
        if !self.stopped {
            let op = &mut self.op;
            let out = &mut self.out;
            if guarded_call(&self.ctx.metrics, || op.flush(out)).is_ok() {
                self.deliver_outputs();
            } else {
                self.out.clear();
                self.ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
                self.ctx.trace_event(TraceEventKind::OperatorPanicked);
            }
        }
        self.ctx.propagate_eos();
        self.ctx.trace_event(TraceEventKind::ActorFinished);
    }

    /// Pool-executor step: drain and process input batches until the
    /// mailbox is momentarily empty (run-until-blocked), the actor
    /// finishes, or the poll budget is exhausted (multi-tenant fairness
    /// quantum — see [`WorkerTask::poll_budget`]).
    fn poll(&mut self) -> Polled {
        let intake = self.ctx.batch_size;
        let mut batches = 0usize;
        loop {
            let mut inbox = std::mem::take(&mut self.inbox);
            let drained = self.rx.try_drain(&mut inbox, intake);
            self.inbox = inbox;
            match drained {
                TryRecvBatch::Received(_) => {
                    // One clock read covers the whole drained batch.
                    self.ctx.refresh_now();
                    if self.process_batch() {
                        self.finish();
                        return Polled::Finished;
                    }
                    batches += 1;
                    if batches >= self.poll_budget {
                        return Polled::Yielded;
                    }
                }
                TryRecvBatch::Empty => return Polled::Blocked,
                TryRecvBatch::Disconnected => {
                    self.finish();
                    return Polled::Finished;
                }
            }
        }
    }
}

/// Outcome of one [`WorkerTask::poll`] activation under the pool executor.
enum Polled {
    /// Mailbox momentarily empty; the task parks until the next wake.
    Blocked,
    /// Poll budget exhausted with input still queued: the task goes back
    /// on the ready queue so the scheduler can interleave other tenants.
    Yielded,
    /// EOS drained or all producers gone; the task is done for good.
    Finished,
}

/// The supervised worker loop (thread-per-actor executor): every operator
/// invocation runs under `catch_unwind`; panics are handled per the
/// actor's [`SupervisorSpec`]. Returns the actor's private dead-letter log
/// for the shutdown merge.
fn run_worker(mut task: WorkerTask) -> DeadLetterLog {
    task.ctx.trace_event(TraceEventKind::ActorStarted);
    // Batched intake: block for the first envelope, then drain whatever
    // else is already queued (up to `batch_size`) under the same
    // reservation. With `batch_size = 1` this is operation-for-operation
    // the plain `recv` loop.
    let intake = task.ctx.batch_size;
    loop {
        let mut inbox = std::mem::take(&mut task.inbox);
        let drained = task.rx.recv_drain(&mut inbox, intake);
        task.inbox = inbox;
        match drained {
            RecvBatch::Received(_) => {
                // One clock read covers the whole drained batch.
                task.ctx.refresh_now();
                if task.process_batch() {
                    break;
                }
            }
            RecvBatch::Disconnected => break,
        }
    }
    task.finish();
    task.ctx.release_buffers();
    std::mem::take(&mut task.ctx.dead_letters)
}

/// Task states for the pool executor's lost-wakeup-free scheduling
/// protocol. Transitions (all CAS unless noted):
///
/// - `IDLE → READY` (a wake): the winner pushes the index on the ready
///   queue — the queue therefore never holds an index twice.
/// - `READY → RUNNING` (claim): exactly one thread wins the right to poll,
///   so a task's slot mutex is never contended.
/// - `RUNNING → RERUN` (a wake while running): the runner's
///   `RUNNING → IDLE` release CAS then fails and it polls again, so a push
///   that lands mid-poll is never lost.
/// - `* → DONE` (swap, once): the task finished; `live` is decremented.
const T_IDLE: u8 = 0;
const T_READY: u8 = 1;
const T_RUNNING: u8 = 2;
const T_RERUN: u8 = 3;
const T_DONE: u8 = 4;

/// Shared state of the pool executor: one slot + state machine per actor,
/// a ready queue the fixed worker threads (and helping producers) pop
/// from, and collection points for finished tasks' dead letters and
/// uncontainable failures.
struct PoolShared {
    /// `tasks[i]` holds actor `i`'s [`WorkerTask`] until it finishes
    /// (`None` for sources and finished actors). The mutex is never
    /// contended — only the `READY → RUNNING` claim winner locks it — it
    /// exists to move the task in and out safely.
    tasks: Vec<Mutex<Option<WorkerTask>>>,
    /// Per-task scheduling state (`T_IDLE` … `T_DONE`).
    states: Vec<AtomicU8>,
    /// Indexes of `T_READY` tasks awaiting a worker, sharded either by
    /// topological stage band (single-tenant, see [`PoolShared::shard_of`])
    /// or by tenant (multi-tenant, where a deficit-round-robin scheduler
    /// interleaves the shards). One shard — the common, unpinned
    /// single-tenant case — is exactly the classic single ready queue. All
    /// shards share one lock and condvar: sharding here is about cache
    /// locality / fairness bookkeeping, not lock splitting, and a single
    /// lock keeps the park/notify protocol and the exit condition
    /// unchanged. Note the hot path (mailbox push, task poll) never takes
    /// this lock — only wake transitions and worker pops do.
    ready: Mutex<ReadyState>,
    ready_cv: Condvar,
    /// Shard index per actor. Single-tenant: its topological rank band —
    /// with `s` shards over `n` actors, actor `i` lands in shard
    /// `rank[i] * s / n`, so contiguous pipeline stages share a shard and
    /// the worker pinned to that band keeps producer/consumer pairs on one
    /// core's cache. Multi-tenant: the actor's tenant index, so the DRR
    /// scheduler's shards *are* the tenants.
    shard_of: Vec<usize>,
    /// Owning tenant per task slot (all zeros for single-tenant runs).
    /// Helping is filtered to the helper's own tenant: a cross-tenant
    /// inline poll could nest two tenants' pipelines on one stack in an
    /// order that violates neither tenant's rank discipline yet still
    /// blocks a suspended frame's consumer, so it is never attempted.
    tenant_of: Vec<usize>,
    /// Per-tenant completion ledger (actor counts / finish timestamps);
    /// [`run_task`] reports each task's terminal transition exactly once.
    ledger: Arc<TenantLedger>,
    /// Worker tasks not yet `T_DONE`; pool threads exit when it hits zero.
    live: AtomicUsize,
    /// Uncontainable panics (outside `guarded_call`, e.g. a panicking
    /// `reset`), by actor index — the thread-per-actor equivalent of a
    /// dead actor thread.
    failures: Mutex<Vec<(usize, String)>>,
    /// Finished tasks' private dead-letter logs, merged at shutdown.
    collected: Mutex<Vec<(usize, DeadLetterLog)>>,
    /// Topological rank per actor (every edge goes to a strictly higher
    /// rank; the graph is validated acyclic). Helping is restricted to
    /// tasks of rank ≥ the helper's own: stack frames of nested inline
    /// polls are then strictly rank-increasing, so a blocked send — whose
    /// destination always outranks the whole stack — can never target an
    /// actor suspended beneath it on the same thread. Without the filter a
    /// helper could run an *upstream* actor on top of a suspended consumer
    /// and deadlock it against that consumer's full mailbox.
    rank: Vec<usize>,
}

/// The pool's ready queue: per-shard FIFOs plus, in multi-tenant mode,
/// the deficit-round-robin state that decides which shard (= tenant) the
/// next pop serves. Protected by the single `ready` mutex.
struct ReadyState {
    shards: Vec<VecDeque<usize>>,
    drr: Option<DrrState>,
}

/// Deficit round-robin over tenant shards: each tenant has a quantum (its
/// configured weight, in task activations — each activation bounded to
/// [`TENANT_POLL_BUDGET`] drained batches) and accumulates deficit as the
/// rotor passes. Tenants with queued work stay on the active rotor;
/// popping debits one activation from the tenant's deficit.
struct DrrState {
    /// Per-tenant quantum in activations (the submission weight, >= 1).
    quantum: Vec<u64>,
    /// Per-tenant unspent activation credit.
    deficit: Vec<u64>,
    /// Rotor of tenants believed to have queued work, in service order.
    active: VecDeque<usize>,
    /// Membership flag for `active` (no tenant is enqueued twice).
    in_active: Vec<bool>,
}

impl ReadyState {
    fn new(shards: usize, quantum: Option<Vec<u64>>) -> Self {
        ReadyState {
            shards: vec![VecDeque::new(); shards],
            drr: quantum.map(|quantum| {
                let n = quantum.len();
                DrrState {
                    quantum,
                    deficit: vec![0; n],
                    active: VecDeque::new(),
                    in_active: vec![false; n],
                }
            }),
        }
    }

    /// Pushes ready task `i` onto shard `shard`, activating the tenant's
    /// rotor entry in DRR mode.
    fn enqueue(&mut self, shard: usize, i: usize) {
        self.shards[shard].push_back(i);
        if let Some(drr) = &mut self.drr {
            if !drr.in_active[shard] {
                drr.in_active[shard] = true;
                drr.active.push_back(shard);
            }
        }
    }

    /// Pops the next task a worker should run. Single-tenant: drain the
    /// home shard first, then steal in wrapping order — downstream
    /// neighbours before far-away bands, so stolen work stays close to the
    /// home band's cache footprint (with one shard this is exactly
    /// `pop_front`). Multi-tenant: deficit round-robin across tenant
    /// shards, ignoring `home` — fairness outranks cache placement.
    fn pop(&mut self, home: usize) -> Option<usize> {
        match &mut self.drr {
            None => {
                let shards = self.shards.len();
                (0..shards).find_map(|d| self.shards[(home + d) % shards].pop_front())
            }
            Some(drr) => {
                while let Some(&t) = drr.active.front() {
                    if let Some(i) = self.shards[t].front().copied() {
                        if drr.deficit[t] == 0 {
                            drr.deficit[t] = drr.quantum[t];
                        }
                        drr.deficit[t] -= 1;
                        self.shards[t].pop_front();
                        if drr.deficit[t] == 0 || self.shards[t].is_empty() {
                            // Quantum spent (or nothing left): rotate the
                            // tenant to the back; an emptied tenant also
                            // forfeits unspent credit (classic DRR — credit
                            // only accrues while backlogged).
                            drr.active.rotate_left(1);
                            if self.shards[t].is_empty() {
                                drr.deficit[t] = 0;
                                drr.in_active[t] = false;
                                drr.active.pop_back();
                            }
                        }
                        return Some(i);
                    }
                    // Helping drained this tenant's shard behind the
                    // rotor's back: deactivate and move on.
                    drr.deficit[t] = 0;
                    drr.in_active[t] = false;
                    drr.active.pop_front();
                }
                None
            }
        }
    }
}

/// Per-tenant completion bookkeeping for a (possibly multi-tenant) run:
/// how many actors are still live per tenant, and when the tenant's last
/// actor finished — the tenant's own wall-clock, so a short tenant's
/// throughput is not diluted by a long co-tenant keeping the run alive.
struct TenantLedger {
    started_at: Instant,
    remaining: Vec<AtomicUsize>,
    finished_ns: Vec<AtomicU64>,
}

impl TenantLedger {
    fn new(counts: &[usize], started_at: Instant) -> Self {
        TenantLedger {
            started_at,
            remaining: counts.iter().map(|&c| AtomicUsize::new(c)).collect(),
            finished_ns: counts.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one actor of `tenant` finishing; the last one stamps the
    /// tenant's completion time.
    fn actor_done(&self, tenant: usize) {
        if self.remaining[tenant].fetch_sub(1, Ordering::AcqRel) == 1 {
            let ns = self.started_at.elapsed().as_nanos() as u64;
            self.finished_ns[tenant].store(ns.max(1), Ordering::Release);
        }
    }

    /// The tenant's own wall time, if all its actors have finished.
    fn wall(&self, tenant: usize) -> Option<Duration> {
        let ns = self.finished_ns[tenant].load(Ordering::Acquire);
        (ns > 0).then(|| Duration::from_nanos(ns))
    }
}

/// Input batches one multi-tenant poll activation may drain before
/// yielding (the DRR batch quantum). Large enough to amortize scheduling,
/// small enough that a backlogged tenant cannot monopolize a worker.
const TENANT_POLL_BUDGET: usize = 32;

impl PoolShared {
    fn new(
        rank: Vec<usize>,
        tenant_of: Vec<usize>,
        shards: usize,
        quantum: Option<Vec<u64>>,
        ledger: Arc<TenantLedger>,
    ) -> Self {
        let n = rank.len();
        let shards = shards.max(1);
        let shard_of = if quantum.is_some() {
            // Multi-tenant: shards are tenants (the DRR service classes).
            tenant_of.clone()
        } else {
            rank.iter().map(|&r| r * shards / n.max(1)).collect()
        };
        PoolShared {
            tasks: (0..n).map(|_| Mutex::new(None)).collect(),
            states: (0..n).map(|_| AtomicU8::new(T_IDLE)).collect(),
            ready: Mutex::new(ReadyState::new(shards, quantum)),
            ready_cv: Condvar::new(),
            shard_of,
            tenant_of,
            ledger,
            live: AtomicUsize::new(0),
            failures: Mutex::new(Vec::new()),
            collected: Mutex::new(Vec::new()),
            rank,
        }
    }

    /// Marks task `i` ready (called from mailbox wake hooks on every push
    /// and on final-sender drop). AcqRel on the CASes: the winner's queue
    /// push must happen-after the mailbox write that made the task ready.
    fn wake(&self, i: usize) {
        loop {
            match self.states[i].load(Ordering::Acquire) {
                T_IDLE => {
                    if self.states[i]
                        .compare_exchange(T_IDLE, T_READY, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let mut q = self.ready.lock().unwrap_or_else(PoisonError::into_inner);
                        q.enqueue(self.shard_of[i], i);
                        drop(q);
                        // `notify_one` may rouse a worker homed on another
                        // shard; that is fine — workers steal across shards
                        // before parking, so no wake is ever lost.
                        self.ready_cv.notify_one();
                        return;
                    }
                }
                T_RUNNING => {
                    if self.states[i]
                        .compare_exchange(T_RUNNING, T_RERUN, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // READY / RERUN: already scheduled; DONE: finished.
                _ => return,
            }
        }
    }

    /// Claims the exclusive right to poll task `i`.
    fn claim(&self, i: usize) -> bool {
        self.states[i]
            .compare_exchange(T_READY, T_RUNNING, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

/// Polls claimed task `i` until it blocks (momentarily empty mailbox) or
/// finishes. Caller must have won the `READY → RUNNING` claim. Panics that
/// escape `poll` (i.e. outside `guarded_call`, such as a panicking
/// `reset`) are recorded as uncontainable failures — the pool equivalent
/// of a dead actor thread — and the actor is torn down, dropping its
/// receiver so upstream observes disconnection exactly as in thread mode.
fn run_task(pool: &Arc<PoolShared>, i: usize) {
    loop {
        let mut slot = pool.tasks[i].lock().unwrap_or_else(PoisonError::into_inner);
        let polled = match slot.as_mut() {
            Some(task) => match catch_unwind(AssertUnwindSafe(|| task.poll())) {
                Ok(polled) => polled,
                Err(payload) => {
                    pool.failures
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((i, panic_message(payload.as_ref())));
                    Polled::Finished
                }
            },
            None => Polled::Finished,
        };
        match polled {
            Polled::Finished => {
                if let Some(mut task) = slot.take() {
                    task.ctx.release_buffers();
                    let log = std::mem::take(&mut task.ctx.dead_letters);
                    pool.collected
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((i, log));
                }
                drop(slot);
                // First (only) transition to DONE decrements `live` and
                // reports to the tenant ledger; the last task wakes every
                // parked worker so they can exit.
                if pool.states[i].swap(T_DONE, Ordering::AcqRel) != T_DONE {
                    pool.ledger.actor_done(pool.tenant_of[i]);
                    if pool.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _guard = pool.ready.lock().unwrap_or_else(PoisonError::into_inner);
                        pool.ready_cv.notify_all();
                    }
                }
                return;
            }
            Polled::Yielded => {
                drop(slot);
                // Budget exhausted with input still queued: this thread
                // owns the task (RUNNING or RERUN), so parking it back to
                // IDLE and re-waking pushes it to the back of its tenant's
                // shard — the DRR rotor decides when it runs next. The
                // IDLE→READY winner is the only pusher, so the queue never
                // holds the index twice and no concurrent wake is lost.
                pool.states[i].store(T_IDLE, Ordering::Release);
                pool.wake(i);
                return;
            }
            Polled::Blocked => {
                drop(slot);
                match pool.states[i].compare_exchange(
                    T_RUNNING,
                    T_IDLE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return,
                    Err(_) => {
                        // A producer pushed mid-poll (RERUN): take the slot
                        // again so the wake is never lost.
                        pool.states[i].store(T_RUNNING, Ordering::Release);
                    }
                }
            }
        }
    }
}

/// Runs one ready task belonging to the helper's own tenant, of rank ≥
/// the helper's rank, if any is queued; returns whether an attempt was
/// made. Used by blocked producers to help instead of parking (the
/// consumer that would drain their full mailbox may otherwise never be
/// scheduled). The rank filter keeps nested inline polls strictly
/// downstream of every suspended frame (see [`PoolShared::rank`]); the
/// tenant filter keeps one tenant's suspended frames from interleaving
/// with another's (see [`PoolShared::tenant_of`]). Lower-ranked and
/// foreign-tenant tasks are left queued for the pool workers. Helping
/// recursion is bounded by the acyclic graph depth, and slot mutexes stay
/// uncontended because only claim winners lock them.
fn run_one_ready(pool: &Arc<PoolShared>, helper_slot: usize) -> bool {
    let min_rank = pool.rank[helper_slot];
    let tenant = pool.tenant_of[helper_slot];
    let popped = {
        let mut q = pool.ready.lock().unwrap_or_else(PoisonError::into_inner);
        // Higher shards hold higher-ranked (more downstream) stages
        // (single-tenant; in tenant-sharded mode only one shard can match
        // the filter anyway), so scan back-to-front: the first eligible
        // task found is the one most likely to free mailbox space for the
        // blocked helper. Helping bypasses the DRR rotor by design — it
        // runs on the *blocked producer's* thread and only ever advances
        // the helper's own tenant, so co-tenants lose nothing.
        q.shards.iter_mut().rev().find_map(|shard| {
            shard
                .iter()
                .position(|&i| pool.tenant_of[i] == tenant && pool.rank[i] >= min_rank)
                .and_then(|pos| shard.remove(pos))
        })
    };
    match popped {
        Some(i) => {
            if pool.claim(i) {
                run_task(pool, i);
            }
            true
        }
        None => false,
    }
}

/// A pool worker thread: pop ready tasks and run each until it blocks;
/// park on the condvar when the queue stays empty; exit when no live
/// tasks remain.
///
/// An empty queue first costs a bounded run of `yield_now` before the
/// condvar park: a producer mid-burst will make a task ready within its
/// next quantum, and yielding to it is far cheaper than the futex
/// round-trip of a park/notify pair per burst — the context-switch thrash
/// this executor exists to remove.
fn worker_loop(pool: &Arc<PoolShared>, home: usize) {
    const YIELDS_BEFORE_PARK: u32 = 64;
    enum Next {
        Run(usize),
        Yield,
        Exit,
    }
    let mut idle_yields = 0u32;
    loop {
        let next = {
            let mut q = pool.ready.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(i) = q.pop(home) {
                    break Next::Run(i);
                }
                if pool.live.load(Ordering::Acquire) == 0 {
                    break Next::Exit;
                }
                if idle_yields < YIELDS_BEFORE_PARK {
                    break Next::Yield;
                }
                q = pool
                    .ready_cv
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match next {
            Next::Run(i) => {
                idle_yields = 0;
                if pool.claim(i) {
                    run_task(pool, i);
                }
            }
            Next::Yield => {
                idle_yields += 1;
                thread::yield_now();
            }
            Next::Exit => return,
        }
    }
}

/// Batched send for pooled actors: never parks the worker thread while the
/// destination is full — it runs other ready actors instead (the consumer
/// that would drain the mailbox may be waiting for this very thread),
/// falling back to 1 ms bounded blocking slices when nothing is runnable.
/// Mirrors `send_batch`'s per-slot timeout: the window restarts whenever
/// any envelope is delivered. The reported `blocked` duration includes
/// time spent helping — it is an advisory backpressure signal, not pure
/// park time.
fn pool_send_batch(
    pool: &Arc<PoolShared>,
    sender: &Sender,
    buf: &mut Vec<Envelope>,
    timeout: Duration,
    helper_slot: usize,
) -> BatchOutcome {
    let total = buf.len();
    let fast = sender.try_send_batch(buf);
    if buf.is_empty() || fast.disconnected {
        return BatchOutcome {
            delivered: total - buf.len(),
            blocked: Duration::ZERO,
            failure: if buf.is_empty() {
                None
            } else {
                Some(BatchFailure::Disconnected)
            },
        };
    }
    let slow_start = Instant::now();
    let mut window = slow_start;
    let failure = loop {
        if buf.is_empty() {
            break None;
        }
        let before = buf.len();
        if run_one_ready(pool, helper_slot) {
            let r = sender.try_send_batch(buf);
            if r.disconnected {
                break Some(BatchFailure::Disconnected);
            }
            if buf.len() < before {
                window = Instant::now();
            }
        } else {
            let remaining = timeout.saturating_sub(window.elapsed());
            let slice = remaining.min(Duration::from_millis(1));
            if slice.is_zero() {
                break Some(BatchFailure::TimedOut);
            }
            let out = sender.send_batch(buf, slice);
            if out.delivered > 0 {
                window = Instant::now();
            }
            if out.failure == Some(BatchFailure::Disconnected) {
                break Some(BatchFailure::Disconnected);
            }
            // A timed-out 1 ms slice is not a verdict; the window check
            // below decides.
        }
        if window.elapsed() >= timeout {
            break Some(BatchFailure::TimedOut);
        }
    };
    BatchOutcome {
        delivered: total - buf.len(),
        blocked: slow_start.elapsed(),
        failure,
    }
}

/// Executes the actor graph to completion and reports measured metrics.
///
/// Every actor runs on a dedicated thread (the §5.1 configuration: "each
/// actor is associated with a dedicated thread"). The run ends when all
/// sources have produced their configured item counts and the end-of-stream
/// markers have drained through the graph.
///
/// Worker actors are supervised: a panicking operator is caught and
/// handled per the actor's [`SupervisorSpec`] (resume, restart with
/// backoff, or stop into degraded mode), and every undelivered item is
/// recorded in the report's [`DeadLetterLog`]. `run` itself never panics
/// on operator failure.
///
/// # Errors
///
/// Returns an [`EngineError`] if the graph fails validation, or
/// [`EngineError::ActorFailed`] if an actor thread dies in a way
/// supervision could not contain. A successfully validated graph always
/// terminates: it is acyclic, and EOS markers propagate through every
/// mailbox.
pub fn run(graph: ActorGraph, config: &EngineConfig) -> Result<RunReport, EngineError> {
    run_with(graph, config, None).map(|(report, _)| report)
}

/// Like [`run`], but with the live telemetry layer enabled: sources stamp
/// every tuple, sinks aggregate end-to-end latency, lifecycle events are
/// traced, and a background sampler thread takes a [`crate::TelemetrySnapshot`]
/// every `telemetry.interval` (plus one final snapshot at end of run).
///
/// With the `telemetry` cargo feature disabled only the final snapshot is
/// taken (no sampler thread is spawned).
///
/// # Errors
///
/// Fails exactly as [`run`] does.
pub fn run_with_telemetry(
    graph: ActorGraph,
    config: &EngineConfig,
    telemetry: &TelemetryConfig,
) -> Result<(RunReport, TelemetryReport), EngineError> {
    run_with(graph, config, Some(telemetry))
        .map(|(report, tel)| (report, tel.expect("telemetry was requested")))
}

fn run_with(
    graph: ActorGraph,
    config: &EngineConfig,
    telemetry: Option<&TelemetryConfig>,
) -> Result<(RunReport, Option<TelemetryReport>), EngineError> {
    let tenant = TenantSpec {
        name: "default".to_string(),
        weight: 1,
        graph,
        telemetry: telemetry.cloned(),
    };
    let mut runs = run_graphs(vec![tenant], config)?;
    Ok(runs.pop().expect("exactly one tenant was submitted"))
}

/// One tenant of a multi-tenant run: a named actor graph that shares the
/// engine — and, under [`ExecutorKind::Pool`], ONE worker pool — with the
/// other tenants submitted alongside it in the same [`run_tenants`] call.
pub struct TenantSpec {
    /// Tenant label, used in telemetry exports and the returned
    /// [`TenantRun`]. Not required to be unique, but unique names make
    /// per-tenant exports distinguishable.
    pub name: String,
    /// Weighted-fair share under the pool executor: the tenant's deficit
    /// round-robin quantum, in task activations (each activation bounded
    /// to a fixed number of drained batches). Clamped to ≥ 1; tenants
    /// with equal weights get equal service when backlogged. Ignored by
    /// the thread-per-actor executor (the OS scheduler arbitrates there).
    pub weight: u64,
    /// The tenant's actor graph.
    pub graph: ActorGraph,
    /// Optional per-tenant telemetry. In multi-tenant runs the config's
    /// tenant label defaults to [`TenantSpec::name`] so exports are
    /// attributable without extra wiring.
    pub telemetry: Option<TelemetryConfig>,
}

impl TenantSpec {
    /// A tenant with weight 1 and no telemetry.
    pub fn new(name: impl Into<String>, graph: ActorGraph) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            graph,
            telemetry: None,
        }
    }

    /// Sets the tenant's weighted-fair share (clamped to ≥ 1 at use).
    #[must_use]
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight;
        self
    }

    /// Enables per-tenant telemetry.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// One tenant's results from [`run_tenants`].
#[derive(Debug)]
pub struct TenantRun {
    /// The tenant's name, as submitted.
    pub name: String,
    /// The tenant's run report. Its `wall` is the *tenant's own*
    /// completion time (first to last actor of this tenant), so a short
    /// tenant's throughput is not diluted by a long co-tenant keeping the
    /// whole run alive.
    pub report: RunReport,
    /// The tenant's telemetry report, when requested in the spec.
    pub telemetry: Option<TelemetryReport>,
}

/// Executes many actor graphs concurrently on one shared engine and
/// reports per-tenant metrics.
///
/// Under [`ExecutorKind::ThreadPerActor`] every tenant's actors get
/// dedicated threads, exactly as in [`run`]. Under [`ExecutorKind::Pool`]
/// all tenants' worker actors are multiplexed over ONE fixed-size worker
/// pool: the ready queue is sharded by tenant and served deficit
/// round-robin by [`TenantSpec::weight`], each activation bounded to a
/// fixed batch quantum, so a backlogged tenant cannot monopolize the
/// workers. Per-tenant determinism is preserved — each tenant's actors
/// are seeded from `config.seed` plus their *local* actor id, exactly as
/// in a solo [`run`] of the same graph, so a deterministic graph produces
/// identical per-tenant results solo and co-scheduled.
///
/// Live reconfiguration (`config.reconfig`) is single-tenant machinery
/// and is ignored when more than one tenant is submitted.
///
/// # Errors
///
/// Fails fast with a validation error if *any* graph is invalid (no
/// actors run in that case), or [`EngineError::ActorFailed`] (local actor
/// id, lowest failing pool slot) if an actor dies in a way supervision
/// could not contain.
pub fn run_tenants(
    tenants: Vec<TenantSpec>,
    config: &EngineConfig,
) -> Result<Vec<TenantRun>, EngineError> {
    let names: Vec<String> = tenants.iter().map(|t| t.name.clone()).collect();
    let runs = run_graphs(tenants, config)?;
    Ok(names
        .into_iter()
        .zip(runs)
        .map(|(name, (report, telemetry))| TenantRun {
            name,
            report,
            telemetry,
        })
        .collect())
}

/// An actor's runnable state, built up front independent of which
/// executor will drive it.
enum Prepared {
    Source { cfg: SourceConfig, ctx: DeliveryCtx },
    Worker { task: WorkerTask },
}

/// One tenant's prepared (not yet running) graph inside [`run_graphs`]:
/// everything the dispatch and report-assembly phases need, with actors
/// indexed locally and `base` locating the tenant's global slot range.
struct TenantPrep {
    base: usize,
    n: usize,
    weight: u64,
    telemetry: Option<TelemetryConfig>,
    prepared: Vec<(String, Prepared)>,
    metrics: Vec<Arc<ActorMetrics>>,
    probes: Arc<Vec<Option<DepthProbe>>>,
    hub: Option<Arc<TelemetryHub>>,
    coordinator: Option<Arc<CheckpointCoordinator>>,
    rank: Vec<usize>,
}

/// The shared driver behind [`run`], [`run_with_telemetry`], and
/// [`run_tenants`]: prepares every tenant's graph, dispatches all of them
/// onto the configured executor at once, and assembles per-tenant reports.
fn run_graphs(
    tenants: Vec<TenantSpec>,
    config: &EngineConfig,
) -> Result<Vec<(RunReport, Option<TelemetryReport>)>, EngineError> {
    if tenants.is_empty() {
        return Ok(Vec::new());
    }
    let multi = tenants.len() > 1;
    install_panic_silencer();
    // Checkpoint layer: a `Some(0)` interval is treated as off, and each
    // tenant's coordinator ledger (one ack slot per actor, sources
    // included) exists only when the layer is on.
    let ckpt_interval = config.checkpoint_interval.filter(|&i| i > 0);
    // Live reconfiguration drives a single graph's generation counter;
    // with several tenants it is ignored rather than misapplied to all.
    let reconfig_src = if multi {
        None
    } else {
        config.reconfig.as_ref()
    };
    let started_at = Instant::now();
    // Run-wide slab of coalescing buffers: every reachable destination gets
    // a buffer checked out pre-sized to the batch limit, and actors hand
    // them back when they finish — the steady-state send path never grows
    // (or allocates) a buffer.
    let buf_pool = Arc::new(BatchPool::new(config.batch_size.max(1)));

    let mut preps: Vec<TenantPrep> = Vec::with_capacity(tenants.len());
    let mut base = 0usize;
    for tenant in tenants {
        let TenantSpec {
            name: tenant_name,
            weight,
            graph,
            mut telemetry,
        } = tenant;
        if multi {
            // Default the telemetry tenant label so multi-tenant exports
            // are attributable without extra wiring.
            if let Some(tcfg) = &mut telemetry {
                if tcfg.tenant.is_none() {
                    tcfg.tenant = Some(tenant_name.clone());
                }
            }
        }
        let in_degrees = graph.in_degrees();
        let actors = graph.into_actors();
        validate(&actors)?;
        let n = actors.len();

        let metrics: Vec<Arc<ActorMetrics>> =
            (0..n).map(|_| Arc::new(ActorMetrics::new())).collect();
        let coordinator: Option<Arc<CheckpointCoordinator>> =
            ckpt_interval.map(|_| Arc::new(CheckpointCoordinator::new(n)));

        // One mailbox per non-source actor. Edges with a single distinct
        // upstream actor get the SPSC ring (plain-store tail, no CAS); fan-in
        // edges get the CAS multi-producer ring. The split is decided here,
        // statically, from the compiled graph's in-degrees.
        let mut senders: Vec<Option<Sender>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<crate::mailbox::Receiver>> = Vec::with_capacity(n);
        for (i, spec) in actors.iter().enumerate() {
            if spec.behavior.is_source() {
                senders.push(None);
                receivers.push(None);
            } else {
                let cap = spec.mailbox_capacity.unwrap_or(config.mailbox_capacity);
                let (tx, rx) = if in_degrees[i] <= 1 {
                    channel_spsc(cap)
                } else {
                    channel(cap)
                };
                senders.push(Some(tx));
                receivers.push(Some(rx));
            }
        }

        // Depth probes observe queue depths without counting as producers, so
        // they never delay disconnect detection.
        let probes: Arc<Vec<Option<DepthProbe>>> = Arc::new(
            senders
                .iter()
                .map(|s| s.as_ref().map(Sender::depth_probe))
                .collect(),
        );
        let hub: Option<Arc<TelemetryHub>> = telemetry.as_ref().map(|tcfg| {
            let hub_actors = actors
                .iter()
                .map(|spec| HubActor {
                    name: spec.name.clone(),
                    queue_capacity: if spec.behavior.is_source() {
                        None
                    } else {
                        Some(spec.mailbox_capacity.unwrap_or(config.mailbox_capacity))
                    },
                    // Sink actors (no outgoing routes) terminate latency spans.
                    latency: if !spec.behavior.is_source() && spec.routes.is_empty() {
                        Some(Arc::new(LatencyHistogram::new()))
                    } else {
                        None
                    },
                })
                .collect();
            Arc::new(TelemetryHub::new(hub_actors, tcfg))
        });

        let mut prepared: Vec<(String, Prepared)> = Vec::with_capacity(n);
        // Unique destinations per actor, kept for the pool executor's
        // topological ranks (see [`PoolShared::rank`]).
        let mut out_targets: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (i, spec) in actors.into_iter().enumerate() {
            let eos_targets: Vec<usize> = {
                let mut d: Vec<usize> = spec
                    .routes
                    .iter()
                    .flat_map(|r| r.destinations_iter())
                    .map(|d| d.0)
                    .collect();
                d.sort_unstable();
                d.dedup();
                d
            };
            // Give this actor exactly the senders it can reach. A sole
            // producer *moves* the sender out of the engine's vec: cloning
            // would permanently upgrade the SPSC mailbox to multi-producer
            // mode.
            let my_senders: Vec<Option<Sender>> = (0..n)
                .map(|j| {
                    if !eos_targets.contains(&j) {
                        None
                    } else if in_degrees[j] <= 1 {
                        senders[j].take()
                    } else {
                        senders[j].clone()
                    }
                })
                .collect();
            out_targets.push(eos_targets.clone());
            let out_bufs: Vec<Vec<Envelope>> = my_senders
                .iter()
                .map(|s| {
                    if s.is_some() {
                        buf_pool.take()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let ctx = DeliveryCtx {
                id: ActorId(i),
                senders: my_senders,
                routes: spec.routes.into_iter().map(RouteState::new).collect(),
                eos_targets,
                rng: XorShift64::new(config.seed.wrapping_add(i as u64)),
                metrics: Arc::clone(&metrics[i]),
                started_at,
                send_timeout: config.send_timeout,
                dead_letters: DeadLetterLog::with_capacity(config.dead_letter_capacity),
                latency: hub.as_ref().and_then(|h| h.latency_of(i)),
                trace: hub.as_ref().map(|h| Arc::clone(&h.trace)),
                stamp: hub.is_some(),
                batch_size: config.batch_size.max(1),
                flush_interval: config.flush_interval,
                out_bufs,
                buf_pool: Arc::clone(&buf_pool),
                buffered: 0,
                last_flush: started_at,
                cached_now_ns: 0,
                pending_sink_outs: 0,
                pending_lat_ns: 0,
                pending_lat_n: 0,
                pool: None,
                pool_slot: base + i,
                span_mask: telemetry.as_ref().and_then(|t| t.span_mask()),
                checkpoint_interval: ckpt_interval,
                coordinator: coordinator.clone(),
            };
            let eos_left = in_degrees[i];
            match spec.behavior {
                Behavior::Source(cfg) => prepared.push((spec.name, Prepared::Source { cfg, ctx })),
                Behavior::Worker(op) => {
                    let rx = receivers[i].take().expect("worker has a mailbox");
                    let intake = ctx.batch_size;
                    prepared.push((
                        spec.name,
                        Prepared::Worker {
                            task: WorkerTask {
                                op,
                                factory: spec.factory,
                                supervision: spec.supervision,
                                rx,
                                eos_left,
                                ctx,
                                out: Outputs::new(),
                                inbox: Vec::with_capacity(intake),
                                stopped: false,
                                restarts_done: 0,
                                ckpt: ckpt_interval.map(|_| {
                                    Box::new(CkptState {
                                        markers_seen: 0,
                                        open_inputs: eos_left,
                                        aligning: 0,
                                        completed: 0,
                                        align_buf: Vec::new(),
                                        replay: ReplayBuffer::new(config.replay_capacity),
                                        snapshot: None,
                                        snapshot_epoch: 0,
                                        align_started: None,
                                    })
                                }),
                                reconfig: reconfig_src.map(|h| {
                                    Box::new(ReconfigTaskState::new(Arc::clone(&h.shared)))
                                }),
                                poll_budget: usize::MAX,
                            },
                        },
                    ));
                }
            }
        }
        // Drop the engine's own sender handles so disconnect detection can kick
        // in for actors with no upstream.
        drop(senders);

        // Kahn's algorithm over the (validated acyclic) graph assigns every
        // actor a unique topological rank: each edge ends at a strictly higher
        // rank. The pool executor's rank-filtered helping relies on this
        // invariant, and stage sharding (both executors) maps rank bands onto
        // the configured core list so pipeline neighbours share a cache domain.
        let rank = {
            let mut deg = in_degrees.clone();
            let mut order: VecDeque<usize> = (0..n).filter(|&i| deg[i] == 0).collect();
            let mut rank = vec![0usize; n];
            let mut next = 0usize;
            while let Some(u) = order.pop_front() {
                rank[u] = next;
                next += 1;
                for &v in &out_targets[u] {
                    deg[v] -= 1;
                    if deg[v] == 0 {
                        order.push_back(v);
                    }
                }
            }
            debug_assert_eq!(next, n, "validated graph is acyclic");
            rank
        };

        preps.push(TenantPrep {
            base,
            n,
            weight,
            telemetry,
            prepared,
            metrics,
            probes,
            hub,
            coordinator,
            rank,
        });
        base += n;
    }

    // Background samplers, one per telemetry-enabled tenant: each wakes
    // every `interval` and snapshots its tenant's counters and queue
    // depths into that tenant's hub. Spawned only when telemetry was
    // requested (and the `telemetry` feature is on), so the plain [`run`]
    // path pays nothing.
    #[cfg(feature = "telemetry")]
    let samplers: Vec<(Arc<std::sync::atomic::AtomicBool>, thread::JoinHandle<()>)> = preps
        .iter()
        .enumerate()
        .filter_map(|(t, prep)| {
            let tcfg = prep.telemetry.as_ref()?;
            let hub = Arc::clone(prep.hub.as_ref()?);
            let metrics = prep.metrics.clone();
            let probes = Arc::clone(&prep.probes);
            let coord = prep.coordinator.clone();
            let interval = tcfg.interval.max(Duration::from_micros(100));
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let handle = thread::Builder::new()
                .name(format!("ss-telemetry-{t}"))
                .spawn(move || {
                    use std::sync::atomic::Ordering;
                    let mut next = started_at + interval;
                    while !stop_flag.load(Ordering::Acquire) {
                        let now = Instant::now();
                        if now < next {
                            // Re-check stop and the deadline after every
                            // wakeup: park_timeout may return spuriously.
                            thread::park_timeout(next - now);
                            continue;
                        }
                        next += interval;
                        let t_ns = started_at.elapsed().as_nanos() as u64;
                        hub.sample(
                            t_ns,
                            &gather_raw(&metrics, &probes),
                            coord.as_ref().and_then(|c| c.last_complete()),
                        );
                    }
                })
                .expect("spawn telemetry sampler thread");
            Some((stop, handle))
        })
        .collect();

    let cores = config.pinning.cores.clone();

    // Per-tenant completion ledger: actor counts in, per-tenant finish
    // timestamps out. Both executors report through it, so a tenant's
    // reported wall is its own first-to-last-actor span.
    let tenant_counts: Vec<usize> = preps.iter().map(|p| p.n).collect();
    let total: usize = tenant_counts.iter().sum();
    let ledger = Arc::new(TenantLedger::new(&tenant_counts, started_at));
    let mut names: Vec<Vec<String>> = tenant_counts
        .iter()
        .map(|&n| vec![String::new(); n])
        .collect();
    // Failures are keyed by GLOBAL slot; dead-letter logs per (tenant,
    // local actor id).
    let mut failures: Vec<(usize, String)> = Vec::new();
    let mut tenant_logs: Vec<Vec<(usize, DeadLetterLog)>> = tenant_counts
        .iter()
        .map(|&n| Vec::with_capacity(n))
        .collect();
    match config.resolved_pool_workers() {
        None => {
            // Thread-per-actor: spawn, then join every thread before
            // returning — even after a failure — so no actor outlives
            // the run. With pinning on, a tenant's actor `i` goes to the
            // core owning its contiguous rank band within that tenant:
            // `cores[rank[i] * len / n]`.
            let mut handles = Vec::with_capacity(total);
            for (t, prep) in preps.iter_mut().enumerate() {
                let n = prep.n;
                let prepared = std::mem::take(&mut prep.prepared);
                for (i, (name, pa)) in prepared.into_iter().enumerate() {
                    let pin_to = (!cores.is_empty()).then(|| cores[prep.rank[i] * cores.len() / n]);
                    let slot = prep.base + i;
                    let ledger = Arc::clone(&ledger);
                    let handle = thread::Builder::new()
                        .name(format!("ss-{slot}-{name}"))
                        .spawn(move || {
                            if let Some(core) = pin_to {
                                pin_current_thread(core);
                            }
                            let log = match pa {
                                Prepared::Source { cfg, ctx } => run_source(cfg, ctx),
                                Prepared::Worker { task } => run_worker(task),
                            };
                            ledger.actor_done(t);
                            log
                        })
                        .expect("spawn actor thread");
                    handles.push((t, i, name, handle));
                }
            }
            for (t, i, name, handle) in handles {
                match handle.join() {
                    Ok(log) => tenant_logs[t].push((i, log)),
                    Err(payload) => {
                        failures.push((preps[t].base + i, panic_message(payload.as_ref())))
                    }
                }
                names[t][i] = name;
            }
        }
        Some(workers) => {
            // Pool executor: sources keep dedicated threads (they pace
            // wall-clock emission schedules) but carry the pool handle so a
            // blocked send helps run ready consumers inline instead of
            // parking; ALL tenants' worker actors become [`PoolShared`]
            // tasks multiplexed over the one fixed set of worker threads.
            //
            // Single-tenant with pinning on, the ready queue is sharded
            // per worker by rank band: worker `w` is pinned to
            // `cores[w % len]` and drains its own band's shard first, so a
            // pipeline stage's producer/consumer pairs run on the core
            // owning their band. Unpinned, a single shard reproduces the
            // classic FIFO queue. Multi-tenant, shards are tenants and
            // deficit round-robin (weighted by [`TenantSpec::weight`])
            // decides service order; each activation is budgeted to
            // [`TENANT_POLL_BUDGET`] batches so no tenant monopolizes a
            // worker.
            let mut rank_all = Vec::with_capacity(total);
            let mut tenant_of = Vec::with_capacity(total);
            for (t, prep) in preps.iter().enumerate() {
                rank_all.extend(prep.rank.iter().copied());
                tenant_of.extend(std::iter::repeat_n(t, prep.n));
            }
            let (shards, quantum) = if multi {
                let weights: Vec<u64> = preps.iter().map(|p| p.weight.max(1)).collect();
                (preps.len(), Some(weights))
            } else if cores.is_empty() {
                (1, None)
            } else {
                (workers.max(1), None)
            };
            let pool = Arc::new(PoolShared::new(
                rank_all,
                tenant_of,
                shards,
                quantum,
                Arc::clone(&ledger),
            ));
            let poll_budget = if multi {
                TENANT_POLL_BUDGET
            } else {
                usize::MAX
            };
            let mut source_handles = Vec::new();
            let mut task_ids = Vec::new();
            let mut num_sources = 0usize;
            for (t, prep) in preps.iter_mut().enumerate() {
                let prepared = std::mem::take(&mut prep.prepared);
                for (i, (name, pa)) in prepared.into_iter().enumerate() {
                    let slot = prep.base + i;
                    names[t][i] = name.clone();
                    match pa {
                        Prepared::Source { cfg, mut ctx } => {
                            ctx.pool = Some(Arc::clone(&pool));
                            // Sources are pinned round-robin: they sleep on
                            // their pace schedules, so spreading them evenly
                            // matters more than band placement.
                            let pin_to =
                                (!cores.is_empty()).then(|| cores[num_sources % cores.len()]);
                            num_sources += 1;
                            let ledger = Arc::clone(&ledger);
                            let handle = thread::Builder::new()
                                .name(format!("ss-{slot}-{name}"))
                                .spawn(move || {
                                    if let Some(core) = pin_to {
                                        pin_current_thread(core);
                                    }
                                    let log = run_source(cfg, ctx);
                                    ledger.actor_done(t);
                                    log
                                })
                                .expect("spawn source thread");
                            source_handles.push((t, i, handle));
                        }
                        Prepared::Worker { mut task } => {
                            task.ctx.pool = Some(Arc::clone(&pool));
                            task.poll_budget = poll_budget;
                            // The mailbox wakes the pool on every push burst
                            // and on final-sender drop, so this consumer gets
                            // scheduled even while its producers are blocked
                            // mid-`send_batch`.
                            let hook_pool = Arc::clone(&pool);
                            task.rx
                                .set_wake_hook(Arc::new(move || hook_pool.wake(slot)));
                            task.ctx.trace_event(TraceEventKind::ActorStarted);
                            *pool.tasks[slot]
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner) = Some(task);
                            task_ids.push(slot);
                        }
                    }
                }
            }
            pool.live.store(task_ids.len(), Ordering::Release);
            // Initial sweep: every task polls at least once, covering
            // zero-upstream actors and envelopes pushed by sources before
            // the wake hooks above were installed.
            for &slot in &task_ids {
                pool.wake(slot);
            }
            let mut pool_handles = Vec::with_capacity(workers.max(1));
            for w in 0..workers.max(1) {
                let pool = Arc::clone(&pool);
                let pin_to = (!cores.is_empty()).then(|| cores[w % cores.len()]);
                let home = w % shards;
                pool_handles.push(
                    thread::Builder::new()
                        .name(format!("ss-pool-{w}"))
                        .spawn(move || {
                            if let Some(core) = pin_to {
                                pin_current_thread(core);
                            }
                            worker_loop(&pool, home)
                        })
                        .expect("spawn pool worker thread"),
                );
            }
            for (t, i, handle) in source_handles {
                match handle.join() {
                    Ok(log) => tenant_logs[t].push((i, log)),
                    Err(payload) => {
                        failures.push((preps[t].base + i, panic_message(payload.as_ref())))
                    }
                }
            }
            for handle in pool_handles {
                let _ = handle.join();
            }
            let tenant_of_slot = |slot: usize| {
                preps
                    .iter()
                    .rposition(|p| p.base <= slot)
                    .expect("slot belongs to a tenant")
            };
            for (slot, log) in std::mem::take(
                &mut *pool
                    .collected
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ) {
                let t = tenant_of_slot(slot);
                tenant_logs[t].push((slot - preps[t].base, log));
            }
            failures.extend(std::mem::take(
                &mut *pool.failures.lock().unwrap_or_else(PoisonError::into_inner),
            ));
        }
    }
    // Match thread-per-actor reporting: the failure with the lowest
    // global slot wins, reported under its tenant-local actor id.
    failures.sort_by_key(|(slot, _)| *slot);
    let failure = failures.into_iter().next().map(|(slot, reason)| {
        let t = preps
            .iter()
            .rposition(|p| p.base <= slot)
            .expect("slot belongs to a tenant");
        EngineError::ActorFailed {
            actor: ActorId(slot - preps[t].base),
            reason,
        }
    });
    let total_wall = started_at.elapsed();

    // Stop the samplers before the final end-of-run snapshots so snapshot
    // ticks stay strictly ordered.
    #[cfg(feature = "telemetry")]
    for (stop, handle) in samplers {
        stop.store(true, std::sync::atomic::Ordering::Release);
        handle.thread().unpark();
        let _ = handle.join();
    }
    let mut telemetry_reports: Vec<Option<TelemetryReport>> = preps
        .iter_mut()
        .map(|prep| {
            prep.hub.take().map(|hub| {
                // Final end-of-run sample: every actor has been joined, so
                // this snapshot carries the *final* cumulative counters —
                // exports never end on a stale periodic tick.
                let t_ns = started_at.elapsed().as_nanos() as u64;
                hub.sample(
                    t_ns,
                    &gather_raw(&prep.metrics, &prep.probes),
                    prep.coordinator.as_ref().and_then(|c| c.last_complete()),
                );
                Arc::try_unwrap(hub)
                    .ok()
                    .expect("every telemetry holder has been joined")
                    .into_report()
            })
        })
        .collect();

    if let Some(err) = failure {
        return Err(err);
    }

    let mut out = Vec::with_capacity(preps.len());
    for (t, prep) in preps.iter().enumerate() {
        let reports = (0..prep.n)
            .map(|i| prep.metrics[i].snapshot(&names[t][i], ActorId(i)))
            .collect();
        // A tenant's wall is its own first-to-last-actor span; the solo
        // case keeps the classic whole-run elapsed time (identical here,
        // minus ledger stamping skew).
        let wall = if multi {
            ledger.wall(t).unwrap_or(total_wall)
        } else {
            total_wall
        };
        // Merge per-actor logs in actor-id order; the capacity cap still
        // bounds retained entries while totals stay exact.
        let logs = &mut tenant_logs[t];
        logs.sort_by_key(|(i, _)| *i);
        let mut dead_letters = DeadLetterLog::with_capacity(config.dead_letter_capacity);
        for (_, log) in logs.iter() {
            dead_letters.merge(log);
        }
        out.push((
            RunReport {
                actors: reports,
                wall,
                started_at,
                dead_letters,
                last_complete_epoch: prep.coordinator.as_ref().and_then(|c| c.last_complete()),
            },
            telemetry_reports[t].take(),
        ));
    }
    Ok(out)
}

/// Loads every actor's raw cumulative counters plus current queue depth
/// and the cumulative producer stall time charged to its inbox.
fn gather_raw(metrics: &[Arc<ActorMetrics>], probes: &[Option<DepthProbe>]) -> Vec<RawCounters> {
    metrics
        .iter()
        .zip(probes)
        .map(|(m, p)| {
            RawCounters::from_metrics(
                m,
                p.as_ref().map(DepthProbe::len),
                p.as_ref().map(DepthProbe::stalled_ns).unwrap_or(0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{FnOperator, PassThrough, Spin};
    use crate::{Behavior, Route, SourceConfig};

    fn fast_cfg() -> EngineConfig {
        EngineConfig {
            mailbox_capacity: 64,
            send_timeout: Duration::from_secs(5),
            seed: 1,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn source_to_sink_delivers_all_items() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 500);
        assert_eq!(r.actor(s).items_out, 500);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn pinned_pipeline_delivers_all_items_on_both_executors() {
        // Pinning must never change results — on this machine the cores
        // may not even exist, in which case it degrades to a warn-once
        // no-op and the run proceeds unpinned.
        for executor in [
            ExecutorKind::ThreadPerActor,
            ExecutorKind::Pool { workers: 2 },
        ] {
            let mut g = ActorGraph::new();
            let s = g.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(f64::INFINITY, 400)),
            );
            let a = g.add_actor("a", Behavior::worker(PassThrough));
            let b = g.add_actor("b", Behavior::worker(PassThrough));
            g.connect(s, Route::Unicast(a));
            g.connect(a, Route::Unicast(b));
            let cfg = EngineConfig {
                executor,
                batch_size: 8,
                pinning: crate::affinity::PinningConfig::on_cores(vec![0, 1]),
                ..fast_cfg()
            };
            let r = run(g, &cfg).unwrap();
            assert_eq!(r.actor(b).items_in, 400, "{executor:?}");
            assert_eq!(r.total_dropped(), 0, "{executor:?}");
        }
    }

    #[test]
    fn sharded_pool_matches_unsharded_counts() {
        // Pinning with more workers than actors forces multiple ready-queue
        // shards (some permanently empty); stealing must still drain
        // every task and the run must finish with identical counts.
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 1_000)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        let c = g.add_actor("c", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(c));
        let cfg = EngineConfig {
            executor: ExecutorKind::Pool { workers: 8 },
            batch_size: 4,
            pinning: crate::affinity::PinningConfig::on_cores(vec![0]),
            ..fast_cfg()
        };
        let r = run(g, &cfg).unwrap();
        assert_eq!(r.actor(c).items_in, 1_000);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn pipeline_preserves_order_and_count() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 200)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(b).items_in, 200);
        assert_eq!(r.actor(a).items_out, 200);
    }

    #[test]
    fn paced_source_rate_is_respected() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(2000.0, 600)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        let rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.15,
            "measured source rate {rate}"
        );
    }

    #[test]
    fn backpressure_throttles_source_to_bottleneck_rate() {
        // Source at ~5000/s into a worker that can only do ~1000/s
        // (1 ms busy per item): measured source rate must collapse to the
        // bottleneck's service rate — the BAS phenomenon of §2.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5000.0, 900)));
        let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 1_000_000)));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 16);
        let r = run(g, &fast_cfg()).unwrap();
        let src_rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (src_rate - 1000.0).abs() / 1000.0 < 0.15,
            "source rate {src_rate} should be backpressured to ~1000/s"
        );
        assert!(r.actor(s).blocked > Duration::ZERO);
    }

    #[test]
    fn round_robin_splits_evenly() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let a = g.add_actor("r0", Behavior::worker(PassThrough));
        let b = g.add_actor("r1", Behavior::worker(PassThrough));
        let c = g.add_actor("r2", Behavior::worker(PassThrough));
        g.connect(s, Route::RoundRobin(vec![a, b, c]));
        let r = run(g, &fast_cfg()).unwrap();
        for id in [a, b, c] {
            assert_eq!(r.actor(id).items_in, 100);
        }
    }

    #[test]
    fn probabilistic_route_approximates_distribution() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10_000)),
        );
        let a = g.add_actor("p3", Behavior::worker(PassThrough));
        let b = g.add_actor("p7", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.3), (b, 0.7)],
            },
        );
        let r = run(g, &fast_cfg()).unwrap();
        let fa = r.actor(a).items_in as f64 / 10_000.0;
        assert!((fa - 0.3).abs() < 0.03, "fraction {fa}");
        assert_eq!(r.actor(a).items_in + r.actor(b).items_in, 10_000);
    }

    #[test]
    fn key_map_routes_by_key() {
        use spinstreams_core::KeyDistribution;
        let mut g = ActorGraph::new();
        let cfg = SourceConfig::new(f64::INFINITY, 1000).with_keys(KeyDistribution::uniform(4));
        let s = g.add_actor("src", Behavior::Source(cfg));
        let a = g.add_actor("r0", Behavior::worker(PassThrough));
        let b = g.add_actor("r1", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::KeyMap {
                key_map: vec![0, 1, 0, 1],
                destinations: vec![a, b],
            },
        );
        let r = run(g, &fast_cfg()).unwrap();
        let total = r.actor(a).items_in + r.actor(b).items_in;
        assert_eq!(total, 1000);
        // Uniform keys, 2+2 split: roughly half each.
        let fa = r.actor(a).items_in as f64 / 1000.0;
        assert!((fa - 0.5).abs() < 0.1, "fraction {fa}");
    }

    #[test]
    fn eos_waits_for_all_upstreams() {
        // Two branches converge on one sink; the sink must see items from
        // both before terminating.
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 400)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(Spin::new("b", 50_000)));
        let k = g.add_actor("k", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.5), (b, 0.5)],
            },
        );
        g.connect(a, Route::Unicast(k));
        g.connect(b, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 400);
    }

    #[test]
    fn flush_emissions_are_delivered_after_eos() {
        struct HoldAll {
            buf: Vec<Tuple>,
        }
        impl crate::StreamOperator for HoldAll {
            fn process(&mut self, item: Tuple, _out: &mut Outputs) {
                self.buf.push(item);
            }
            fn flush(&mut self, out: &mut Outputs) {
                for t in self.buf.drain(..) {
                    out.emit_default(t);
                }
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 50)),
        );
        let h = g.add_actor("hold", Behavior::Worker(Box::new(HoldAll { buf: vec![] })));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(h));
        g.connect(h, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 50);
    }

    #[test]
    fn sink_emissions_counted_without_routes() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 123)),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        // PassThrough emits on port 0 which has no route on the sink.
        assert_eq!(r.actor(k).items_out, 123);
        assert!(r.actor(k).departure_rate().is_some());
    }

    #[test]
    fn send_timeout_drops_items_when_consumer_stalls() {
        // A consumer much slower than the timeout: with a tiny timeout the
        // source drops items instead of waiting (load-shedding mode).
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 64)),
        );
        let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 3_000_000)));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 4);
        let cfg = EngineConfig {
            send_timeout: Duration::from_millis(1),
            ..fast_cfg()
        };
        let r = run(g, &cfg).unwrap();
        assert!(r.actor(s).dropped > 0, "expected drops under 1 ms timeout");
        assert!(r.actor(w).items_in < 64);
        // Every drop is structurally accounted as a dead letter.
        assert_eq!(r.total_dead_letters(), r.actor(s).dropped);
        assert_eq!(r.dead_letters.total(), r.actor(s).dropped);
        let first = &r.dead_letters.entries()[0];
        assert_eq!(first.source, s);
        assert_eq!(first.destination, Some(w));
        assert_eq!(first.reason, DeadLetterReason::SendTimeout);
    }

    #[test]
    fn validation_errors() {
        // No actors.
        assert_eq!(
            run(ActorGraph::new(), &fast_cfg()).unwrap_err(),
            EngineError::NoActors
        );
        // No source.
        let mut g = ActorGraph::new();
        g.add_actor("w", Behavior::worker(PassThrough));
        assert_eq!(run(g, &fast_cfg()).unwrap_err(), EngineError::NoSource);
        // Unknown destination.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        g.connect(s, Route::Unicast(ActorId(9)));
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::UnknownDestination { .. }
        ));
        // Route to source.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let s2 = g.add_actor("src2", Behavior::Source(SourceConfig::new(1.0, 1)));
        g.connect(s, Route::Unicast(s2));
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::RouteToSource { .. }
        ));
        // Bad probability mass.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let w = g.add_actor("w", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(w, 0.4)],
            },
        );
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::InvalidRoute { .. }
        ));
        // Cycle between two workers.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(a));
        assert_eq!(run(g, &fast_cfg()).unwrap_err(), EngineError::Cyclic);
    }

    /// Panics on items whose `seq` is a multiple of `every` (except 0 when
    /// `skip_zero`); passes everything else through.
    struct PanicEvery {
        every: u64,
    }
    impl crate::StreamOperator for PanicEvery {
        fn process(&mut self, item: Tuple, out: &mut Outputs) {
            if item.seq.is_multiple_of(self.every) {
                panic!("injected: seq {}", item.seq);
            }
            out.emit_default(item);
        }
        fn name(&self) -> &str {
            "panic-every"
        }
    }

    #[test]
    fn resume_drops_only_poisoned_items() {
        use crate::supervision::SupervisorSpec;
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 100)),
        );
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 10 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::resume());
        let r = run(g, &fast_cfg()).unwrap();
        // seq 0, 10, ..., 90 panic: 10 poisoned items, 90 delivered.
        assert_eq!(r.actor(w).items_in, 100);
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 0);
        assert_eq!(r.actor(k).items_in, 90);
        assert_eq!(r.dead_letters.total(), 10);
        assert_eq!(
            r.dead_letters.by_reason(DeadLetterReason::OperatorPanic),
            10
        );
        assert!(r.dead_letters.entries().iter().all(|l| l.source == w));
    }

    #[test]
    fn restart_reinstantiates_operator_via_factory() {
        use crate::supervision::{Backoff, OperatorFactory, SupervisorSpec};
        // Dies on its 3rd item, every life: without restart (state reset)
        // it would stop after one failure.
        struct DiesAtThree {
            seen: u64,
        }
        impl crate::StreamOperator for DiesAtThree {
            fn process(&mut self, item: Tuple, out: &mut Outputs) {
                self.seen += 1;
                if self.seen == 3 {
                    panic!("third item");
                }
                out.emit_default(item);
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 30)),
        );
        let w = g.add_actor(
            "fragile",
            Behavior::Worker(Box::new(DiesAtThree { seen: 0 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(100, Backoff::none()));
        g.set_restart_factory(
            w,
            OperatorFactory::new(|| Box::new(DiesAtThree { seen: 0 })),
        );
        let r = run(g, &fast_cfg()).unwrap();
        // Every life processes 2 items then dies on the 3rd: 30 items =
        // 10 lives, 10 panics, 10 restarts, 20 delivered.
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 10);
        assert_eq!(r.actor(k).items_in, 20);
        assert_eq!(r.dead_letters.total(), 10);
    }

    #[test]
    fn restart_without_factory_resets_operator() {
        use crate::supervision::{Backoff, SupervisorSpec};
        struct DiesAtThree {
            seen: u64,
        }
        impl crate::StreamOperator for DiesAtThree {
            fn process(&mut self, item: Tuple, out: &mut Outputs) {
                self.seen += 1;
                if self.seen == 3 {
                    panic!("third item");
                }
                out.emit_default(item);
            }
            fn reset(&mut self) {
                self.seen = 0;
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 30)),
        );
        let w = g.add_actor(
            "fragile",
            Behavior::Worker(Box::new(DiesAtThree { seen: 0 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(100, Backoff::none()));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 10);
        assert_eq!(r.actor(k).items_in, 20);
    }

    #[test]
    fn restart_backoff_time_is_recorded() {
        use crate::supervision::{Backoff, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 20)),
        );
        let w = g.add_actor("flaky", Behavior::Worker(Box::new(PanicEvery { every: 5 })));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(
            w,
            SupervisorSpec::restart(
                100,
                Backoff {
                    initial: Duration::from_millis(2),
                    max: Duration::from_millis(2),
                    multiplier: 1.0,
                    jitter: 0.0,
                },
            ),
        );
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).restarts, 4);
        assert!(
            r.actor(w).backoff >= Duration::from_millis(8),
            "backoff {:?}",
            r.actor(w).backoff
        );
    }

    #[test]
    fn restart_budget_exhaustion_stops_the_actor() {
        use crate::supervision::{Backoff, SupervisorSpec};
        struct AlwaysPanics;
        impl crate::StreamOperator for AlwaysPanics {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("always");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 50)),
        );
        let w = g.add_actor("doomed", Behavior::Worker(Box::new(AlwaysPanics)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(2, Backoff::none()));
        let r = run(g, &fast_cfg()).unwrap();
        // Items 1-3 panic (2 restarts used, 3rd failure exhausts the
        // budget); items 4-50 arrive at a stopped actor and drop.
        assert_eq!(r.actor(w).panics, 3);
        assert_eq!(r.actor(w).restarts, 2);
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.dead_letters.total(), 50);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::OperatorPanic), 3);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::StoppedActor), 47);
    }

    #[test]
    fn stopped_actor_can_degrade_to_forwarding() {
        use crate::supervision::{DegradePolicy, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 40)),
        );
        // Panics on seq 0, i.e. immediately; Stop + Forward turns the
        // actor into an identity for the remaining 39 items.
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 64 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(
            w,
            SupervisorSpec::default().with_degrade(DegradePolicy::Forward),
        );
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 1);
        assert_eq!(r.actor(k).items_in, 39);
        assert_eq!(r.dead_letters.total(), 1);
    }

    #[test]
    fn uncontainable_failure_reports_actor_failed() {
        use crate::supervision::{Backoff, SupervisorSpec};
        // `reset` itself panics: supervision cannot contain that, but
        // `run` must return an error instead of panicking the caller.
        struct BrokenReset;
        impl crate::StreamOperator for BrokenReset {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("process");
            }
            fn reset(&mut self) {
                panic!("reset is broken too");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10)),
        );
        let w = g.add_actor("broken", Behavior::Worker(Box::new(BrokenReset)));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(w, SupervisorSpec::restart(10, Backoff::none()));
        let err = run(g, &fast_cfg()).unwrap_err();
        match err {
            EngineError::ActorFailed { actor, reason } => {
                assert_eq!(actor, w);
                assert!(reason.contains("reset is broken"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn default_policy_stops_and_drops_silently_but_accountably() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 25)),
        );
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 64 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        // No set_supervision call: default is Stop + Drop.
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 1);
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.dead_letters.total(), 25);
        assert_eq!(r.total_dead_letters(), 25);
    }

    #[test]
    fn telemetry_run_samples_latency_and_traces_lifecycle() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5_000.0, 200)));
        let w = g.add_actor("work", Behavior::worker(Spin::new("w", 50_000)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(5));
        let (report, tel) = run_with_telemetry(g, &fast_cfg(), &tcfg).unwrap();
        assert_eq!(report.actor(k).items_in, 200);

        // At minimum the end-of-run snapshot exists; with the sampler
        // feature on, a ~40 ms paced run at a 5 ms interval yields several.
        assert!(!tel.snapshots.is_empty());
        #[cfg(feature = "telemetry")]
        assert!(tel.snapshots.len() >= 2, "got {}", tel.snapshots.len());
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.actors.len(), 3);
        assert_eq!(last.actors[k.0].items_in, 200);
        assert_eq!(
            last.actors[s.0].queue_depth, None,
            "sources have no mailbox"
        );
        assert_eq!(last.actors[w.0].queue_capacity, Some(64));

        // Every tuple's end-to-end latency landed in the sink histogram.
        assert_eq!(last.latencies.len(), 1);
        assert_eq!(last.latencies[0].actor, k);
        assert_eq!(last.latencies[0].latency.count, 200);
        // The Spin stage costs 50 µs alone, so the p50 must exceed that.
        assert!(
            last.latencies[0].latency.p50_ns >= 50_000,
            "p50 {}",
            last.latencies[0].latency.p50_ns
        );

        // Lifecycle trace: every actor started and finished.
        let starts = tel
            .trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::ActorStarted)
            .count();
        let finishes = tel
            .trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::ActorFinished)
            .count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        // Sequence numbers are gap-free and ordered.
        for (i, e) in tel.trace.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Snapshot ticks are strictly increasing with monotone time.
        for pair in tel.snapshots.windows(2) {
            assert_eq!(pair[1].tick, pair[0].tick + 1);
            assert!(pair[1].t_ns >= pair[0].t_ns);
        }
    }

    #[test]
    fn telemetry_traces_panics_restarts_and_stops() {
        use crate::supervision::{Backoff, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 20)),
        );
        let w = g.add_actor("flaky", Behavior::Worker(Box::new(PanicEvery { every: 5 })));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(w, SupervisorSpec::restart(2, Backoff::none()));
        let (report, tel) =
            run_with_telemetry(g, &fast_cfg(), &TelemetryConfig::default()).unwrap();
        // seq 0 and 5 panic and restart; seq 10's panic exhausts the
        // budget (stop); seq 11-19 then arrive at a stopped actor.
        assert_eq!(report.actor(w).panics, 3);
        let count = |k: TraceEventKind| tel.trace.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(TraceEventKind::OperatorPanicked), 3);
        assert_eq!(count(TraceEventKind::OperatorRestarted), 2);
        assert_eq!(count(TraceEventKind::ActorStopped), 1);
        // 3 poisoned items + 9 items dropped at the stopped actor.
        assert_eq!(
            tel.trace
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::DeadLetter { .. }))
                .count(),
            12
        );
        // The final snapshot reflects the same counters.
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.actors[w.0].panics, 3);
        assert_eq!(last.actors[w.0].restarts, 2);
    }

    #[test]
    fn closure_operators_transform_items() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 100)),
        );
        let double = g.add_actor(
            "double",
            Behavior::Worker(Box::new(FnOperator::new(
                "double",
                |t: Tuple, out: &mut Outputs| {
                    out.emit_default(t);
                    out.emit_default(t);
                },
            ))),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(double));
        g.connect(double, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 200);
    }

    fn pool_cfg(workers: usize) -> EngineConfig {
        EngineConfig {
            executor: ExecutorKind::Pool { workers },
            ..fast_cfg()
        }
    }

    #[test]
    fn pool_workers_resolution() {
        assert_eq!(ExecutorKind::ThreadPerActor.pool_workers(), None);
        assert_eq!(ExecutorKind::Pool { workers: 3 }.pool_workers(), Some(3));
        let auto = ExecutorKind::Pool { workers: 0 }.pool_workers().unwrap();
        assert!(auto >= 1, "auto-resolved worker count must be positive");
    }

    #[test]
    fn pool_executor_delivers_all_items_on_pipeline() {
        for workers in [1, 2, 4] {
            let mut g = ActorGraph::new();
            let s = g.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
            );
            let w = g.add_actor("mid", Behavior::worker(PassThrough));
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(s, Route::Unicast(w));
            g.connect(w, Route::Unicast(k));
            let r = run(g, &pool_cfg(workers)).unwrap();
            assert_eq!(r.actor(w).items_in, 500, "workers {workers}");
            assert_eq!(r.actor(k).items_in, 500, "workers {workers}");
            assert_eq!(r.total_dropped(), 0, "workers {workers}");
        }
    }

    #[test]
    fn pool_executor_handles_fan_in_with_fewer_workers_than_actors() {
        // Two sources fan into one merge (multi-producer mailbox), then a
        // sink: 4 actors on a single pool worker must still drain
        // everything via cooperative scheduling.
        let mut g = ActorGraph::new();
        let s0 = g.add_actor(
            "src0",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let s1 = g.add_actor(
            "src1",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let m = g.add_actor("merge", Behavior::worker(PassThrough));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s0, Route::Unicast(m));
        g.connect(s1, Route::Unicast(m));
        g.connect(m, Route::Unicast(k));
        let r = run(g, &pool_cfg(1)).unwrap();
        assert_eq!(r.actor(m).items_in, 600);
        assert_eq!(r.actor(k).items_in, 600);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn pool_executor_backpressure_with_tiny_mailboxes() {
        // Capacity-2 mailboxes on a 3-stage pipeline under one worker:
        // every hop blocks constantly, exercising the help-don't-park
        // path in `pool_send_batch` end to end.
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 400)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(k));
        for id in [a, b, k] {
            g.set_mailbox_capacity(id, 2);
        }
        let r = run(g, &pool_cfg(1)).unwrap();
        assert_eq!(r.actor(k).items_in, 400);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn pool_send_timeout_drops_items_when_consumer_stalls() {
        // The pool analogue of `send_timeout_drops_items_when_consumer_stalls`:
        // BAS load shedding and dead-letter accounting must survive the
        // executor swap.
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 64)),
        );
        let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 3_000_000)));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 2);
        let cfg = EngineConfig {
            send_timeout: Duration::from_millis(1),
            ..pool_cfg(1)
        };
        let r = run(g, &cfg).unwrap();
        let dropped = r.actor(s).dropped;
        assert!(dropped > 0, "expected send-timeout drops");
        assert_eq!(r.dead_letters.total(), dropped);
        assert_eq!(r.actor(s).dead_letters, dropped);
        assert_eq!(r.actor(w).items_in + dropped, 64, "conservation");
    }

    #[test]
    fn pool_uncontainable_failure_reports_actor_failed() {
        use crate::supervision::{Backoff, SupervisorSpec};
        // A panicking `reset` escapes `guarded_call` in the pool executor
        // too; the failure must surface as ActorFailed while every other
        // actor still shuts down cleanly (no hang).
        struct BrokenReset;
        impl crate::StreamOperator for BrokenReset {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("process");
            }
            fn reset(&mut self) {
                panic!("reset is broken too");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10)),
        );
        let w = g.add_actor("broken", Behavior::Worker(Box::new(BrokenReset)));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(w, SupervisorSpec::restart(10, Backoff::none()));
        let err = run(g, &pool_cfg(2)).unwrap_err();
        match err {
            EngineError::ActorFailed { actor, reason } => {
                assert_eq!(actor, w);
                assert!(reason.contains("reset is broken"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn pool_executor_batched_runs_match_threaded_counts() {
        // Same seeded graph under both executors at batch 64: per-actor
        // item counts are a pure function of the routing RNG and must be
        // identical.
        let build = || {
            let mut g = ActorGraph::new();
            let s = g.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(f64::INFINITY, 2_000)),
            );
            let r0 = g.add_actor("r0", Behavior::worker(PassThrough));
            let r1 = g.add_actor("r1", Behavior::worker(PassThrough));
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(s, Route::RoundRobin(vec![r0, r1]));
            g.connect(r0, Route::Unicast(k));
            g.connect(r1, Route::Unicast(k));
            g
        };
        let batched = |executor| EngineConfig {
            batch_size: 64,
            executor,
            ..fast_cfg()
        };
        let threads = run(build(), &batched(ExecutorKind::ThreadPerActor)).unwrap();
        let pool = run(build(), &batched(ExecutorKind::Pool { workers: 2 })).unwrap();
        let counts = |r: &RunReport| {
            r.actors
                .iter()
                .map(|a| (a.items_in, a.items_out))
                .collect::<Vec<_>>()
        };
        assert_eq!(counts(&threads), counts(&pool));
        assert_eq!(threads.total_dropped(), 0);
        assert_eq!(pool.total_dropped(), 0);
    }

    #[test]
    fn pool_restart_budget_exhaustion_stops_the_actor() {
        use crate::supervision::{Backoff, SupervisorSpec};
        // The pool analogue of `restart_budget_exhaustion_stops_the_actor`:
        // budget accounting and stopped-actor drops must survive the
        // executor swap.
        struct AlwaysPanics;
        impl crate::StreamOperator for AlwaysPanics {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("always");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 50)),
        );
        let w = g.add_actor("doomed", Behavior::Worker(Box::new(AlwaysPanics)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(2, Backoff::none()));
        let r = run(g, &pool_cfg(2)).unwrap();
        assert_eq!(r.actor(w).panics, 3);
        assert_eq!(r.actor(w).restarts, 2);
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.dead_letters.total(), 50);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::OperatorPanic), 3);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::StoppedActor), 47);
    }

    #[test]
    fn pool_stopped_actor_degrades_to_forward_or_drop() {
        use crate::supervision::{DegradePolicy, SupervisorSpec};
        // Degraded-mode routing under the pool executor: Forward turns the
        // stopped actor into an identity, Drop dead-letters everything.
        for (policy, sink_in, dead) in [
            (DegradePolicy::Forward, 39, 1),
            (DegradePolicy::Drop, 0, 40),
        ] {
            let mut g = ActorGraph::new();
            let s = g.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(f64::INFINITY, 40)),
            );
            let w = g.add_actor(
                "flaky",
                Behavior::Worker(Box::new(PanicEvery { every: 64 })),
            );
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(s, Route::Unicast(w));
            g.connect(w, Route::Unicast(k));
            g.set_supervision(w, SupervisorSpec::default().with_degrade(policy));
            let r = run(g, &pool_cfg(2)).unwrap();
            assert_eq!(r.actor(w).panics, 1, "{policy:?}");
            assert_eq!(r.actor(k).items_in, sink_in, "{policy:?}");
            assert_eq!(r.dead_letters.total(), dead, "{policy:?}");
        }
    }

    /// Emits every 10th input it has ever seen — a minimal stateful
    /// operator whose output count is a pure function of its counter, so
    /// any state loss across a restart shifts the sink count.
    struct EveryTenth {
        count: u64,
    }
    impl crate::StreamOperator for EveryTenth {
        fn process(&mut self, item: Tuple, out: &mut Outputs) {
            self.count += 1;
            if self.count.is_multiple_of(10) {
                out.emit_default(item);
            }
        }
        fn name(&self) -> &str {
            "every-tenth"
        }
        fn reset(&mut self) {
            self.count = 0;
        }
        fn snapshot(&mut self) -> Option<crate::checkpoint::StateSnapshot> {
            let mut s = crate::checkpoint::StateSnapshot::new();
            s.push_u64(self.count);
            Some(s)
        }
        fn restore(&mut self, snapshot: &crate::checkpoint::StateSnapshot) -> bool {
            match snapshot.reader().read_u64() {
                Some(count) => {
                    self.count = count;
                    true
                }
                None => false,
            }
        }
    }

    #[test]
    fn checkpointing_counts_epochs_and_snapshots() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
        );
        let w = g.add_actor("mid", Behavior::worker(PassThrough));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        let cfg = EngineConfig {
            checkpoint_interval: Some(100),
            ..fast_cfg()
        };
        let r = run(g, &cfg).unwrap();
        // 500 items at interval 100: epochs 1-5 all propagate to the sink.
        assert_eq!(r.last_complete_epoch, Some(5));
        assert_eq!(r.actor(w).snapshots, 5);
        assert_eq!(r.actor(k).snapshots, 5);
        // A stateless operator has nothing to capture: epochs complete
        // with zero serialized bytes.
        assert_eq!(r.actor(w).snapshot_bytes, 0);
        assert_eq!(r.actor(k).items_in, 500);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn fan_in_alignment_completes_epochs_across_sources() {
        // The merge actor must hold each epoch open until the marker has
        // arrived from *both* sources before snapshotting and acking.
        let mut g = ActorGraph::new();
        let s0 = g.add_actor(
            "src0",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let s1 = g.add_actor(
            "src1",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let m = g.add_actor("merge", Behavior::worker(PassThrough));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s0, Route::Unicast(m));
        g.connect(s1, Route::Unicast(m));
        g.connect(m, Route::Unicast(k));
        let cfg = EngineConfig {
            checkpoint_interval: Some(100),
            ..fast_cfg()
        };
        let r = run(g, &cfg).unwrap();
        assert_eq!(r.last_complete_epoch, Some(3));
        assert_eq!(r.actor(m).snapshots, 3);
        assert_eq!(r.actor(m).items_in, 600);
        assert_eq!(r.actor(k).items_in, 600);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn checkpointing_off_reports_no_epochs() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 200)),
        );
        let w = g.add_actor("mid", Behavior::Worker(Box::new(EveryTenth { count: 0 })));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        // `fast_cfg` leaves `checkpoint_interval` at the default `None`:
        // no markers, no snapshots, no alignment stalls — even for an
        // operator that implements `snapshot`.
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.last_complete_epoch, None);
        for a in &r.actors {
            assert_eq!(a.snapshots, 0);
            assert_eq!(a.snapshot_bytes, 0);
            assert_eq!(a.recoveries, 0);
            assert_eq!(a.align_stall, Duration::ZERO);
            assert_eq!(a.last_restored_epoch, None);
        }
        assert_eq!(r.actor(k).items_in, 20);
    }

    #[test]
    fn crash_recovery_restores_state_and_replays_input() {
        use crate::operators::{FaultConfig, FaultInjector};
        use crate::supervision::{Backoff, SupervisorSpec};
        // A deterministic crash on tuple 250 with snapshots every 100:
        // recovery restores the epoch-2 snapshot (count = 200), replays
        // the 49 logged tuples with output suppressed, then retries the
        // poisoned tuple live. The stateful counter never loses a beat:
        // the sink sees exactly 500 / 10 = 50 emissions and no item is
        // dead-lettered — the same totals as an unfaulted run.
        for (label, cfg) in [("threads", fast_cfg()), ("pool-2", pool_cfg(2))] {
            let cfg = EngineConfig {
                checkpoint_interval: Some(100),
                ..cfg
            };
            let mut g = ActorGraph::new();
            let s = g.add_actor(
                "src",
                Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
            );
            let w = g.add_actor(
                "stateful",
                Behavior::Worker(Box::new(FaultInjector::new(
                    EveryTenth { count: 0 },
                    FaultConfig::none().with_crash_after_tuples(250),
                ))),
            );
            let k = g.add_actor("sink", Behavior::worker(PassThrough));
            g.connect(s, Route::Unicast(w));
            g.connect(w, Route::Unicast(k));
            g.set_supervision(w, SupervisorSpec::restart(5, Backoff::none()));
            let r = run(g, &cfg).unwrap();
            let a = r.actor(w);
            assert_eq!(a.panics, 1, "{label}");
            assert_eq!(a.restarts, 1, "{label}");
            assert_eq!(a.recoveries, 1, "{label}");
            assert_eq!(a.replayed, 49, "{label}");
            assert_eq!(a.last_restored_epoch, Some(2), "{label}");
            assert!(a.snapshot_bytes > 0, "{label}");
            assert_eq!(r.actor(k).items_in, 50, "{label}");
            assert_eq!(r.dead_letters.total(), 0, "{label}");
            assert_eq!(r.last_complete_epoch, Some(5), "{label}");
        }
    }

    #[test]
    fn crash_inside_snapshot_recovers_and_retries_the_capture() {
        use crate::operators::{FaultConfig, FaultInjector};
        use crate::supervision::{Backoff, SupervisorSpec};
        // The fault fires *inside* the epoch-2 snapshot call. Supervision
        // restarts the operator, restores the epoch-1 snapshot, replays
        // the full inter-epoch log (100 tuples) and retries the capture —
        // the one-shot trigger stays fired, so the retry succeeds and
        // epoch 2 still completes globally.
        let cfg = EngineConfig {
            checkpoint_interval: Some(100),
            ..fast_cfg()
        };
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
        );
        let w = g.add_actor(
            "stateful",
            Behavior::Worker(Box::new(FaultInjector::new(
                EveryTenth { count: 0 },
                FaultConfig::none().with_crash_at_epoch(2),
            ))),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(5, Backoff::none()));
        let r = run(g, &cfg).unwrap();
        let a = r.actor(w);
        assert_eq!(a.panics, 1);
        assert_eq!(a.restarts, 1);
        assert_eq!(a.recoveries, 1);
        assert_eq!(a.replayed, 100);
        assert_eq!(a.last_restored_epoch, Some(1));
        // Epoch 1 plus the retried epoch-2 capture plus epochs 3-5.
        assert_eq!(a.snapshots, 5);
        assert_eq!(r.actor(k).items_in, 50);
        assert_eq!(r.dead_letters.total(), 0);
        assert_eq!(r.last_complete_epoch, Some(5));
    }

    #[test]
    fn checkpoint_and_recovery_emit_trace_events() {
        use crate::operators::{FaultConfig, FaultInjector};
        use crate::supervision::{Backoff, SupervisorSpec};
        let cfg = EngineConfig {
            checkpoint_interval: Some(100),
            ..fast_cfg()
        };
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let w = g.add_actor(
            "stateful",
            Behavior::Worker(Box::new(FaultInjector::new(
                EveryTenth { count: 0 },
                FaultConfig::none().with_crash_after_tuples(150),
            ))),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(5, Backoff::none()));
        let (r, tel) = run_with_telemetry(g, &cfg, &TelemetryConfig::default()).unwrap();
        assert_eq!(r.actor(w).recoveries, 1);
        let completed: Vec<_> = tel
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::CheckpointCompleted { epoch, .. } => Some((e.actor, epoch)),
                _ => None,
            })
            .collect();
        // Worker and sink each complete epochs 1-3.
        assert!(completed.contains(&(w, 1)), "events: {completed:?}");
        assert!(completed.contains(&(w, 3)));
        assert!(completed.contains(&(k, 3)));
        let recovered: Vec<_> = tel
            .trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::Recovered { epoch, replayed } => Some((e.actor, epoch, replayed)),
                _ => None,
            })
            .collect();
        assert_eq!(recovered, vec![(w, 1, 49)]);
    }

    /// A seeded three-stage pipeline for tenancy tests; `items` varies per
    /// tenant so cross-tenant mixups change counts.
    fn tenant_pipeline(items: u64) -> ActorGraph {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, items)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g
    }

    #[test]
    fn tenants_match_solo_counts_on_both_executors() {
        let items = [300u64, 450, 600];
        for executor in [
            ExecutorKind::ThreadPerActor,
            ExecutorKind::Pool { workers: 2 },
        ] {
            let cfg = EngineConfig {
                executor,
                batch_size: 8,
                ..fast_cfg()
            };
            let solo: Vec<u64> = items
                .iter()
                .map(|&n| {
                    run(tenant_pipeline(n), &cfg)
                        .unwrap()
                        .actor(ActorId(2))
                        .items_in
                })
                .collect();
            let tenants = items
                .iter()
                .enumerate()
                .map(|(t, &n)| TenantSpec::new(format!("t{t}"), tenant_pipeline(n)))
                .collect();
            let runs = run_tenants(tenants, &cfg).unwrap();
            assert_eq!(runs.len(), 3);
            for (t, run) in runs.iter().enumerate() {
                assert_eq!(run.name, format!("t{t}"));
                assert_eq!(
                    run.report.actor(ActorId(2)).items_in,
                    solo[t],
                    "{executor:?} tenant {t}"
                );
                assert_eq!(run.report.total_dropped(), 0, "{executor:?} tenant {t}");
            }
        }
    }

    #[test]
    fn weighted_tenants_all_complete_under_one_worker() {
        // One pool worker serving three backlogged tenants with unequal
        // weights: DRR must still drain everyone (no starvation).
        let tenants = vec![
            TenantSpec::new("light", tenant_pipeline(200)).with_weight(1),
            TenantSpec::new("mid", tenant_pipeline(400)).with_weight(2),
            TenantSpec::new("heavy", tenant_pipeline(800)).with_weight(4),
        ];
        let cfg = EngineConfig {
            executor: ExecutorKind::Pool { workers: 1 },
            batch_size: 4,
            ..fast_cfg()
        };
        let runs = run_tenants(tenants, &cfg).unwrap();
        for (run, expect) in runs.iter().zip([200u64, 400, 800]) {
            assert_eq!(
                run.report.actor(ActorId(2)).items_in,
                expect,
                "{}",
                run.name
            );
        }
    }

    #[test]
    fn tenant_failure_surfaces_as_actor_failed() {
        struct BrokenReset;
        impl crate::StreamOperator for BrokenReset {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("process");
            }
            fn reset(&mut self) {
                panic!("reset is broken too");
            }
        }
        use crate::supervision::{Backoff, SupervisorSpec};
        let mut bad = ActorGraph::new();
        let s = bad.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10)),
        );
        let w = bad.add_actor("broken", Behavior::Worker(Box::new(BrokenReset)));
        bad.connect(s, Route::Unicast(w));
        bad.set_supervision(w, SupervisorSpec::restart(10, Backoff::none()));
        let tenants = vec![
            TenantSpec::new("ok", tenant_pipeline(100)),
            TenantSpec::new("bad", bad),
        ];
        let cfg = EngineConfig {
            executor: ExecutorKind::Pool { workers: 2 },
            ..fast_cfg()
        };
        let err = run_tenants(tenants, &cfg).unwrap_err();
        match err {
            EngineError::ActorFailed { actor, reason } => {
                assert_eq!(actor, w, "local id of the failing tenant's actor");
                assert!(reason.contains("reset is broken"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_and_single_tenant_runs() {
        assert!(run_tenants(Vec::new(), &fast_cfg()).unwrap().is_empty());
        let runs = run_tenants(
            vec![TenantSpec::new("solo", tenant_pipeline(50))],
            &fast_cfg(),
        )
        .unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].report.actor(ActorId(2)).items_in, 50);
    }

    #[test]
    fn resolved_pool_workers_honors_pinned_core_set() {
        // `--workers 0` means "one per core"; with a pinned core list the
        // worker threads are confined to that set, so the pool sizes to it.
        let mut cfg = EngineConfig {
            executor: ExecutorKind::Pool { workers: 0 },
            pinning: crate::affinity::PinningConfig::on_cores(vec![0, 0, 0]),
            ..fast_cfg()
        };
        assert_eq!(cfg.resolved_pool_workers(), Some(3));
        // Unpinned 0 falls back to machine parallelism.
        cfg.pinning = crate::affinity::PinningConfig::default();
        assert_eq!(
            cfg.resolved_pool_workers(),
            ExecutorKind::Pool { workers: 0 }.pool_workers()
        );
        // Explicit counts are never overridden by pinning.
        cfg.executor = ExecutorKind::Pool { workers: 5 };
        cfg.pinning = crate::affinity::PinningConfig::on_cores(vec![0, 1]);
        assert_eq!(cfg.resolved_pool_workers(), Some(5));
        // Thread-per-actor has no pool.
        cfg.executor = ExecutorKind::ThreadPerActor;
        assert_eq!(cfg.resolved_pool_workers(), None);
    }

    #[test]
    fn multi_tenant_telemetry_carries_tenant_label() {
        let tenants = vec![
            TenantSpec::new("alpha", tenant_pipeline(80))
                .with_telemetry(TelemetryConfig::default()),
            TenantSpec::new("beta", tenant_pipeline(80)),
        ];
        let cfg = EngineConfig {
            executor: ExecutorKind::Pool { workers: 2 },
            ..fast_cfg()
        };
        let runs = run_tenants(tenants, &cfg).unwrap();
        let tel = runs[0].telemetry.as_ref().expect("telemetry was requested");
        let snap = tel.last_snapshot().expect("final snapshot");
        assert_eq!(snap.tenant.as_deref(), Some("alpha"));
        assert!(snap.to_json().contains("\"tenant\":\"alpha\""));
        assert!(runs[1].telemetry.is_none());
    }
}
