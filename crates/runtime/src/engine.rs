//! The execution engine: one thread per actor, bounded BAS mailboxes,
//! run-to-completion with end-of-stream propagation, and per-actor
//! supervision of panicking operators (see [`crate::supervision`]).

use crate::graph::{ActorGraph, ActorSpec, Behavior, SourceConfig};
use crate::mailbox::{channel, BatchFailure, DepthProbe, Envelope, RecvBatch, SendOutcome, Sender};
use crate::metrics::{ActorMetrics, RunReport};
use crate::operator::Outputs;
use crate::rng::XorShift64;
use crate::route::{Route, RouteState};
use crate::supervision::{
    DeadLetter, DeadLetterLog, DeadLetterReason, DegradePolicy, OperatorFactory, SupervisionPolicy,
    SupervisorSpec,
};
use crate::telemetry::{
    HubActor, LatencyHistogram, RawCounters, TelemetryConfig, TelemetryHub, TelemetryReport,
    TraceEventKind, TraceLog,
};
use crate::ActorId;
use spinstreams_core::{Tuple, TUPLE_ARITY};
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, Once, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Default mailbox capacity (overridable per actor in the graph).
    pub mailbox_capacity: usize,
    /// BAS send timeout after which an item is dropped. §5.1 sets this
    /// "significantly higher than the maximum operators' service time"
    /// (5 s there) so that nothing is dropped.
    pub send_timeout: Duration,
    /// Base RNG seed; actor `i` uses `seed + i` so runs are reproducible.
    pub seed: u64,
    /// Number of individual [`DeadLetter`] entries retained in the run
    /// report's log; totals stay exact past the cap.
    pub dead_letter_capacity: usize,
    /// Envelopes coalesced per destination before a mailbox handoff.
    ///
    /// `1` (the default) is the classic one-envelope-per-send path and is
    /// behaviorally identical to the unbatched engine. Larger values
    /// amortize one lock acquisition and condvar notify over the whole
    /// batch, trading a bounded amount of per-tuple latency for
    /// throughput. Values of `0` are treated as `1`.
    pub batch_size: usize,
    /// Deadline for coalesced output: a paced source flushes its buffers
    /// before sleeping if they have been held at least this long, so slow
    /// streams never stall behind an unfilled batch. Irrelevant at
    /// `batch_size = 1`.
    pub flush_interval: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mailbox_capacity: 256,
            send_timeout: Duration::from_secs(5),
            seed: 0xC0FFEE,
            dead_letter_capacity: 4096,
            batch_size: 1,
            flush_interval: Duration::from_millis(1),
        }
    }
}

/// Structural problems that prevent executing an actor graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The graph has no actors.
    NoActors,
    /// The graph has no source actor.
    NoSource,
    /// A route references an actor id that does not exist.
    UnknownDestination {
        /// The actor owning the route.
        from: ActorId,
        /// The bad destination.
        to: ActorId,
    },
    /// A route targets a source actor (sources have no mailbox).
    RouteToSource {
        /// The actor owning the route.
        from: ActorId,
        /// The targeted source.
        to: ActorId,
    },
    /// A route is structurally invalid (empty destination list, probability
    /// mass far from 1, key map referencing a missing replica, …).
    InvalidRoute {
        /// The actor owning the route.
        from: ActorId,
        /// Description of the problem.
        reason: String,
    },
    /// The actor graph contains a cycle; BAS blocking could deadlock.
    Cyclic,
    /// An actor thread died in a way supervision could not contain (for
    /// example a panic inside a restart hook). [`run`] reports this
    /// instead of panicking the caller.
    ActorFailed {
        /// The actor whose thread died.
        actor: ActorId,
        /// The panic message, as far as it could be extracted.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoActors => write!(f, "actor graph has no actors"),
            EngineError::NoSource => write!(f, "actor graph has no source actor"),
            EngineError::UnknownDestination { from, to } => {
                write!(f, "{from} routes to unknown {to}")
            }
            EngineError::RouteToSource { from, to } => {
                write!(f, "{from} routes to source actor {to}")
            }
            EngineError::InvalidRoute { from, reason } => {
                write!(f, "invalid route on {from}: {reason}")
            }
            EngineError::Cyclic => write!(f, "actor graph contains a cycle"),
            EngineError::ActorFailed { actor, reason } => {
                write!(f, "{actor} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Validates the actor graph (see [`EngineError`] variants).
pub(crate) fn validate(actors: &[ActorSpec]) -> Result<(), EngineError> {
    if actors.is_empty() {
        return Err(EngineError::NoActors);
    }
    if !actors.iter().any(|a| a.behavior.is_source()) {
        return Err(EngineError::NoSource);
    }
    let n = actors.len();
    for (i, spec) in actors.iter().enumerate() {
        let from = ActorId(i);
        for route in &spec.routes {
            let mut dests = route.destinations_iter().peekable();
            if dests.peek().is_none() {
                return Err(EngineError::InvalidRoute {
                    from,
                    reason: "route has no destinations".into(),
                });
            }
            for d in dests {
                if d.0 >= n {
                    return Err(EngineError::UnknownDestination { from, to: d });
                }
                if actors[d.0].behavior.is_source() {
                    return Err(EngineError::RouteToSource { from, to: d });
                }
            }
            match route {
                Route::Probabilistic { choices } => {
                    let sum: f64 = choices.iter().map(|(_, p)| *p).sum();
                    if (sum - 1.0).abs() > 1e-6 || choices.iter().any(|(_, p)| *p < 0.0) {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: format!("probabilities sum to {sum}"),
                        });
                    }
                }
                Route::KeyMap {
                    key_map,
                    destinations,
                } => {
                    if key_map.is_empty() {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: "empty key map".into(),
                        });
                    }
                    if key_map.iter().any(|r| *r >= destinations.len()) {
                        return Err(EngineError::InvalidRoute {
                            from,
                            reason: "key map references missing replica".into(),
                        });
                    }
                }
                _ => {}
            }
        }
    }
    // Acyclicity (actor-level): BAS blocking on a cycle can deadlock.
    let succ: Vec<Vec<usize>> = actors
        .iter()
        .map(|a| {
            let mut s: Vec<usize> = a
                .routes
                .iter()
                .flat_map(|r| r.destinations_iter())
                .map(|d| d.0)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        })
        .collect();
    if !spinstreams_core::is_acyclic(n, &succ) {
        return Err(EngineError::Cyclic);
    }
    Ok(())
}

/// Shared per-thread context for delivering outputs.
struct DeliveryCtx {
    id: ActorId,
    senders: Vec<Option<Sender>>,
    routes: Vec<RouteState>,
    eos_targets: Vec<usize>,
    rng: XorShift64,
    metrics: Arc<ActorMetrics>,
    started_at: Instant,
    send_timeout: Duration,
    dead_letters: Arc<Mutex<DeadLetterLog>>,
    /// Present only with telemetry enabled on a sink actor: records
    /// end-to-end latency of every tuple consumed at a sink port.
    latency: Option<Arc<LatencyHistogram>>,
    /// Present only with telemetry enabled: structured lifecycle events.
    trace: Option<Arc<TraceLog>>,
    /// Stamp source emissions with their departure time (telemetry on).
    stamp: bool,
    /// Envelopes coalesced per destination before a mailbox handoff.
    batch_size: usize,
    /// Deadline after which a paced source flushes an unfilled batch.
    flush_interval: Duration,
    /// Per-destination coalescing buffers (indexed by actor id; only the
    /// slots of reachable destinations are ever used).
    out_bufs: Vec<Vec<Envelope>>,
    /// Total envelopes currently coalesced across all buffers.
    buffered: usize,
    /// When the coalescing buffers were last drained (deadline policy).
    last_flush: Instant,
}

impl DeliveryCtx {
    fn now_ns(&self) -> u64 {
        self.started_at.elapsed().as_nanos() as u64
    }

    /// Records a lifecycle trace event, if tracing is enabled.
    fn trace_event(&self, kind: TraceEventKind) {
        if let Some(trace) = &self.trace {
            trace.record(self.now_ns(), self.id, kind);
        }
    }

    /// Records `tuple` as undeliverable.
    fn dead_letter(&self, destination: Option<ActorId>, reason: DeadLetterReason, tuple: &Tuple) {
        use std::sync::atomic::Ordering;
        self.metrics.dead_letters.fetch_add(1, Ordering::Relaxed);
        self.trace_event(TraceEventKind::DeadLetter { reason });
        self.dead_letters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(DeadLetter {
                source: self.id,
                destination,
                reason,
                key: tuple.key,
                seq: tuple.seq,
            });
    }

    /// Routes everything in `out` into the per-destination coalescing
    /// buffers; a buffer reaching `batch_size` is handed to the mailbox
    /// immediately. With `batch_size = 1` every envelope flushes as it is
    /// buffered, reproducing the unbatched engine exactly.
    fn deliver(&mut self, out: &mut Outputs) {
        for (port, tuple) in out.drain() {
            match self.routes.get_mut(port) {
                Some(route) => {
                    let dest = route.pick(&tuple, &mut self.rng).0;
                    self.out_bufs[dest].push(Envelope::Data(tuple));
                    self.buffered += 1;
                    if self.out_bufs[dest].len() >= self.batch_size {
                        self.flush_dest(dest);
                    }
                }
                None => {
                    // Sink port: the emission is the actor's departure —
                    // and, with telemetry on, the end of the tuple's
                    // end-to-end latency span. Never coalesced: there is
                    // no mailbox hop to amortize.
                    let now = self.now_ns();
                    if let Some(hist) = &self.latency {
                        if let Some(lat) = tuple.latency_ns(now) {
                            hist.record(lat);
                        }
                    }
                    self.metrics.record_out(now);
                }
            }
        }
    }

    /// Hands one destination's coalesced envelopes to its mailbox in a
    /// single batched send, with per-envelope accounting: delivered
    /// envelopes count as departures, undelivered ones dead-letter
    /// individually (partial delivery stops at the first timed-out slot).
    fn flush_dest(&mut self, dest: usize) {
        use std::sync::atomic::Ordering;
        let mut buf = std::mem::take(&mut self.out_bufs[dest]);
        if buf.is_empty() {
            self.out_bufs[dest] = buf;
            return;
        }
        self.buffered -= buf.len();
        let sender = self.senders[dest]
            .as_ref()
            .expect("validated destination has a mailbox");
        let outcome = sender.send_batch(&mut buf, self.send_timeout);
        if outcome.blocked > Duration::ZERO {
            let ns = outcome.blocked.as_nanos() as u64;
            self.metrics.blocked_ns.fetch_add(ns, Ordering::Relaxed);
            self.trace_event(TraceEventKind::Blocked { ns });
        }
        if outcome.delivered > 0 {
            let now = self.now_ns();
            for _ in 0..outcome.delivered {
                self.metrics.record_out(now);
            }
        }
        if let Some(failure) = outcome.failure {
            let reason = match failure {
                BatchFailure::TimedOut => DeadLetterReason::SendTimeout,
                BatchFailure::Disconnected => DeadLetterReason::Disconnected,
            };
            for env in buf.drain(..) {
                if let Envelope::Data(tuple) = env {
                    self.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                    self.dead_letter(Some(ActorId(dest)), reason, &tuple);
                }
            }
        }
        buf.clear();
        // Hand the (empty) buffer back so its allocation is reused.
        self.out_bufs[dest] = buf;
    }

    /// Drains every coalescing buffer. Called after each processed input
    /// batch, before EOS propagation, and on supervision events, so
    /// nothing ever sits buffered across a restart, a backoff sleep, or
    /// shutdown.
    fn flush_all(&mut self) {
        if self.buffered > 0 {
            for dest in 0..self.out_bufs.len() {
                if !self.out_bufs[dest].is_empty() {
                    self.flush_dest(dest);
                }
            }
        }
        if self.batch_size > 1 {
            // Batch-1 never consults the deadline; skip the clock read.
            self.last_flush = Instant::now();
        }
    }

    /// Deadline policy for paced sources: flush unfilled batches before
    /// sleeping until `wake_at` if they would otherwise be held past
    /// `flush_interval`, so a slow stream never stalls behind coalescing.
    fn flush_before_sleep(&mut self, wake_at: Instant) {
        if self.batch_size > 1
            && self.buffered > 0
            && wake_at.saturating_duration_since(self.last_flush) >= self.flush_interval
        {
            self.flush_all();
        }
    }

    /// Sends one EOS to every possible destination; EOS is never dropped.
    fn propagate_eos(&mut self) {
        // Coalesced data must drain before EOS: a worker counts EOS
        // markers to terminate, and FIFO order is only meaningful if every
        // buffered envelope precedes the marker in the mailbox.
        self.flush_all();
        for &d in &self.eos_targets {
            if let Some(sender) = &self.senders[d] {
                // EOS must never be dropped: retry until delivered (or the
                // receiver is gone).
                while sender.send(Envelope::Eos, Duration::from_secs(3600)) == SendOutcome::TimedOut
                {
                }
            }
        }
        // Release all senders so downstream disconnect detection works.
        for s in self.senders.iter_mut() {
            *s = None;
        }
    }
}

/// Sleeps until `target`. Coarse sleep overshoot is tolerated: the source
/// keeps an *absolute* emission schedule and catches up after oversleeping,
/// so the average rate stays at the nominal value without busy-waiting.
fn pace_until(target: Instant) {
    let now = Instant::now();
    if now < target {
        thread::sleep(target - now);
    }
}

fn run_source(cfg: SourceConfig, mut ctx: DeliveryCtx) {
    ctx.trace_event(TraceEventKind::ActorStarted);
    let mut rng = XorShift64::new(cfg.seed);
    let mut out = Outputs::new();
    let period = if cfg.rate.is_finite() {
        Some(Duration::from_secs_f64(1.0 / cfg.rate))
    } else {
        None
    };
    let mut next_t = Instant::now();
    for seq in 0..cfg.count {
        if let Some(p) = period {
            ctx.flush_before_sleep(next_t);
            pace_until(next_t);
            next_t += p;
            let now = Instant::now();
            if now > next_t + Duration::from_millis(50) {
                // Far behind schedule: that is backpressure, not timer
                // jitter — resume the nominal pace from now rather than
                // bursting to catch up.
                next_t = now;
            }
        }
        let key = match &cfg.keys {
            Some(dist) => dist.sample(rng.next_f64()) as u64,
            None => seq,
        };
        let mut values = [0.0f64; TUPLE_ARITY];
        for v in values.iter_mut() {
            *v = rng.next_f64();
        }
        let tuple = Tuple::new(key, seq, values);
        let tuple = if ctx.stamp {
            tuple.stamped(ctx.now_ns())
        } else {
            tuple
        };
        out.emit_default(tuple);
        ctx.deliver(&mut out);
    }
    ctx.propagate_eos();
    ctx.trace_event(TraceEventKind::ActorFinished);
}

thread_local! {
    /// While true, the process panic hook stays quiet on this thread —
    /// supervised operator panics are expected and reported through the
    /// run report, not stderr.
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that defers to the previous
/// hook except on threads currently running a supervised operator call.
fn install_panic_silencer() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Runs `f` with panics caught and the panic hook silenced, charging the
/// elapsed time to the actor's busy counter either way.
fn guarded_call(metrics: &ActorMetrics, f: impl FnOnce()) -> Result<(), Box<dyn Any + Send>> {
    use std::sync::atomic::Ordering;
    let t0 = Instant::now();
    SILENCE_PANICS.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SILENCE_PANICS.with(|s| s.set(false));
    metrics
        .busy_ns
        .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    result
}

/// The supervised worker loop: every operator invocation runs under
/// `catch_unwind`; panics are handled per the actor's [`SupervisorSpec`].
fn run_worker(
    mut op: Box<dyn crate::StreamOperator>,
    factory: Option<OperatorFactory>,
    supervision: SupervisorSpec,
    rx: crate::mailbox::Receiver,
    mut eos_left: usize,
    mut ctx: DeliveryCtx,
) {
    use std::sync::atomic::Ordering;
    ctx.trace_event(TraceEventKind::ActorStarted);
    let mut out = Outputs::new();
    // Degraded mode: the operator is gone; input is forwarded or dropped.
    let mut stopped = false;
    let mut restarts_done: u32 = 0;
    // Batched intake: block for the first envelope, then drain whatever
    // else is already queued (up to `batch_size`) under the same lock. With
    // `batch_size = 1` this is operation-for-operation the plain `recv`
    // loop.
    let intake = ctx.batch_size;
    let mut inbox: Vec<Envelope> = Vec::with_capacity(intake);
    'recv: loop {
        match rx.recv_drain(&mut inbox, intake) {
            RecvBatch::Received(_) => {
                let mut finished = false;
                for env in inbox.drain(..) {
                    match env {
                        Envelope::Data(item) => {
                            ctx.metrics.items_in.fetch_add(1, Ordering::Relaxed);
                            if stopped {
                                match supervision.degrade {
                                    DegradePolicy::Forward => {
                                        out.emit_default(item);
                                        ctx.deliver(&mut out);
                                    }
                                    DegradePolicy::Drop => {
                                        ctx.dead_letter(
                                            None,
                                            DeadLetterReason::StoppedActor,
                                            &item,
                                        );
                                    }
                                }
                                continue;
                            }
                            if guarded_call(&ctx.metrics, || op.process(item, &mut out)).is_ok() {
                                out.inherit_stamp(item.src_ns);
                                ctx.deliver(&mut out);
                            } else {
                                // The poisoned invocation may have emitted
                                // partial output before dying; discard it —
                                // the item either fully processes or
                                // dead-letters. Output coalesced from
                                // *earlier* items is sound: flush it before
                                // any backoff sleep so downstream is not
                                // starved while this actor recovers.
                                out.clear();
                                ctx.flush_all();
                                ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
                                ctx.trace_event(TraceEventKind::OperatorPanicked);
                                ctx.dead_letter(None, DeadLetterReason::OperatorPanic, &item);
                                match &supervision.policy {
                                    SupervisionPolicy::Resume => {}
                                    SupervisionPolicy::Restart(policy) => {
                                        if restarts_done < policy.max_restarts {
                                            restarts_done += 1;
                                            let delay =
                                                policy.backoff.delay(restarts_done, &mut ctx.rng);
                                            if !delay.is_zero() {
                                                thread::sleep(delay);
                                                ctx.metrics.backoff_ns.fetch_add(
                                                    delay.as_nanos() as u64,
                                                    Ordering::Relaxed,
                                                );
                                                ctx.trace_event(TraceEventKind::Backoff {
                                                    ns: delay.as_nanos() as u64,
                                                });
                                            }
                                            match &factory {
                                                Some(f) => op = f.build(),
                                                None => op.reset(),
                                            }
                                            ctx.metrics.restarts.fetch_add(1, Ordering::Relaxed);
                                            ctx.trace_event(TraceEventKind::OperatorRestarted);
                                        } else {
                                            stopped = true;
                                            ctx.trace_event(TraceEventKind::ActorStopped);
                                        }
                                    }
                                    SupervisionPolicy::Stop => {
                                        stopped = true;
                                        ctx.trace_event(TraceEventKind::ActorStopped);
                                    }
                                }
                            }
                        }
                        Envelope::Eos => {
                            eos_left = eos_left.saturating_sub(1);
                            if eos_left == 0 {
                                // FIFO per mailbox and EOS-last per
                                // upstream guarantee no data follows the
                                // final marker.
                                finished = true;
                                break;
                            }
                        }
                    }
                }
                // Coalesced output never outlives the input batch that
                // produced it: flush before blocking on the next intake so
                // batching adds no cross-batch latency.
                ctx.flush_all();
                if finished {
                    break 'recv;
                }
            }
            RecvBatch::Disconnected => break 'recv,
        }
    }
    if !stopped {
        if guarded_call(&ctx.metrics, || op.flush(&mut out)).is_ok() {
            ctx.deliver(&mut out);
        } else {
            out.clear();
            ctx.metrics.panics.fetch_add(1, Ordering::Relaxed);
            ctx.trace_event(TraceEventKind::OperatorPanicked);
        }
    }
    ctx.propagate_eos();
    ctx.trace_event(TraceEventKind::ActorFinished);
}

/// Executes the actor graph to completion and reports measured metrics.
///
/// Every actor runs on a dedicated thread (the §5.1 configuration: "each
/// actor is associated with a dedicated thread"). The run ends when all
/// sources have produced their configured item counts and the end-of-stream
/// markers have drained through the graph.
///
/// Worker actors are supervised: a panicking operator is caught and
/// handled per the actor's [`SupervisorSpec`] (resume, restart with
/// backoff, or stop into degraded mode), and every undelivered item is
/// recorded in the report's [`DeadLetterLog`]. `run` itself never panics
/// on operator failure.
///
/// # Errors
///
/// Returns an [`EngineError`] if the graph fails validation, or
/// [`EngineError::ActorFailed`] if an actor thread dies in a way
/// supervision could not contain. A successfully validated graph always
/// terminates: it is acyclic, and EOS markers propagate through every
/// mailbox.
pub fn run(graph: ActorGraph, config: &EngineConfig) -> Result<RunReport, EngineError> {
    run_with(graph, config, None).map(|(report, _)| report)
}

/// Like [`run`], but with the live telemetry layer enabled: sources stamp
/// every tuple, sinks aggregate end-to-end latency, lifecycle events are
/// traced, and a background sampler thread takes a [`crate::TelemetrySnapshot`]
/// every `telemetry.interval` (plus one final snapshot at end of run).
///
/// With the `telemetry` cargo feature disabled only the final snapshot is
/// taken (no sampler thread is spawned).
///
/// # Errors
///
/// Fails exactly as [`run`] does.
pub fn run_with_telemetry(
    graph: ActorGraph,
    config: &EngineConfig,
    telemetry: &TelemetryConfig,
) -> Result<(RunReport, TelemetryReport), EngineError> {
    run_with(graph, config, Some(telemetry))
        .map(|(report, tel)| (report, tel.expect("telemetry was requested")))
}

fn run_with(
    graph: ActorGraph,
    config: &EngineConfig,
    telemetry: Option<&TelemetryConfig>,
) -> Result<(RunReport, Option<TelemetryReport>), EngineError> {
    let in_degrees = graph.in_degrees();
    let actors = graph.into_actors();
    validate(&actors)?;
    install_panic_silencer();
    let n = actors.len();

    let metrics: Vec<Arc<ActorMetrics>> = (0..n).map(|_| Arc::new(ActorMetrics::new())).collect();
    let dead_letters = Arc::new(Mutex::new(DeadLetterLog::with_capacity(
        config.dead_letter_capacity,
    )));

    // One mailbox per non-source actor.
    let mut senders: Vec<Option<Sender>> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<crate::mailbox::Receiver>> = Vec::with_capacity(n);
    for spec in &actors {
        if spec.behavior.is_source() {
            senders.push(None);
            receivers.push(None);
        } else {
            let cap = spec.mailbox_capacity.unwrap_or(config.mailbox_capacity);
            let (tx, rx) = channel(cap);
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }
    }

    // Depth probes observe queue depths without counting as producers, so
    // they never delay disconnect detection.
    let probes: Arc<Vec<Option<DepthProbe>>> = Arc::new(
        senders
            .iter()
            .map(|s| s.as_ref().map(Sender::depth_probe))
            .collect(),
    );
    let hub: Option<Arc<TelemetryHub>> = telemetry.map(|tcfg| {
        let hub_actors = actors
            .iter()
            .map(|spec| HubActor {
                name: spec.name.clone(),
                queue_capacity: if spec.behavior.is_source() {
                    None
                } else {
                    Some(spec.mailbox_capacity.unwrap_or(config.mailbox_capacity))
                },
                // Sink actors (no outgoing routes) terminate latency spans.
                latency: if !spec.behavior.is_source() && spec.routes.is_empty() {
                    Some(Arc::new(LatencyHistogram::new()))
                } else {
                    None
                },
            })
            .collect();
        Arc::new(TelemetryHub::new(hub_actors, tcfg))
    });

    let started_at = Instant::now();
    let mut handles = Vec::with_capacity(n);
    for (i, spec) in actors.into_iter().enumerate() {
        let eos_targets: Vec<usize> = {
            let mut d: Vec<usize> = spec
                .routes
                .iter()
                .flat_map(|r| r.destinations_iter())
                .map(|d| d.0)
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        };
        // Give this actor clones of exactly the senders it can reach.
        let my_senders: Vec<Option<Sender>> = (0..n)
            .map(|j| {
                if eos_targets.contains(&j) {
                    senders[j].clone()
                } else {
                    None
                }
            })
            .collect();
        let ctx = DeliveryCtx {
            id: ActorId(i),
            senders: my_senders,
            routes: spec.routes.into_iter().map(RouteState::new).collect(),
            eos_targets,
            rng: XorShift64::new(config.seed.wrapping_add(i as u64)),
            metrics: Arc::clone(&metrics[i]),
            started_at,
            send_timeout: config.send_timeout,
            dead_letters: Arc::clone(&dead_letters),
            latency: hub.as_ref().and_then(|h| h.latency_of(i)),
            trace: hub.as_ref().map(|h| Arc::clone(&h.trace)),
            stamp: hub.is_some(),
            batch_size: config.batch_size.max(1),
            flush_interval: config.flush_interval,
            out_bufs: vec![Vec::new(); n],
            buffered: 0,
            last_flush: started_at,
        };
        let rx = receivers[i].take();
        let eos_left = in_degrees[i];
        let name = spec.name.clone();
        let handle = thread::Builder::new()
            .name(format!("ss-{i}-{name}"))
            .spawn(move || match spec.behavior {
                Behavior::Source(cfg) => run_source(cfg, ctx),
                Behavior::Worker(op) => {
                    let rx = rx.expect("worker has a mailbox");
                    run_worker(op, spec.factory, spec.supervision, rx, eos_left, ctx)
                }
            })
            .expect("spawn actor thread");
        handles.push((i, spec.name, handle));
    }
    // Drop the engine's own sender handles so disconnect detection can kick
    // in for actors with no upstream.
    drop(senders);

    // Background sampler: wakes every `interval`, snapshots all counters
    // and queue depths into the hub. Spawned only when telemetry was
    // requested (and the `telemetry` feature is on), so the plain [`run`]
    // path pays nothing.
    #[cfg(feature = "telemetry")]
    let sampler = telemetry.and_then(|tcfg| {
        hub.as_ref().map(|hub| {
            let hub = Arc::clone(hub);
            let metrics = metrics.clone();
            let probes = Arc::clone(&probes);
            let interval = tcfg.interval.max(Duration::from_micros(100));
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop_flag = Arc::clone(&stop);
            let handle = thread::Builder::new()
                .name("ss-telemetry".into())
                .spawn(move || {
                    use std::sync::atomic::Ordering;
                    let mut next = started_at + interval;
                    while !stop_flag.load(Ordering::Acquire) {
                        let now = Instant::now();
                        if now < next {
                            // Re-check stop and the deadline after every
                            // wakeup: park_timeout may return spuriously.
                            thread::park_timeout(next - now);
                            continue;
                        }
                        next += interval;
                        let t_ns = started_at.elapsed().as_nanos() as u64;
                        hub.sample(t_ns, &gather_raw(&metrics, &probes));
                    }
                })
                .expect("spawn telemetry sampler thread");
            (stop, handle)
        })
    });

    let mut names = vec![String::new(); n];
    let mut failure: Option<EngineError> = None;
    for (i, name, handle) in handles {
        // Join every thread before returning, even after a failure, so no
        // actor outlives `run`.
        if let Err(payload) = handle.join() {
            if failure.is_none() {
                failure = Some(EngineError::ActorFailed {
                    actor: ActorId(i),
                    reason: panic_message(payload.as_ref()),
                });
            }
        }
        names[i] = name;
    }
    let wall = started_at.elapsed();

    // Stop the sampler before the final end-of-run snapshot so snapshot
    // ticks stay strictly ordered.
    #[cfg(feature = "telemetry")]
    if let Some((stop, handle)) = sampler {
        stop.store(true, std::sync::atomic::Ordering::Release);
        handle.thread().unpark();
        let _ = handle.join();
    }
    let telemetry_report = hub.map(|hub| {
        let t_ns = started_at.elapsed().as_nanos() as u64;
        hub.sample(t_ns, &gather_raw(&metrics, &probes));
        Arc::try_unwrap(hub)
            .ok()
            .expect("every telemetry holder has been joined")
            .into_report()
    });

    if let Some(err) = failure {
        return Err(err);
    }

    let reports = (0..n)
        .map(|i| metrics[i].snapshot(&names[i], ActorId(i)))
        .collect();
    let dead_letters = Arc::try_unwrap(dead_letters)
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .unwrap_or_else(|arc| arc.lock().unwrap_or_else(PoisonError::into_inner).clone());
    Ok((
        RunReport {
            actors: reports,
            wall,
            started_at,
            dead_letters,
        },
        telemetry_report,
    ))
}

/// Loads every actor's raw cumulative counters plus current queue depth.
fn gather_raw(metrics: &[Arc<ActorMetrics>], probes: &[Option<DepthProbe>]) -> Vec<RawCounters> {
    metrics
        .iter()
        .zip(probes)
        .map(|(m, p)| RawCounters::from_metrics(m, p.as_ref().map(DepthProbe::len)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{FnOperator, PassThrough, Spin};
    use crate::{Behavior, Route, SourceConfig};

    fn fast_cfg() -> EngineConfig {
        EngineConfig {
            mailbox_capacity: 64,
            send_timeout: Duration::from_secs(5),
            seed: 1,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn source_to_sink_delivers_all_items() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 500)),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 500);
        assert_eq!(r.actor(s).items_out, 500);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn pipeline_preserves_order_and_count() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 200)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(b).items_in, 200);
        assert_eq!(r.actor(a).items_out, 200);
    }

    #[test]
    fn paced_source_rate_is_respected() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(2000.0, 600)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        let rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (rate - 2000.0).abs() / 2000.0 < 0.15,
            "measured source rate {rate}"
        );
    }

    #[test]
    fn backpressure_throttles_source_to_bottleneck_rate() {
        // Source at ~5000/s into a worker that can only do ~1000/s
        // (1 ms busy per item): measured source rate must collapse to the
        // bottleneck's service rate — the BAS phenomenon of §2.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5000.0, 900)));
        let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 1_000_000)));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 16);
        let r = run(g, &fast_cfg()).unwrap();
        let src_rate = r.actor(s).departure_rate().unwrap();
        assert!(
            (src_rate - 1000.0).abs() / 1000.0 < 0.15,
            "source rate {src_rate} should be backpressured to ~1000/s"
        );
        assert!(r.actor(s).blocked > Duration::ZERO);
    }

    #[test]
    fn round_robin_splits_evenly() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 300)),
        );
        let a = g.add_actor("r0", Behavior::worker(PassThrough));
        let b = g.add_actor("r1", Behavior::worker(PassThrough));
        let c = g.add_actor("r2", Behavior::worker(PassThrough));
        g.connect(s, Route::RoundRobin(vec![a, b, c]));
        let r = run(g, &fast_cfg()).unwrap();
        for id in [a, b, c] {
            assert_eq!(r.actor(id).items_in, 100);
        }
    }

    #[test]
    fn probabilistic_route_approximates_distribution() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10_000)),
        );
        let a = g.add_actor("p3", Behavior::worker(PassThrough));
        let b = g.add_actor("p7", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.3), (b, 0.7)],
            },
        );
        let r = run(g, &fast_cfg()).unwrap();
        let fa = r.actor(a).items_in as f64 / 10_000.0;
        assert!((fa - 0.3).abs() < 0.03, "fraction {fa}");
        assert_eq!(r.actor(a).items_in + r.actor(b).items_in, 10_000);
    }

    #[test]
    fn key_map_routes_by_key() {
        use spinstreams_core::KeyDistribution;
        let mut g = ActorGraph::new();
        let cfg = SourceConfig::new(f64::INFINITY, 1000).with_keys(KeyDistribution::uniform(4));
        let s = g.add_actor("src", Behavior::Source(cfg));
        let a = g.add_actor("r0", Behavior::worker(PassThrough));
        let b = g.add_actor("r1", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::KeyMap {
                key_map: vec![0, 1, 0, 1],
                destinations: vec![a, b],
            },
        );
        let r = run(g, &fast_cfg()).unwrap();
        let total = r.actor(a).items_in + r.actor(b).items_in;
        assert_eq!(total, 1000);
        // Uniform keys, 2+2 split: roughly half each.
        let fa = r.actor(a).items_in as f64 / 1000.0;
        assert!((fa - 0.5).abs() < 0.1, "fraction {fa}");
    }

    #[test]
    fn eos_waits_for_all_upstreams() {
        // Two branches converge on one sink; the sink must see items from
        // both before terminating.
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 400)),
        );
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(Spin::new("b", 50_000)));
        let k = g.add_actor("k", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.5), (b, 0.5)],
            },
        );
        g.connect(a, Route::Unicast(k));
        g.connect(b, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 400);
    }

    #[test]
    fn flush_emissions_are_delivered_after_eos() {
        struct HoldAll {
            buf: Vec<Tuple>,
        }
        impl crate::StreamOperator for HoldAll {
            fn process(&mut self, item: Tuple, _out: &mut Outputs) {
                self.buf.push(item);
            }
            fn flush(&mut self, out: &mut Outputs) {
                for t in self.buf.drain(..) {
                    out.emit_default(t);
                }
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 50)),
        );
        let h = g.add_actor("hold", Behavior::Worker(Box::new(HoldAll { buf: vec![] })));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(h));
        g.connect(h, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 50);
    }

    #[test]
    fn sink_emissions_counted_without_routes() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 123)),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        // PassThrough emits on port 0 which has no route on the sink.
        assert_eq!(r.actor(k).items_out, 123);
        assert!(r.actor(k).departure_rate().is_some());
    }

    #[test]
    fn send_timeout_drops_items_when_consumer_stalls() {
        // A consumer much slower than the timeout: with a tiny timeout the
        // source drops items instead of waiting (load-shedding mode).
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 64)),
        );
        let w = g.add_actor("slow", Behavior::worker(Spin::new("slow", 3_000_000)));
        g.connect(s, Route::Unicast(w));
        g.set_mailbox_capacity(w, 4);
        let cfg = EngineConfig {
            send_timeout: Duration::from_millis(1),
            ..fast_cfg()
        };
        let r = run(g, &cfg).unwrap();
        assert!(r.actor(s).dropped > 0, "expected drops under 1 ms timeout");
        assert!(r.actor(w).items_in < 64);
        // Every drop is structurally accounted as a dead letter.
        assert_eq!(r.total_dead_letters(), r.actor(s).dropped);
        assert_eq!(r.dead_letters.total(), r.actor(s).dropped);
        let first = r.dead_letters.entries()[0];
        assert_eq!(first.source, s);
        assert_eq!(first.destination, Some(w));
        assert_eq!(first.reason, DeadLetterReason::SendTimeout);
    }

    #[test]
    fn validation_errors() {
        // No actors.
        assert_eq!(
            run(ActorGraph::new(), &fast_cfg()).unwrap_err(),
            EngineError::NoActors
        );
        // No source.
        let mut g = ActorGraph::new();
        g.add_actor("w", Behavior::worker(PassThrough));
        assert_eq!(run(g, &fast_cfg()).unwrap_err(), EngineError::NoSource);
        // Unknown destination.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        g.connect(s, Route::Unicast(ActorId(9)));
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::UnknownDestination { .. }
        ));
        // Route to source.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let s2 = g.add_actor("src2", Behavior::Source(SourceConfig::new(1.0, 1)));
        g.connect(s, Route::Unicast(s2));
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::RouteToSource { .. }
        ));
        // Bad probability mass.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let w = g.add_actor("w", Behavior::worker(PassThrough));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(w, 0.4)],
            },
        );
        assert!(matches!(
            run(g, &fast_cfg()).unwrap_err(),
            EngineError::InvalidRoute { .. }
        ));
        // Cycle between two workers.
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(1.0, 1)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(a));
        g.connect(a, Route::Unicast(b));
        g.connect(b, Route::Unicast(a));
        assert_eq!(run(g, &fast_cfg()).unwrap_err(), EngineError::Cyclic);
    }

    /// Panics on items whose `seq` is a multiple of `every` (except 0 when
    /// `skip_zero`); passes everything else through.
    struct PanicEvery {
        every: u64,
    }
    impl crate::StreamOperator for PanicEvery {
        fn process(&mut self, item: Tuple, out: &mut Outputs) {
            if item.seq.is_multiple_of(self.every) {
                panic!("injected: seq {}", item.seq);
            }
            out.emit_default(item);
        }
        fn name(&self) -> &str {
            "panic-every"
        }
    }

    #[test]
    fn resume_drops_only_poisoned_items() {
        use crate::supervision::SupervisorSpec;
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 100)),
        );
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 10 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::resume());
        let r = run(g, &fast_cfg()).unwrap();
        // seq 0, 10, ..., 90 panic: 10 poisoned items, 90 delivered.
        assert_eq!(r.actor(w).items_in, 100);
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 0);
        assert_eq!(r.actor(k).items_in, 90);
        assert_eq!(r.dead_letters.total(), 10);
        assert_eq!(
            r.dead_letters.by_reason(DeadLetterReason::OperatorPanic),
            10
        );
        assert!(r.dead_letters.entries().iter().all(|l| l.source == w));
    }

    #[test]
    fn restart_reinstantiates_operator_via_factory() {
        use crate::supervision::{Backoff, OperatorFactory, SupervisorSpec};
        // Dies on its 3rd item, every life: without restart (state reset)
        // it would stop after one failure.
        struct DiesAtThree {
            seen: u64,
        }
        impl crate::StreamOperator for DiesAtThree {
            fn process(&mut self, item: Tuple, out: &mut Outputs) {
                self.seen += 1;
                if self.seen == 3 {
                    panic!("third item");
                }
                out.emit_default(item);
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 30)),
        );
        let w = g.add_actor(
            "fragile",
            Behavior::Worker(Box::new(DiesAtThree { seen: 0 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(100, Backoff::none()));
        g.set_restart_factory(
            w,
            OperatorFactory::new(|| Box::new(DiesAtThree { seen: 0 })),
        );
        let r = run(g, &fast_cfg()).unwrap();
        // Every life processes 2 items then dies on the 3rd: 30 items =
        // 10 lives, 10 panics, 10 restarts, 20 delivered.
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 10);
        assert_eq!(r.actor(k).items_in, 20);
        assert_eq!(r.dead_letters.total(), 10);
    }

    #[test]
    fn restart_without_factory_resets_operator() {
        use crate::supervision::{Backoff, SupervisorSpec};
        struct DiesAtThree {
            seen: u64,
        }
        impl crate::StreamOperator for DiesAtThree {
            fn process(&mut self, item: Tuple, out: &mut Outputs) {
                self.seen += 1;
                if self.seen == 3 {
                    panic!("third item");
                }
                out.emit_default(item);
            }
            fn reset(&mut self) {
                self.seen = 0;
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 30)),
        );
        let w = g.add_actor(
            "fragile",
            Behavior::Worker(Box::new(DiesAtThree { seen: 0 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(100, Backoff::none()));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 10);
        assert_eq!(r.actor(w).restarts, 10);
        assert_eq!(r.actor(k).items_in, 20);
    }

    #[test]
    fn restart_backoff_time_is_recorded() {
        use crate::supervision::{Backoff, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 20)),
        );
        let w = g.add_actor("flaky", Behavior::Worker(Box::new(PanicEvery { every: 5 })));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(
            w,
            SupervisorSpec::restart(
                100,
                Backoff {
                    initial: Duration::from_millis(2),
                    max: Duration::from_millis(2),
                    multiplier: 1.0,
                    jitter: 0.0,
                },
            ),
        );
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).restarts, 4);
        assert!(
            r.actor(w).backoff >= Duration::from_millis(8),
            "backoff {:?}",
            r.actor(w).backoff
        );
    }

    #[test]
    fn restart_budget_exhaustion_stops_the_actor() {
        use crate::supervision::{Backoff, SupervisorSpec};
        struct AlwaysPanics;
        impl crate::StreamOperator for AlwaysPanics {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("always");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 50)),
        );
        let w = g.add_actor("doomed", Behavior::Worker(Box::new(AlwaysPanics)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(w, SupervisorSpec::restart(2, Backoff::none()));
        let r = run(g, &fast_cfg()).unwrap();
        // Items 1-3 panic (2 restarts used, 3rd failure exhausts the
        // budget); items 4-50 arrive at a stopped actor and drop.
        assert_eq!(r.actor(w).panics, 3);
        assert_eq!(r.actor(w).restarts, 2);
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.dead_letters.total(), 50);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::OperatorPanic), 3);
        assert_eq!(r.dead_letters.by_reason(DeadLetterReason::StoppedActor), 47);
    }

    #[test]
    fn stopped_actor_can_degrade_to_forwarding() {
        use crate::supervision::{DegradePolicy, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 40)),
        );
        // Panics on seq 0, i.e. immediately; Stop + Forward turns the
        // actor into an identity for the remaining 39 items.
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 64 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        g.set_supervision(
            w,
            SupervisorSpec::default().with_degrade(DegradePolicy::Forward),
        );
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 1);
        assert_eq!(r.actor(k).items_in, 39);
        assert_eq!(r.dead_letters.total(), 1);
    }

    #[test]
    fn uncontainable_failure_reports_actor_failed() {
        use crate::supervision::{Backoff, SupervisorSpec};
        // `reset` itself panics: supervision cannot contain that, but
        // `run` must return an error instead of panicking the caller.
        struct BrokenReset;
        impl crate::StreamOperator for BrokenReset {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("process");
            }
            fn reset(&mut self) {
                panic!("reset is broken too");
            }
        }
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 10)),
        );
        let w = g.add_actor("broken", Behavior::Worker(Box::new(BrokenReset)));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(w, SupervisorSpec::restart(10, Backoff::none()));
        let err = run(g, &fast_cfg()).unwrap_err();
        match err {
            EngineError::ActorFailed { actor, reason } => {
                assert_eq!(actor, w);
                assert!(reason.contains("reset is broken"), "reason: {reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn default_policy_stops_and_drops_silently_but_accountably() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 25)),
        );
        let w = g.add_actor(
            "flaky",
            Behavior::Worker(Box::new(PanicEvery { every: 64 })),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        // No set_supervision call: default is Stop + Drop.
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(w).panics, 1);
        assert_eq!(r.actor(k).items_in, 0);
        assert_eq!(r.dead_letters.total(), 25);
        assert_eq!(r.total_dead_letters(), 25);
    }

    #[test]
    fn telemetry_run_samples_latency_and_traces_lifecycle() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(5_000.0, 200)));
        let w = g.add_actor("work", Behavior::worker(Spin::new("w", 50_000)));
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(w));
        g.connect(w, Route::Unicast(k));
        let tcfg = TelemetryConfig::default().with_interval(Duration::from_millis(5));
        let (report, tel) = run_with_telemetry(g, &fast_cfg(), &tcfg).unwrap();
        assert_eq!(report.actor(k).items_in, 200);

        // At minimum the end-of-run snapshot exists; with the sampler
        // feature on, a ~40 ms paced run at a 5 ms interval yields several.
        assert!(!tel.snapshots.is_empty());
        #[cfg(feature = "telemetry")]
        assert!(tel.snapshots.len() >= 2, "got {}", tel.snapshots.len());
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.actors.len(), 3);
        assert_eq!(last.actors[k.0].items_in, 200);
        assert_eq!(
            last.actors[s.0].queue_depth, None,
            "sources have no mailbox"
        );
        assert_eq!(last.actors[w.0].queue_capacity, Some(64));

        // Every tuple's end-to-end latency landed in the sink histogram.
        assert_eq!(last.latencies.len(), 1);
        assert_eq!(last.latencies[0].actor, k);
        assert_eq!(last.latencies[0].latency.count, 200);
        // The Spin stage costs 50 µs alone, so the p50 must exceed that.
        assert!(
            last.latencies[0].latency.p50_ns >= 50_000,
            "p50 {}",
            last.latencies[0].latency.p50_ns
        );

        // Lifecycle trace: every actor started and finished.
        let starts = tel
            .trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::ActorStarted)
            .count();
        let finishes = tel
            .trace
            .iter()
            .filter(|e| e.kind == TraceEventKind::ActorFinished)
            .count();
        assert_eq!(starts, 3);
        assert_eq!(finishes, 3);
        // Sequence numbers are gap-free and ordered.
        for (i, e) in tel.trace.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // Snapshot ticks are strictly increasing with monotone time.
        for pair in tel.snapshots.windows(2) {
            assert_eq!(pair[1].tick, pair[0].tick + 1);
            assert!(pair[1].t_ns >= pair[0].t_ns);
        }
    }

    #[test]
    fn telemetry_traces_panics_restarts_and_stops() {
        use crate::supervision::{Backoff, SupervisorSpec};
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 20)),
        );
        let w = g.add_actor("flaky", Behavior::Worker(Box::new(PanicEvery { every: 5 })));
        g.connect(s, Route::Unicast(w));
        g.set_supervision(w, SupervisorSpec::restart(2, Backoff::none()));
        let (report, tel) =
            run_with_telemetry(g, &fast_cfg(), &TelemetryConfig::default()).unwrap();
        // seq 0 and 5 panic and restart; seq 10's panic exhausts the
        // budget (stop); seq 11-19 then arrive at a stopped actor.
        assert_eq!(report.actor(w).panics, 3);
        let count = |k: TraceEventKind| tel.trace.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(TraceEventKind::OperatorPanicked), 3);
        assert_eq!(count(TraceEventKind::OperatorRestarted), 2);
        assert_eq!(count(TraceEventKind::ActorStopped), 1);
        // 3 poisoned items + 9 items dropped at the stopped actor.
        assert_eq!(
            tel.trace
                .iter()
                .filter(|e| matches!(e.kind, TraceEventKind::DeadLetter { .. }))
                .count(),
            12
        );
        // The final snapshot reflects the same counters.
        let last = tel.snapshots.last().unwrap();
        assert_eq!(last.actors[w.0].panics, 3);
        assert_eq!(last.actors[w.0].restarts, 2);
    }

    #[test]
    fn closure_operators_transform_items() {
        let mut g = ActorGraph::new();
        let s = g.add_actor(
            "src",
            Behavior::Source(SourceConfig::new(f64::INFINITY, 100)),
        );
        let double = g.add_actor(
            "double",
            Behavior::Worker(Box::new(FnOperator::new(
                "double",
                |t: Tuple, out: &mut Outputs| {
                    out.emit_default(t);
                    out.emit_default(t);
                },
            ))),
        );
        let k = g.add_actor("sink", Behavior::worker(PassThrough));
        g.connect(s, Route::Unicast(double));
        g.connect(double, Route::Unicast(k));
        let r = run(g, &fast_cfg()).unwrap();
        assert_eq!(r.actor(k).items_in, 200);
    }
}
