//! The operator abstraction executed by actors (the SS2Akka analogue).
//!
//! User logic implements [`StreamOperator::process`], the counterpart of
//! SS2Akka's `operatorFunction()` (§4.2): it consumes one input item and
//! emits zero, one or many output items onto logical *ports*. A port indexes
//! the operator's output edges in the abstract topology; the runtime's
//! routing layer maps ports to destination mailboxes, keeping the business
//! logic independent of how the topology was optimized (fission, fusion).

use crate::checkpoint::StateSnapshot;
use spinstreams_core::Tuple;

/// The default output port for single-output operators.
pub const DEFAULT_PORT: usize = 0;

/// Collector of the items an operator emits while processing one input.
///
/// Reused across invocations to avoid per-item allocation.
#[derive(Debug, Default)]
pub struct Outputs {
    items: Vec<(usize, Tuple)>,
}

impl Outputs {
    /// Creates an empty output buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits `item` on logical output `port`.
    pub fn emit(&mut self, port: usize, item: Tuple) {
        self.items.push((port, item));
    }

    /// Emits `item` on [`DEFAULT_PORT`].
    pub fn emit_default(&mut self, item: Tuple) {
        self.emit(DEFAULT_PORT, item);
    }

    /// The buffered `(port, item)` pairs, in emission order.
    pub fn items(&self) -> &[(usize, Tuple)] {
        &self.items
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Clears the buffer (done by the runtime between invocations).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Drains the buffered items.
    pub fn drain(&mut self) -> impl Iterator<Item = (usize, Tuple)> + '_ {
        self.items.drain(..)
    }

    /// Propagates a source timestamp onto any buffered item the operator
    /// constructed from scratch (i.e. still unstamped). Called by the
    /// executors after each `process` invocation so end-to-end latency
    /// survives operators that build fresh tuples (aggregates,
    /// projections) instead of forwarding copies of their input. A no-op
    /// when the input itself was unstamped (`src_ns == 0`).
    pub fn inherit_stamp(&mut self, src_ns: u64) {
        if src_ns == 0 {
            return;
        }
        for (_, item) in self.items.iter_mut() {
            if item.src_ns == 0 {
                item.src_ns = src_ns;
            }
        }
    }
}

/// A streaming operator: the unit of user logic executed by an actor.
///
/// Implementations may keep internal state (window buffers, aggregates,
/// join state); the runtime guarantees `process` is never invoked
/// concurrently on the same instance, matching Akka's actor execution
/// guarantee (§4.2).
pub trait StreamOperator: Send {
    /// Processes one input item, emitting any number of outputs.
    fn process(&mut self, item: Tuple, out: &mut Outputs);

    /// Called once at end-of-stream, after the last `process`; operators
    /// with buffered state may emit final results. Default: nothing.
    fn flush(&mut self, out: &mut Outputs) {
        let _ = out;
    }

    /// A short human-readable name for diagnostics.
    fn name(&self) -> &str {
        "operator"
    }

    /// Discards internal state, returning the operator to its freshly
    /// constructed condition. Used by the supervisor's `Restart` directive
    /// when no [`crate::OperatorFactory`] was registered for the actor.
    /// Default: nothing (correct for stateless operators).
    fn reset(&mut self) {}

    /// Serializes the operator's state at an epoch barrier. Called by the
    /// checkpoint layer once every in-edge's marker has been aligned; the
    /// `&mut` receiver lets wrappers (e.g. fault injectors) observe the
    /// call, but capturing must not mutate the logical state. Default:
    /// `None` — the stateless encoding, meaning "restore is a no-op, a
    /// fresh instance is equivalent".
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        None
    }

    /// Restores state captured by [`snapshot`](Self::snapshot) into a
    /// fresh (or [`reset`](Self::reset)) instance. Returns `true` if the
    /// snapshot was understood and applied. Default: `false` (stateless
    /// operators have nothing to restore).
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        let _ = snapshot;
        false
    }

    /// Removes the state of the given keys from the operator and returns
    /// it encoded as a snapshot — the drain side of a live key
    /// repartitioning handoff. After the call the operator must behave as
    /// if it had never seen those keys. Default: `None`, meaning the
    /// operator does not support per-key extraction (it is either
    /// stateless, in which case nothing needs to move, or
    /// monolithic-stateful, in which case it must not be key-repartitioned
    /// at all).
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        let _ = keys;
        None
    }

    /// Merges state produced by [`extract_keys`](Self::extract_keys) on
    /// another replica into this operator — the resume side of a handoff.
    /// The injected keys are guaranteed disjoint from the keys this
    /// replica currently owns. Returns `true` if the snapshot was
    /// understood and merged. Default: `false`.
    fn inject_state(&mut self, snapshot: &StateSnapshot) -> bool {
        let _ = snapshot;
        false
    }
}

impl<T: StreamOperator + ?Sized> StreamOperator for Box<T> {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        (**self).process(item, out)
    }
    fn flush(&mut self, out: &mut Outputs) {
        (**self).flush(out)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn snapshot(&mut self) -> Option<StateSnapshot> {
        (**self).snapshot()
    }
    fn restore(&mut self, snapshot: &StateSnapshot) -> bool {
        (**self).restore(snapshot)
    }
    fn extract_keys(&mut self, keys: &[u64]) -> Option<StateSnapshot> {
        (**self).extract_keys(keys)
    }
    fn inject_state(&mut self, snapshot: &StateSnapshot) -> bool {
        (**self).inject_state(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl StreamOperator for Doubler {
        fn process(&mut self, item: Tuple, out: &mut Outputs) {
            out.emit_default(item);
            out.emit(1, item);
        }
        fn name(&self) -> &str {
            "doubler"
        }
    }

    #[test]
    fn outputs_collects_in_order() {
        let mut out = Outputs::new();
        assert!(out.is_empty());
        out.emit(0, Tuple::splat(0, 1, 0.0));
        out.emit(2, Tuple::splat(0, 2, 0.0));
        assert_eq!(out.len(), 2);
        assert_eq!(out.items()[0].0, 0);
        assert_eq!(out.items()[1].0, 2);
        out.clear();
        assert!(out.is_empty());
    }

    #[test]
    fn inherit_stamp_fills_only_unstamped_items() {
        let mut out = Outputs::new();
        out.emit_default(Tuple::default()); // fresh, unstamped
        out.emit_default(Tuple::default().stamped(7)); // forwarded copy
        out.inherit_stamp(42);
        assert_eq!(out.items()[0].1.src_ns, 42);
        assert_eq!(out.items()[1].1.src_ns, 7);
        // Unstamped input: nothing to propagate.
        let mut out = Outputs::new();
        out.emit_default(Tuple::default());
        out.inherit_stamp(0);
        assert_eq!(out.items()[0].1.src_ns, 0);
    }

    #[test]
    fn drain_empties_buffer() {
        let mut out = Outputs::new();
        out.emit_default(Tuple::default());
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(out.is_empty());
    }

    #[test]
    fn boxed_operator_delegates() {
        let mut op: Box<dyn StreamOperator> = Box::new(Doubler);
        let mut out = Outputs::new();
        op.process(Tuple::splat(1, 7, 3.0), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(op.name(), "doubler");
        op.flush(&mut out);
        assert_eq!(out.len(), 2, "default flush emits nothing");
    }
}
