//! # spinstreams-runtime
//!
//! An actor-based streaming runtime — the from-scratch Rust analogue of the
//! Akka substrate the paper evaluates on (§4.2, §5.1).
//!
//! The runtime reproduces exactly the execution semantics SpinStreams' cost
//! models assume:
//!
//! * **Actors with bounded blocking mailboxes.** Each operator (or operator
//!   replica) is executed by a dedicated thread draining a bounded FIFO
//!   [`mailbox`](channel). A send into a full mailbox blocks the sender —
//!   *Blocking After Service* (BAS, §3) — with a configurable timeout after
//!   which the item is dropped, mirroring Akka's `BoundedMailbox` setup of
//!   §5.1.
//! * **Operators decoupled from actors** (the SS2Akka layer, §4.2). User
//!   logic implements [`StreamOperator`]; the runtime decides whether it
//!   runs as a plain actor, as `n` replicas behind *emitter*/*collector*
//!   actors, or fused inside a [`MetaOperator`] executing Algorithm 4.
//! * **Measured steady-state rates.** Every actor records arrival/departure
//!   counts and first/last activity timestamps, from which the engine
//!   derives per-operator measured departure rates and the topology
//!   throughput — the quantities compared against the model in §5.2.
//!
//! # Example
//!
//! ```
//! use spinstreams_runtime::{ActorGraph, Behavior, EngineConfig, Route, SourceConfig};
//! use spinstreams_runtime::operators::PassThrough;
//!
//! // source -> pass-through sink, 1000 items at 10k items/s.
//! let mut g = ActorGraph::new();
//! let src = g.add_actor(
//!     "src",
//!     Behavior::Source(SourceConfig::new(10_000.0, 1_000)),
//! );
//! let sink = g.add_actor("sink", Behavior::worker(PassThrough::default()));
//! g.connect(src, Route::Unicast(sink));
//!
//! let report = spinstreams_runtime::run(g, &EngineConfig::default()).unwrap();
//! assert_eq!(report.actor(sink).items_in, 1_000);
//! ```
//!
//! # Fault tolerance
//!
//! Worker actors are *supervised*, Akka-style. The threaded engine wraps
//! every operator invocation in `catch_unwind`; a panicking operator never
//! takes its actor thread — let alone the process — down. The actor's
//! [`SupervisorSpec`] decides what happens next:
//!
//! * [`SupervisionPolicy::Resume`] — drop the poisoned item, keep state;
//! * [`SupervisionPolicy::Restart`] — re-instantiate the operator (via a
//!   registered [`OperatorFactory`], or [`StreamOperator::reset`]), with a
//!   restart budget and exponential [`Backoff`] with jitter;
//! * [`SupervisionPolicy::Stop`] (the default) — stop the operator and
//!   degrade: forward input as an identity or drop it, per
//!   [`DegradePolicy`].
//!
//! Every item the runtime fails to deliver — send-timeout drops, routes
//! into disconnected actors, items consumed by panics, items arriving at
//! stopped actors — is recorded in the report's [`DeadLetterLog`] with its
//! source, destination and reason, and counted per actor
//! ([`ActorReport::panics`], [`ActorReport::restarts`],
//! [`ActorReport::backoff`], [`ActorReport::dead_letters`]). Chaos
//! experiments drive all of this with the seeded
//! [`operators::FaultInjector`] wrapper.
//!
//! ```
//! use spinstreams_runtime::supervision::SupervisorSpec;
//! use spinstreams_runtime::{ActorGraph, Behavior, EngineConfig, Route, SourceConfig};
//! use spinstreams_runtime::operators::{PassThrough, FaultInjector, FaultConfig};
//!
//! // source -> flaky worker -> sink; the worker panics on ~10% of items.
//! let mut g = ActorGraph::new();
//! let src = g.add_actor("src", Behavior::Source(SourceConfig::new(f64::INFINITY, 500)));
//! let flaky = g.add_actor(
//!     "flaky",
//!     Behavior::Worker(Box::new(FaultInjector::new(
//!         PassThrough,
//!         FaultConfig::panics(0.1, 42),
//!     ))),
//! );
//! let sink = g.add_actor("sink", Behavior::worker(PassThrough));
//! g.connect(src, Route::Unicast(flaky));
//! g.connect(flaky, Route::Unicast(sink));
//! g.set_supervision(flaky, SupervisorSpec::resume());
//!
//! let report = spinstreams_runtime::run(g, &EngineConfig::default()).unwrap();
//! let panics = report.actor(flaky).panics;
//! assert!(panics > 0, "the injector fires with p=0.1 over 500 items");
//! // Poisoned items become dead letters; the rest reach the sink.
//! assert_eq!(report.dead_letters.total(), panics);
//! assert_eq!(report.actor(sink).items_in, 500 - panics);
//! ```

#![warn(missing_docs)]

pub mod affinity;
pub mod checkpoint;
mod engine;
mod fused;
mod graph;
mod mailbox;
mod meta;
mod metrics;
mod operator;
pub mod operators;
mod profiler;
pub mod reconfig;
mod rng;
mod route;
mod sim;
pub mod supervision;
pub mod telemetry;

pub use affinity::PinningConfig;
pub use checkpoint::{CheckpointCoordinator, ReplayBuffer, SnapshotReader, StateSnapshot};
pub use engine::{
    run, run_tenants, run_with_telemetry, EngineConfig, EngineError, ExecutorKind, TenantRun,
    TenantSpec,
};
pub use fused::{FusedChain, Kernel};
pub use graph::{ActorGraph, ActorId, Behavior, SourceConfig};
pub use mailbox::{
    channel, channel_spsc, BatchFailure, BatchOutcome, BatchPool, Envelope, Receiver, RecvBatch,
    RecvResult, SendOutcome, Sender, TryBatch, TryRecvBatch, TrySend,
};
pub use meta::{MetaDest, MetaOperator, MetaRoute};
pub use metrics::{ActorReport, RunReport};
pub use operator::{Outputs, StreamOperator, DEFAULT_PORT};
pub use profiler::{profile_operator, sample_stream, ProfileResult};
pub use reconfig::{KeyHandoff, ReconfigHandle, ReconfigOp};
pub use rng::XorShift64;
pub use route::Route;
pub use sim::{
    execute, execute_with_telemetry, simulate, simulate_with_telemetry, Executor, SimConfig,
};
pub use supervision::{
    Backoff, DeadLetter, DeadLetterLog, DeadLetterReason, DegradePolicy, OperatorFactory,
    RestartPolicy, SupervisionPolicy, SupervisorSpec,
};
pub use telemetry::{
    assemble_spans, LatencyHistogram, LatencySnapshot, SpanHop, SpanPath, TelemetryConfig,
    TelemetryReport, TelemetrySnapshot, TraceEvent, TraceEventKind, TraceLog,
};
