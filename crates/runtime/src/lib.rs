//! # spinstreams-runtime
//!
//! An actor-based streaming runtime — the from-scratch Rust analogue of the
//! Akka substrate the paper evaluates on (§4.2, §5.1).
//!
//! The runtime reproduces exactly the execution semantics SpinStreams' cost
//! models assume:
//!
//! * **Actors with bounded blocking mailboxes.** Each operator (or operator
//!   replica) is executed by a dedicated thread draining a bounded FIFO
//!   [`mailbox`](channel). A send into a full mailbox blocks the sender —
//!   *Blocking After Service* (BAS, §3) — with a configurable timeout after
//!   which the item is dropped, mirroring Akka's `BoundedMailbox` setup of
//!   §5.1.
//! * **Operators decoupled from actors** (the SS2Akka layer, §4.2). User
//!   logic implements [`StreamOperator`]; the runtime decides whether it
//!   runs as a plain actor, as `n` replicas behind *emitter*/*collector*
//!   actors, or fused inside a [`MetaOperator`] executing Algorithm 4.
//! * **Measured steady-state rates.** Every actor records arrival/departure
//!   counts and first/last activity timestamps, from which the engine
//!   derives per-operator measured departure rates and the topology
//!   throughput — the quantities compared against the model in §5.2.
//!
//! # Example
//!
//! ```
//! use spinstreams_runtime::{ActorGraph, Behavior, EngineConfig, Route, SourceConfig};
//! use spinstreams_runtime::operators::PassThrough;
//!
//! // source -> pass-through sink, 1000 items at 10k items/s.
//! let mut g = ActorGraph::new();
//! let src = g.add_actor(
//!     "src",
//!     Behavior::Source(SourceConfig::new(10_000.0, 1_000)),
//! );
//! let sink = g.add_actor("sink", Behavior::worker(PassThrough::default()));
//! g.connect(src, Route::Unicast(sink));
//!
//! let report = spinstreams_runtime::run(g, &EngineConfig::default()).unwrap();
//! assert_eq!(report.actor(sink).items_in, 1_000);
//! ```

#![warn(missing_docs)]

mod engine;
mod graph;
mod sim;
mod mailbox;
mod meta;
mod metrics;
mod operator;
pub mod operators;
mod profiler;
mod rng;
mod route;

pub use engine::{run, EngineConfig, EngineError};
pub use sim::{execute, simulate, Executor, SimConfig};
pub use graph::{ActorGraph, ActorId, Behavior, SourceConfig};
pub use mailbox::{channel, Envelope, RecvResult, SendOutcome, Sender, Receiver};
pub use meta::{MetaDest, MetaOperator, MetaRoute};
pub use metrics::{ActorReport, RunReport};
pub use operator::{Outputs, StreamOperator, DEFAULT_PORT};
pub use profiler::{profile_operator, sample_stream, ProfileResult};
pub use rng::XorShift64;
pub use route::Route;
