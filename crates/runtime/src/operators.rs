//! Built-in utility operators used by the runtime itself.
//!
//! The *real-world* operator library (filters, windowed aggregates, skyline,
//! joins, …) lives in `spinstreams-operators`; here are only the neutral
//! building blocks the runtime needs for emitters, collectors and tests.

use crate::{Outputs, StreamOperator};
use spinstreams_core::Tuple;

/// Forwards every item unchanged on the default port.
///
/// Used as the body of emitter and collector actors (§4.2: "such actors are
/// in general fast as they execute single point-to-point communications").
#[derive(Debug, Default, Clone)]
pub struct PassThrough;

impl StreamOperator for PassThrough {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        "pass-through"
    }
}

/// An operator defined by a closure — handy for tests and examples.
pub struct FnOperator<F> {
    name: String,
    f: F,
}

impl<F> FnOperator<F>
where
    F: FnMut(Tuple, &mut Outputs) + Send,
{
    /// Wraps `f` as an operator.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnOperator {
            name: name.into(),
            f,
        }
    }
}

impl<F> StreamOperator for FnOperator<F>
where
    F: FnMut(Tuple, &mut Outputs) + Send,
{
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        (self.f)(item, out)
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Burns CPU for a calibrated amount of time per item, then forwards it.
///
/// The knob that gives runtime actors a precise, configurable service time
/// without sleeping (a sleeping actor would not model a busy operator).
#[derive(Debug, Clone)]
pub struct Spin {
    name: String,
    work_ns: u64,
}

impl Spin {
    /// An operator spending `work_ns` nanoseconds of CPU per item.
    pub fn new(name: impl Into<String>, work_ns: u64) -> Self {
        Spin {
            name: name.into(),
            work_ns,
        }
    }

    /// The configured busy time per item.
    pub fn work_ns(&self) -> u64 {
        self.work_ns
    }
}

/// Spins the CPU for approximately `ns` nanoseconds.
pub fn busy_spin(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    let target = std::time::Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

thread_local! {
    static VIRTUAL_MODE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    static VIRTUAL_NS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Performs `ns` nanoseconds of synthetic operator work.
///
/// In normal (threaded) execution this burns real CPU via [`busy_spin`].
/// Under the discrete-event executor (see `simulate`), the cost is instead
/// *accounted* onto the current actor's virtual clock — threads never
/// block, so simulated operators run with perfect parallelism regardless
/// of the physical core count (the paper's 24-core testbed, which we
/// substitute with virtual time; see DESIGN.md).
pub fn synthetic_work(ns: u64) {
    if VIRTUAL_MODE.with(|m| m.get()) {
        VIRTUAL_NS.with(|v| v.set(v.get().saturating_add(ns)));
    } else {
        busy_spin(ns);
    }
}

/// Enables/disables virtual-work accounting on this thread.
///
/// Prefer [`VirtualWorkGuard::enter`], which restores the previous mode
/// even if the protected code panics.
pub fn set_virtual_work_mode(on: bool) {
    VIRTUAL_MODE.with(|m| m.set(on));
    if on {
        VIRTUAL_NS.with(|v| v.set(0));
    }
}

/// True while this thread accounts synthetic work onto the virtual clock.
pub fn virtual_work_mode() -> bool {
    VIRTUAL_MODE.with(|m| m.get())
}

/// Takes (and resets) the virtual work accumulated on this thread since the
/// last call.
pub fn take_virtual_work_ns() -> u64 {
    VIRTUAL_NS.with(|v| v.replace(0))
}

/// RAII scope for virtual-work accounting: enables the mode on
/// construction (discarding any stale accumulated nanoseconds) and
/// restores the previous mode on drop — including when unwinding from a
/// panicking operator, so a panic mid-profile or mid-simulation can never
/// leave the thread silently accounting instead of spinning.
#[derive(Debug)]
pub struct VirtualWorkGuard {
    was_virtual: bool,
}

impl VirtualWorkGuard {
    /// Enters virtual-work mode on the current thread.
    #[must_use = "the guard restores the previous mode on drop"]
    pub fn enter() -> Self {
        let was_virtual = virtual_work_mode();
        set_virtual_work_mode(true);
        VirtualWorkGuard { was_virtual }
    }
}

impl Drop for VirtualWorkGuard {
    fn drop(&mut self) {
        if !self.was_virtual {
            VIRTUAL_MODE.with(|m| m.set(false));
        }
    }
}

/// The statistical distribution of an operator's per-item service time
/// (§3.1 notes the flow-conservation model holds "regardless of the
/// statistical distributions of the service rates — Poisson, Normal or
/// Deterministic"; [`RandomWork`] lets experiments verify that).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceDistribution {
    /// Constant service time (the default of the operator library).
    Deterministic,
    /// Exponentially distributed service time (a Poisson server): the
    /// maximum-variance case for a given mean.
    Exponential,
    /// Normally distributed with a 25% coefficient of variation, truncated
    /// at zero.
    Normal,
}

/// Wraps an operator, adding a *random* amount of synthetic work per item
/// drawn from a [`ServiceDistribution`] with the given mean.
pub struct RandomWork<O> {
    inner: O,
    mean_ns: u64,
    dist: ServiceDistribution,
    rng: crate::rng::XorShift64,
}

impl<O: StreamOperator> RandomWork<O> {
    /// Adds `mean_ns` of expected synthetic work per item, distributed as
    /// `dist`, on top of `inner`'s own behavior.
    pub fn new(inner: O, mean_ns: u64, dist: ServiceDistribution, seed: u64) -> Self {
        RandomWork {
            inner,
            mean_ns,
            dist,
            rng: crate::rng::XorShift64::new(seed),
        }
    }

    fn draw_ns(&mut self) -> u64 {
        let mean = self.mean_ns as f64;
        let x = match self.dist {
            ServiceDistribution::Deterministic => mean,
            ServiceDistribution::Exponential => {
                // Inverse CDF; clamp the uniform away from 0 to avoid inf.
                let u = self.rng.next_f64().max(1e-12);
                -mean * u.ln()
            }
            ServiceDistribution::Normal => {
                // Box-Muller with σ = mean/4, truncated at 0.
                let u1 = self.rng.next_f64().max(1e-12);
                let u2 = self.rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + z * mean / 4.0).max(0.0)
            }
        };
        x.round() as u64
    }
}

impl<O: StreamOperator> StreamOperator for RandomWork<O> {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        let ns = self.draw_ns();
        synthetic_work(ns);
        self.inner.process(item, out);
    }
    fn flush(&mut self, out: &mut Outputs) {
        self.inner.flush(out);
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
}

impl StreamOperator for Spin {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        busy_spin(self.work_ns);
        out.emit_default(item);
    }
    fn name(&self) -> &str {
        &self.name
    }
}

/// Configuration of a [`FaultInjector`]: seeded, per-item fault draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that processing an item panics.
    pub panic_prob: f64,
    /// Probability that an item *starts* a transient-error burst: the next
    /// [`FaultConfig::burst_len`] items all panic.
    pub error_burst_prob: f64,
    /// Length of a transient-error burst.
    pub burst_len: u32,
    /// Probability that an item suffers a latency spike.
    pub latency_spike_prob: f64,
    /// Synthetic work added by one latency spike, in nanoseconds.
    pub latency_spike_ns: u64,
    /// RNG seed; equal seeds produce identical fault schedules.
    pub seed: u64,
    /// Deterministic trigger: panic while capturing the snapshot for the
    /// n-th aligned checkpoint epoch (1-indexed). Fires exactly once; a
    /// restart does not re-arm it, so recovery proceeds afterwards.
    pub crash_at_epoch: Option<u64>,
    /// Deterministic trigger: panic on the n-th processed tuple
    /// (1-indexed). Fires exactly once; a restart does not re-arm it.
    pub crash_after_tuples: Option<u64>,
    /// Deterministic trigger: after the n-th processed tuple, every item
    /// burns an extra `extra_ns` of synthetic work — a *persistent*
    /// service-time shift (unlike latency spikes), the workload change the
    /// adaptive controller is built to detect. `(n, extra_ns)`.
    pub slow_after_tuples: Option<(u64, u64)>,
}

impl FaultConfig {
    /// A config injecting only panics, with probability `p` per item.
    pub fn panics(p: f64, seed: u64) -> Self {
        FaultConfig {
            panic_prob: p,
            error_burst_prob: 0.0,
            burst_len: 0,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            seed,
            crash_at_epoch: None,
            crash_after_tuples: None,
            slow_after_tuples: None,
        }
    }

    /// A config with no faults at all — a base for the deterministic
    /// crash triggers below.
    pub fn none() -> Self {
        FaultConfig::panics(0.0, 0)
    }

    /// Arms the one-shot crash inside the n-th epoch snapshot.
    pub fn with_crash_at_epoch(mut self, epoch: u64) -> Self {
        self.crash_at_epoch = Some(epoch);
        self
    }

    /// Arms the one-shot crash on the n-th processed tuple.
    pub fn with_crash_after_tuples(mut self, tuples: u64) -> Self {
        self.crash_after_tuples = Some(tuples);
        self
    }

    /// Arms the persistent service-time shift: after `tuples` items, every
    /// item costs an extra `extra_ns` of synthetic work.
    pub fn with_slowdown_after(mut self, tuples: u64, extra_ns: u64) -> Self {
        self.slow_after_tuples = Some((tuples, extra_ns));
        self
    }

    /// Validates probabilities, returning a description of any problem.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("panic_prob", self.panic_prob),
            ("error_burst_prob", self.error_burst_prob),
            ("latency_spike_prob", self.latency_spike_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// Wraps an operator, injecting faults per a seeded deterministic schedule:
/// single panics, transient-error bursts (several consecutive panics) and
/// latency spikes. The chaos harness uses it to exercise supervision and
/// measure degraded-mode throughput against prediction.
pub struct FaultInjector<O> {
    inner: O,
    cfg: FaultConfig,
    rng: crate::rng::XorShift64,
    burst_left: u32,
    tuples_seen: u64,
    snapshots_taken: u64,
    crashed_on_tuple: bool,
    crashed_on_epoch: bool,
}

impl<O: StreamOperator> FaultInjector<O> {
    /// Wraps `inner` with the fault schedule described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`FaultConfig::validate`].
    pub fn new(inner: O, cfg: FaultConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid fault config: {e}");
        }
        FaultInjector {
            inner,
            cfg,
            rng: crate::rng::XorShift64::new(cfg.seed),
            burst_left: 0,
            tuples_seen: 0,
            snapshots_taken: 0,
            crashed_on_tuple: false,
            crashed_on_epoch: false,
        }
    }
}

impl<O: StreamOperator> StreamOperator for FaultInjector<O> {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        self.tuples_seen += 1;
        if let Some(n) = self.cfg.crash_after_tuples {
            if !self.crashed_on_tuple && self.tuples_seen >= n {
                self.crashed_on_tuple = true;
                panic!("injected fault: crash after {n} tuples");
            }
        }
        if self.burst_left > 0 {
            self.burst_left -= 1;
            panic!("injected fault: transient-error burst");
        }
        if self.cfg.error_burst_prob > 0.0 && self.rng.next_f64() < self.cfg.error_burst_prob {
            self.burst_left = self.cfg.burst_len.saturating_sub(1);
            panic!("injected fault: transient-error burst");
        }
        if self.cfg.panic_prob > 0.0 && self.rng.next_f64() < self.cfg.panic_prob {
            panic!("injected fault: panic");
        }
        if self.cfg.latency_spike_prob > 0.0 && self.rng.next_f64() < self.cfg.latency_spike_prob {
            synthetic_work(self.cfg.latency_spike_ns);
        }
        if let Some((after, extra_ns)) = self.cfg.slow_after_tuples {
            if self.tuples_seen > after {
                synthetic_work(extra_ns);
            }
        }
        self.inner.process(item, out);
    }
    fn flush(&mut self, out: &mut Outputs) {
        self.inner.flush(out);
    }
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self) {
        // A restart replaces the wrapped operator's state and ends any
        // in-flight burst; the RNG keeps its position so the fault
        // schedule stays a single deterministic stream per seed, and the
        // one-shot crash triggers stay fired — a recovering operator must
        // not crash again on the replayed prefix.
        self.inner.reset();
        self.burst_left = 0;
    }
    fn snapshot(&mut self) -> Option<crate::checkpoint::StateSnapshot> {
        // The engine calls snapshot exactly once per aligned epoch, so the
        // call count is the epoch number (until the one-shot fires, after
        // which the count only needs to stay monotonic).
        self.snapshots_taken += 1;
        if let Some(n) = self.cfg.crash_at_epoch {
            if !self.crashed_on_epoch && self.snapshots_taken >= n {
                self.crashed_on_epoch = true;
                panic!("injected fault: crash at epoch {n}");
            }
        }
        self.inner.snapshot()
    }
    fn restore(&mut self, snapshot: &crate::checkpoint::StateSnapshot) -> bool {
        self.inner.restore(snapshot)
    }
    fn extract_keys(&mut self, keys: &[u64]) -> Option<crate::checkpoint::StateSnapshot> {
        // Key handoffs move the *wrapped* operator's state; the injector's
        // own schedule stays put on the old replica.
        self.inner.extract_keys(keys)
    }
    fn inject_state(&mut self, snapshot: &crate::checkpoint::StateSnapshot) -> bool {
        self.inner.inject_state(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn pass_through_forwards_unchanged() {
        let mut op = PassThrough;
        let mut out = Outputs::new();
        let t = Tuple::splat(3, 9, 2.5);
        op.process(t, &mut out);
        assert_eq!(out.items(), &[(0, t)]);
        assert_eq!(op.name(), "pass-through");
    }

    #[test]
    fn fn_operator_runs_closure() {
        let mut op = FnOperator::new("x2", |t: Tuple, out: &mut Outputs| {
            out.emit_default(t.with_value(0, t.values[0] * 2.0));
        });
        let mut out = Outputs::new();
        op.process(Tuple::splat(0, 0, 21.0), &mut out);
        assert_eq!(out.items()[0].1.values[0], 42.0);
        assert_eq!(op.name(), "x2");
    }

    #[test]
    fn spin_takes_roughly_configured_time() {
        let mut op = Spin::new("spin", 200_000); // 200 µs
        let mut out = Outputs::new();
        let start = Instant::now();
        for _ in 0..10 {
            op.process(Tuple::default(), &mut out);
        }
        let elapsed = start.elapsed();
        assert!(elapsed.as_micros() >= 2_000, "elapsed {elapsed:?}");
        assert!(elapsed.as_micros() < 20_000, "elapsed {elapsed:?}");
        assert_eq!(out.len(), 10);
        assert_eq!(op.work_ns(), 200_000);
    }

    #[test]
    fn zero_spin_is_fast() {
        let start = Instant::now();
        busy_spin(0);
        assert!(start.elapsed().as_micros() < 1_000);
    }

    #[test]
    fn virtual_work_accumulates_instead_of_spinning() {
        set_virtual_work_mode(true);
        take_virtual_work_ns();
        let start = Instant::now();
        synthetic_work(50_000_000); // 50 ms would be obvious if spun
        assert!(start.elapsed().as_millis() < 5);
        assert_eq!(take_virtual_work_ns(), 50_000_000);
        assert_eq!(take_virtual_work_ns(), 0, "take resets the counter");
        set_virtual_work_mode(false);
    }

    #[test]
    fn virtual_work_guard_restores_mode_on_panic() {
        assert!(!virtual_work_mode());
        // Normal scope: mode active inside, restored after.
        {
            let _guard = VirtualWorkGuard::enter();
            assert!(virtual_work_mode());
            // Nested guards keep the mode active until the outermost drops.
            {
                let _inner = VirtualWorkGuard::enter();
                assert!(virtual_work_mode());
            }
            assert!(virtual_work_mode());
        }
        assert!(!virtual_work_mode());
        // Panicking scope: the guard must still restore the mode while
        // unwinding — the failure mode the vestigial `was_virtual` code in
        // the profiler never handled.
        let result = std::panic::catch_unwind(|| {
            let _guard = VirtualWorkGuard::enter();
            panic!("operator died mid-profile");
        });
        assert!(result.is_err());
        assert!(!virtual_work_mode(), "panic leaked virtual-work mode");
        take_virtual_work_ns();
    }

    #[test]
    fn random_work_distributions_have_the_requested_mean() {
        set_virtual_work_mode(true);
        let mut out = Outputs::new();
        for dist in [
            ServiceDistribution::Deterministic,
            ServiceDistribution::Exponential,
            ServiceDistribution::Normal,
        ] {
            let mut op = RandomWork::new(PassThrough, 100_000, dist, 7);
            take_virtual_work_ns();
            let n = 20_000;
            for i in 0..n {
                op.process(Tuple::splat(0, i, 0.0), &mut out);
                out.clear();
            }
            let mean = take_virtual_work_ns() as f64 / n as f64;
            assert!(
                (mean - 100_000.0).abs() / 100_000.0 < 0.03,
                "{dist:?}: mean {mean}"
            );
        }
        set_virtual_work_mode(false);
    }

    #[test]
    fn fault_injector_panic_rate_tracks_probability() {
        let cfg = FaultConfig::panics(0.2, 99);
        let mut op = FaultInjector::new(PassThrough, cfg);
        let mut out = Outputs::new();
        let n = 10_000;
        let mut panics = 0;
        for i in 0..n {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                op.process(Tuple::splat(0, i, 0.0), &mut out)
            }));
            if r.is_err() {
                panics += 1;
                out.clear();
            }
        }
        let rate = panics as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "panic rate {rate}");
    }

    #[test]
    fn fault_injector_is_deterministic_per_seed() {
        let schedule = |seed| {
            let mut op = FaultInjector::new(PassThrough, FaultConfig::panics(0.3, seed));
            let mut out = Outputs::new();
            (0..200u64)
                .map(|i| {
                    let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        op.process(Tuple::splat(0, i, 0.0), &mut out)
                    }))
                    .is_err();
                    out.clear();
                    died
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(schedule(5), schedule(5));
        assert_ne!(schedule(5), schedule(6));
    }

    #[test]
    fn fault_injector_bursts_panic_consecutively() {
        let cfg = FaultConfig {
            panic_prob: 0.0,
            error_burst_prob: 0.05,
            burst_len: 3,
            latency_spike_prob: 0.0,
            latency_spike_ns: 0,
            seed: 17,
            crash_at_epoch: None,
            crash_after_tuples: None,
            slow_after_tuples: None,
        };
        let mut op = FaultInjector::new(PassThrough, cfg);
        let mut out = Outputs::new();
        let deaths: Vec<bool> = (0..2000u64)
            .map(|i| {
                let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    op.process(Tuple::splat(0, i, 0.0), &mut out)
                }))
                .is_err();
                out.clear();
                died
            })
            .collect();
        // Every burst is a run of exactly `burst_len` consecutive deaths
        // (two bursts can abut, so runs are multiples of 3).
        let mut run = 0;
        let mut seen_any = false;
        for d in deaths.iter().chain(std::iter::once(&false)) {
            if *d {
                run += 1;
            } else {
                if run > 0 {
                    assert_eq!(run % 3, 0, "burst of length {run}");
                    seen_any = true;
                }
                run = 0;
            }
        }
        assert!(seen_any, "no bursts triggered in 2000 items");
    }

    #[test]
    fn fault_injector_latency_spikes_add_work() {
        set_virtual_work_mode(true);
        take_virtual_work_ns();
        let cfg = FaultConfig {
            panic_prob: 0.0,
            error_burst_prob: 0.0,
            burst_len: 0,
            latency_spike_prob: 0.5,
            latency_spike_ns: 1_000,
            seed: 23,
            crash_at_epoch: None,
            crash_after_tuples: None,
            slow_after_tuples: None,
        };
        let mut op = FaultInjector::new(PassThrough, cfg);
        let mut out = Outputs::new();
        for i in 0..1000 {
            op.process(Tuple::splat(0, i, 0.0), &mut out);
            out.clear();
        }
        let ns = take_virtual_work_ns();
        set_virtual_work_mode(false);
        // ~500 spikes of 1 µs each.
        assert!((400_000..600_000).contains(&ns), "spike work {ns}");
    }

    #[test]
    #[should_panic(expected = "invalid fault config")]
    fn fault_injector_rejects_bad_probability() {
        FaultInjector::new(PassThrough, FaultConfig::panics(1.5, 1));
    }

    #[test]
    fn random_work_variance_orders_as_expected() {
        set_virtual_work_mode(true);
        let mut out = Outputs::new();
        let mut variance = |dist| {
            let mut op = RandomWork::new(PassThrough, 100_000, dist, 11);
            let n = 20_000;
            let samples: Vec<f64> = (0..n)
                .map(|i| {
                    take_virtual_work_ns();
                    op.process(Tuple::splat(0, i, 0.0), &mut out);
                    out.clear();
                    take_virtual_work_ns() as f64
                })
                .collect();
            let m = samples.iter().sum::<f64>() / n as f64;
            samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64
        };
        let det = variance(ServiceDistribution::Deterministic);
        let norm = variance(ServiceDistribution::Normal);
        let exp = variance(ServiceDistribution::Exponential);
        set_virtual_work_mode(false);
        assert_eq!(det, 0.0);
        assert!(norm > 0.0 && exp > norm, "exp {exp} vs norm {norm}");
    }
}
