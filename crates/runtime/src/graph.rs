//! The actor graph executed by the engine.
//!
//! This is the *deployed* form of a topology: after code generation, every
//! logical operator has become one or more actors (workers, replicas,
//! emitters, collectors, meta-operators), connected by routes. The engine
//! gives each actor a bounded mailbox and a dedicated thread.

use crate::supervision::{OperatorFactory, SupervisorSpec};
use crate::{Route, StreamOperator};
use spinstreams_core::KeyDistribution;
use std::fmt;

/// Identifier of an actor within one [`ActorGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub usize);

impl ActorId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor{}", self.0)
    }
}

/// Configuration of a source actor: the stream generator.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Nominal generation rate in items/s (`f64::INFINITY` = as fast as
    /// possible). Backpressure can force the actual rate lower.
    pub rate: f64,
    /// Total number of items to generate before signalling end-of-stream.
    pub count: u64,
    /// Distribution of partitioning keys (`None` = key equals the sequence
    /// number).
    pub keys: Option<KeyDistribution>,
    /// RNG seed for keys and attribute values.
    pub seed: u64,
}

impl SourceConfig {
    /// Creates a source generating `count` items at `rate` items/s with
    /// uniform random attributes in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64, count: u64) -> Self {
        assert!(rate > 0.0, "source rate must be positive");
        SourceConfig {
            rate,
            count,
            keys: None,
            seed: 0x5EED,
        }
    }

    /// Sets the key distribution (builder style).
    pub fn with_keys(mut self, keys: KeyDistribution) -> Self {
        self.keys = Some(keys);
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What an actor does with the items in its mailbox.
pub enum Behavior {
    /// Generates the stream (no mailbox).
    Source(SourceConfig),
    /// Executes a [`StreamOperator`] on every received item.
    Worker(Box<dyn StreamOperator>),
}

impl Behavior {
    /// Convenience constructor boxing a concrete operator.
    pub fn worker(op: impl StreamOperator + 'static) -> Self {
        Behavior::Worker(Box::new(op))
    }

    /// True for [`Behavior::Source`].
    pub fn is_source(&self) -> bool {
        matches!(self, Behavior::Source(_))
    }
}

impl fmt::Debug for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Source(cfg) => f.debug_tuple("Source").field(cfg).finish(),
            Behavior::Worker(op) => f.debug_tuple("Worker").field(&op.name()).finish(),
        }
    }
}

/// One actor: a behavior plus the routes of its logical output ports.
#[derive(Debug)]
pub struct ActorSpec {
    /// Diagnostic name (shows up in reports).
    pub name: String,
    /// The actor's behavior.
    pub behavior: Behavior,
    /// Route per logical output port (`routes[p]` serves port `p`).
    pub routes: Vec<Route>,
    /// Mailbox capacity override (`None` = engine default).
    pub mailbox_capacity: Option<usize>,
    /// Supervision configuration (panic directive + degraded mode).
    pub supervision: SupervisorSpec,
    /// Factory re-instantiating the operator on `Restart` (`None` = fall
    /// back to [`StreamOperator::reset`]).
    pub factory: Option<OperatorFactory>,
}

/// A graph of actors ready to execute.
///
/// Built either directly (tests, micro-benchmarks) or by the code generator
/// from an optimized topology.
#[derive(Debug, Default)]
pub struct ActorGraph {
    actors: Vec<ActorSpec>,
}

impl ActorGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an actor, returning its id.
    pub fn add_actor(&mut self, name: impl Into<String>, behavior: Behavior) -> ActorId {
        self.actors.push(ActorSpec {
            name: name.into(),
            behavior,
            routes: Vec::new(),
            mailbox_capacity: None,
            supervision: SupervisorSpec::default(),
            factory: None,
        });
        ActorId(self.actors.len() - 1)
    }

    /// Appends an output route to `actor`; the route serves the next free
    /// logical port, whose index is returned.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn connect(&mut self, actor: ActorId, route: Route) -> usize {
        let spec = &mut self.actors[actor.0];
        spec.routes.push(route);
        spec.routes.len() - 1
    }

    /// Overrides the mailbox capacity of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range or `capacity` is zero.
    pub fn set_mailbox_capacity(&mut self, actor: ActorId, capacity: usize) {
        assert!(capacity > 0, "mailbox capacity must be positive");
        self.actors[actor.0].mailbox_capacity = Some(capacity);
    }

    /// Sets the supervision configuration of `actor`.
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn set_supervision(&mut self, actor: ActorId, supervision: SupervisorSpec) {
        self.actors[actor.0].supervision = supervision;
    }

    /// Sets the supervision configuration of every worker actor.
    pub fn set_supervision_all(&mut self, supervision: &SupervisorSpec) {
        for spec in &mut self.actors {
            if !spec.behavior.is_source() {
                spec.supervision = supervision.clone();
            }
        }
    }

    /// Registers a factory producing fresh operator instances for `actor`,
    /// used by the `Restart` directive instead of
    /// [`StreamOperator::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `actor` is out of range.
    pub fn set_restart_factory(&mut self, actor: ActorId, factory: OperatorFactory) {
        self.actors[actor.0].factory = Some(factory);
    }

    /// Replaces every worker operator with `f(id, operator)` — the hook the
    /// chaos harness uses to wrap operators in fault injectors without
    /// rebuilding the graph.
    pub fn map_workers(
        &mut self,
        mut f: impl FnMut(ActorId, Box<dyn StreamOperator>) -> Box<dyn StreamOperator>,
    ) {
        for (i, spec) in self.actors.iter_mut().enumerate() {
            if let Behavior::Worker(op) = &mut spec.behavior {
                let inner = std::mem::replace(op, Box::new(crate::operators::PassThrough));
                *op = f(ActorId(i), inner);
            }
        }
    }

    /// Number of actors.
    pub fn num_actors(&self) -> usize {
        self.actors.len()
    }

    /// Immutable access to the actor specs.
    pub fn actors(&self) -> &[ActorSpec] {
        &self.actors
    }

    /// Consumes the graph into its actor specs (used by the engine).
    pub(crate) fn into_actors(self) -> Vec<ActorSpec> {
        self.actors
    }

    /// The ids of all source actors.
    pub fn sources(&self) -> Vec<ActorId> {
        self.actors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.behavior.is_source())
            .map(|(i, _)| ActorId(i))
            .collect()
    }

    /// In-degree per actor: the number of distinct upstream actors that can
    /// deliver to it (each sends one EOS marker at termination).
    pub fn in_degrees(&self) -> Vec<usize> {
        let n = self.actors.len();
        let mut deg = vec![0usize; n];
        for spec in &self.actors {
            let mut dests: Vec<usize> = spec
                .routes
                .iter()
                .flat_map(|r| r.destinations_iter())
                .map(|d| d.0)
                .collect();
            dests.sort_unstable();
            dests.dedup();
            for d in dests {
                if d < n {
                    deg[d] += 1;
                }
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::PassThrough;

    #[test]
    fn build_simple_graph() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(100.0, 10)));
        let w = g.add_actor("w", Behavior::worker(PassThrough));
        let port = g.connect(s, Route::Unicast(w));
        assert_eq!(port, 0);
        assert_eq!(g.num_actors(), 2);
        assert_eq!(g.sources(), vec![s]);
        assert_eq!(g.in_degrees(), vec![0, 1]);
    }

    #[test]
    fn in_degree_counts_distinct_upstreams_once() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(100.0, 10)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        // Source has two ports both able to reach b: still one EOS from s.
        g.connect(s, Route::Unicast(a));
        g.connect(
            s,
            Route::Probabilistic {
                choices: vec![(a, 0.5), (b, 0.5)],
            },
        );
        g.connect(a, Route::Unicast(b));
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn multiple_ports_get_increasing_indices() {
        let mut g = ActorGraph::new();
        let s = g.add_actor("src", Behavior::Source(SourceConfig::new(100.0, 1)));
        let a = g.add_actor("a", Behavior::worker(PassThrough));
        let b = g.add_actor("b", Behavior::worker(PassThrough));
        assert_eq!(g.connect(s, Route::Unicast(a)), 0);
        assert_eq!(g.connect(s, Route::Unicast(b)), 1);
        assert_eq!(g.actors()[s.0].routes.len(), 2);
    }

    #[test]
    fn source_config_builders() {
        let cfg = SourceConfig::new(10.0, 5)
            .with_seed(9)
            .with_keys(KeyDistribution::uniform(4));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.keys.as_ref().unwrap().num_keys(), 4);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn non_positive_rate_rejected() {
        SourceConfig::new(0.0, 1);
    }

    #[test]
    fn behavior_debug_and_predicates() {
        let src = Behavior::Source(SourceConfig::new(1.0, 1));
        assert!(src.is_source());
        let w = Behavior::worker(PassThrough);
        assert!(!w.is_source());
        assert!(format!("{w:?}").contains("Worker"));
    }
}
