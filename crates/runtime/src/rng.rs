//! A small deterministic PRNG for routing decisions.
//!
//! Probabilistic routes (simulating the application-semantics edge
//! probabilities of §3.1) and workload generation need randomness inside
//! actors. A self-contained xorshift64* keeps the runtime dependency-free
//! and the executions reproducible given a seed.

/// xorshift64* pseudo-random generator.
///
/// Passes BigCrush-level statistical quality for the routing/workload
/// purposes here; not cryptographically secure.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (zero is remapped to a fixed
    /// non-zero constant, since the all-zero state is absorbing).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Current generator state, for checkpointing. Never zero.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restores a state previously read with [`state`](Self::state), so a
    /// recovered operator resumes the exact same random sequence.
    pub fn set_state(&mut self, state: u64) {
        self.state = if state == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            state
        };
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_bounded(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.next_f64() * bound as f64) as usize % bound
    }

    /// Samples an index from a discrete distribution given as weights that
    /// sum to one (last index absorbs rounding slack).
    pub fn sample_discrete(&mut self, probs: &[f64]) -> usize {
        debug_assert!(!probs.is_empty());
        let u = self.next_f64();
        let mut acc = 0.0;
        for (i, p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = XorShift64::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut r = XorShift64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_bounded(7) < 7);
        }
    }

    #[test]
    fn discrete_sampling_matches_weights() {
        let mut r = XorShift64::new(123);
        let probs = [0.2, 0.5, 0.3];
        let mut counts = [0usize; 3];
        let n = 200_000;
        for _ in 0..n {
            counts[r.sample_discrete(&probs)] += 1;
        }
        for (i, p) in probs.iter().enumerate() {
            let freq = counts[i] as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "index {i}: {freq} vs {p}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        XorShift64::new(1).next_bounded(0);
    }
}
