//! Operator profiling: measuring service times and selectivities.
//!
//! SpinStreams is driven by profile-based measurements — "the processing
//! time spent on average by the operators to consume input items" and the
//! selectivity parameters (§4.1, where the paper points to DiSL/Mammut).
//! [`profile_operator`] plays that role here: it feeds an operator a sample
//! stream, timing each invocation and counting emissions.

use crate::{Outputs, StreamOperator};
use spinstreams_core::{ServiceTime, Tuple};
use std::time::Instant;

/// Result of profiling one operator over a sample stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileResult {
    /// Mean measured service time per input item.
    pub mean_service_time: ServiceTime,
    /// Measured output selectivity: outputs emitted per input consumed.
    pub output_selectivity: f64,
    /// Number of samples measured (after warmup).
    pub samples: usize,
}

/// Profiles `op` over `inputs`, discarding the first `warmup` invocations
/// from the timing statistics (cold caches, lazy state allocation).
///
/// The operator is driven exactly like the runtime drives it, one item per
/// `process` call, with emissions discarded.
///
/// # Panics
///
/// Panics if `inputs.len() <= warmup` (no measurable samples).
pub fn profile_operator(
    op: &mut dyn StreamOperator,
    inputs: &[Tuple],
    warmup: usize,
) -> ProfileResult {
    assert!(
        inputs.len() > warmup,
        "need more inputs ({}) than warmup ({warmup})",
        inputs.len()
    );
    // Profile in virtual-work mode: an operator's service time is its
    // intrinsic (wall-clock) compute plus its declared synthetic work,
    // matching how the discrete-event executor accounts it. Threaded
    // execution spins the same number of nanoseconds, so the profile is
    // valid for both executors. The RAII guard restores the previous mode
    // even if the operator panics mid-profile.
    let _mode = crate::operators::VirtualWorkGuard::enter();
    let mut out = Outputs::new();
    for item in &inputs[..warmup] {
        op.process(*item, &mut out);
        out.clear();
    }
    crate::operators::take_virtual_work_ns();
    let measured = &inputs[warmup..];
    let mut emitted = 0usize;
    let start = Instant::now();
    for item in measured {
        op.process(*item, &mut out);
        emitted += out.len();
        out.clear();
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64 + crate::operators::take_virtual_work_ns();
    ProfileResult {
        mean_service_time: ServiceTime::from_secs(elapsed_ns as f64 / 1e9 / measured.len() as f64),
        output_selectivity: emitted as f64 / measured.len() as f64,
        samples: measured.len(),
    }
}

/// Generates a deterministic sample stream of `n` tuples with uniform
/// attributes in `[0, 1)` and keys in `[0, num_keys)`.
pub fn sample_stream(n: usize, num_keys: u64, seed: u64) -> Vec<Tuple> {
    let mut rng = crate::rng::XorShift64::new(seed);
    (0..n)
        .map(|i| {
            let mut values = [0.0f64; spinstreams_core::TUPLE_ARITY];
            for v in values.iter_mut() {
                *v = rng.next_f64();
            }
            Tuple::new(rng.next_u64() % num_keys.max(1), i as u64, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{FnOperator, Spin};

    #[test]
    fn profiles_spin_operator_close_to_configured_time() {
        let mut op = Spin::new("spin", 100_000); // 100 µs
        let inputs = sample_stream(200, 8, 1);
        let p = profile_operator(&mut op, &inputs, 20);
        let us = p.mean_service_time.as_micros();
        assert!(
            (us - 100.0).abs() / 100.0 < 0.25,
            "measured {us} µs for a 100 µs operator"
        );
        assert_eq!(p.samples, 180);
        assert!((p.output_selectivity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measures_output_selectivity() {
        // Emits two items for every input with values[0] < 0.5, none
        // otherwise -> selectivity ≈ 1.0 on uniform input.
        let mut op = FnOperator::new("flat", |t: Tuple, out: &mut Outputs| {
            if t.values[0] < 0.5 {
                out.emit_default(t);
                out.emit_default(t);
            }
        });
        let inputs = sample_stream(5000, 8, 2);
        let p = profile_operator(&mut op, &inputs, 100);
        assert!(
            (p.output_selectivity - 1.0).abs() < 0.1,
            "selectivity {}",
            p.output_selectivity
        );
    }

    #[test]
    fn sample_stream_is_deterministic_and_in_range() {
        let a = sample_stream(100, 4, 9);
        let b = sample_stream(100, 4, 9);
        assert_eq!(a, b);
        for t in &a {
            assert!(t.key < 4);
            for v in &t.values {
                assert!((0.0..1.0).contains(v));
            }
        }
        assert_ne!(a, sample_stream(100, 4, 10));
    }

    #[test]
    #[should_panic(expected = "need more inputs")]
    fn warmup_must_leave_samples() {
        let mut op = Spin::new("s", 0);
        let inputs = sample_stream(10, 1, 1);
        profile_operator(&mut op, &inputs, 10);
    }

    #[test]
    fn panicking_operator_does_not_leak_virtual_mode() {
        struct Bomb;
        impl crate::StreamOperator for Bomb {
            fn process(&mut self, _item: Tuple, _out: &mut Outputs) {
                panic!("boom");
            }
        }
        let inputs = sample_stream(10, 1, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            profile_operator(&mut Bomb, &inputs, 2);
        }));
        assert!(result.is_err());
        assert!(
            !crate::operators::virtual_work_mode(),
            "profiler leaked virtual-work mode after an operator panic"
        );
        crate::operators::take_virtual_work_ns();
    }
}
