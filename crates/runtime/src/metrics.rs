//! Per-actor runtime metrics and the run report.
//!
//! Every actor counts arrivals, departures, drops, busy time and
//! backpressure-blocked time, and timestamps its first and last departure.
//! From those the engine derives the *measured* steady-state departure
//! rates compared against the cost model in §5.2.

use crate::supervision::DeadLetterLog;
use crate::ActorId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared mutable metric cells for one actor (written by the actor thread).
#[derive(Debug, Default)]
pub(crate) struct ActorMetrics {
    pub items_in: AtomicU64,
    pub items_out: AtomicU64,
    pub dropped: AtomicU64,
    pub busy_ns: AtomicU64,
    pub blocked_ns: AtomicU64,
    /// Nanoseconds since engine start of the first/last departure
    /// (`u64::MAX` = never departed).
    pub first_out_ns: AtomicU64,
    pub last_out_ns: AtomicU64,
    /// Operator invocations that panicked (caught by the supervisor).
    pub panics: AtomicU64,
    /// Times the operator was re-instantiated after a panic.
    pub restarts: AtomicU64,
    /// Time spent sleeping in restart backoff.
    pub backoff_ns: AtomicU64,
    /// Dead letters attributed to this actor (as source).
    pub dead_letters: AtomicU64,
    /// Epoch snapshots successfully captured at barrier alignment.
    pub snapshots: AtomicU64,
    /// Total serialized bytes across all captured snapshots.
    pub snapshot_bytes: AtomicU64,
    /// Time spent buffering input behind in-progress barrier alignments.
    pub align_stall_ns: AtomicU64,
    /// Restarts recovered via snapshot-restore + replay (vs reset-empty).
    pub recoveries: AtomicU64,
    /// Tuples replayed through the operator during recoveries.
    pub replayed: AtomicU64,
    /// Times the bounded replay buffer overflowed (recovery degraded).
    pub replay_overflows: AtomicU64,
    /// Epoch of the snapshot last restored during recovery (0 = none).
    pub restored_epoch: AtomicU64,
}

impl ActorMetrics {
    pub(crate) fn new() -> Self {
        let m = ActorMetrics::default();
        m.first_out_ns.store(u64::MAX, Ordering::Relaxed);
        m
    }

    /// Records `n` departures sharing one timestamp — equivalent to `n`
    /// single-departure records with the same `now_ns`, but one counter
    /// RMW. Used by batched flushes and per-batch sink stamping, where
    /// every tuple in the batch carries the same clock reading anyway.
    pub(crate) fn record_out_n(&self, now_ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.items_out.fetch_add(n, Ordering::Relaxed);
        // Only the owning actor thread writes, so a simple compare works.
        if self.first_out_ns.load(Ordering::Relaxed) == u64::MAX {
            self.first_out_ns.store(now_ns, Ordering::Relaxed);
        }
        self.last_out_ns.store(now_ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str, id: ActorId) -> ActorReport {
        ActorReport {
            id,
            name: name.to_string(),
            items_in: self.items_in.load(Ordering::Relaxed),
            items_out: self.items_out.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            blocked: Duration::from_nanos(self.blocked_ns.load(Ordering::Relaxed)),
            first_out_ns: self.first_out_ns.load(Ordering::Relaxed),
            last_out_ns: self.last_out_ns.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            backoff: Duration::from_nanos(self.backoff_ns.load(Ordering::Relaxed)),
            dead_letters: self.dead_letters.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_bytes: self.snapshot_bytes.load(Ordering::Relaxed),
            align_stall: Duration::from_nanos(self.align_stall_ns.load(Ordering::Relaxed)),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            replayed: self.replayed.load(Ordering::Relaxed),
            replay_overflows: self.replay_overflows.load(Ordering::Relaxed),
            last_restored_epoch: {
                let e = self.restored_epoch.load(Ordering::Relaxed);
                (e != 0).then_some(e)
            },
        }
    }
}

/// Metrics snapshot of one actor after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ActorReport {
    /// The actor.
    pub id: ActorId,
    /// Diagnostic name from the actor graph.
    pub name: String,
    /// Items received.
    pub items_in: u64,
    /// Items emitted (delivered downstream, or consumed at a sink port).
    pub items_out: u64,
    /// Items dropped on send timeout.
    pub dropped: u64,
    /// Time spent processing input: operator invocations plus the
    /// engine's per-tuple routing/buffering overhead, measured once per
    /// drained batch and excluding backpressure blocking and restart
    /// backoff. (Per-invocation timing would put two `clock_gettime`
    /// calls on the per-tuple path — more than a cheap operator costs.)
    pub busy: Duration,
    /// Time spent blocked on full downstream mailboxes (backpressure).
    pub blocked: Duration,
    /// Nanoseconds (since run start) of the first departure
    /// (`u64::MAX` if none).
    pub first_out_ns: u64,
    /// Nanoseconds (since run start) of the last departure.
    pub last_out_ns: u64,
    /// Operator invocations that panicked (caught by the supervisor).
    pub panics: u64,
    /// Times the operator was re-instantiated after a panic.
    pub restarts: u64,
    /// Time spent sleeping in restart backoff.
    pub backoff: Duration,
    /// Dead letters attributed to this actor (items it failed to deliver
    /// or consumed by panics / degraded-mode drops).
    pub dead_letters: u64,
    /// Epoch snapshots captured at barrier alignment (checkpointing on).
    pub snapshots: u64,
    /// Total serialized bytes across all captured snapshots.
    pub snapshot_bytes: u64,
    /// Time spent holding input behind in-progress barrier alignments.
    pub align_stall: Duration,
    /// Restarts recovered via snapshot-restore + replay instead of a
    /// reset to empty state.
    pub recoveries: u64,
    /// Tuples replayed through the operator during recoveries.
    pub replayed: u64,
    /// Times the bounded replay buffer overflowed, degrading a future
    /// recovery to plain reset.
    pub replay_overflows: u64,
    /// Epoch of the snapshot last restored during a recovery (`None` if
    /// the actor never recovered from a snapshot).
    pub last_restored_epoch: Option<u64>,
}

impl ActorReport {
    /// Measured steady-state departure rate in items/s: emissions divided
    /// by the first-to-last departure span. `None` with fewer than two
    /// departures.
    pub fn departure_rate(&self) -> Option<f64> {
        if self.items_out < 2 || self.first_out_ns == u64::MAX {
            return None;
        }
        let span_ns = self.last_out_ns.saturating_sub(self.first_out_ns);
        if span_ns == 0 {
            return None;
        }
        Some((self.items_out - 1) as f64 * 1e9 / span_ns as f64)
    }

    /// Fraction of wall time this actor spent blocked on backpressure.
    pub fn blocked_fraction(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.blocked.as_secs_f64() / wall.as_secs_f64()
        }
    }
}

/// The result of executing an actor graph to completion.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-actor snapshots, indexed by actor id.
    pub actors: Vec<ActorReport>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Engine start instant (all `*_ns` fields are relative to it).
    pub started_at: Instant,
    /// Structural record of every undelivered item (capacity-bounded
    /// entries, exact totals).
    pub dead_letters: DeadLetterLog,
    /// The last globally complete checkpoint epoch — every actor (sources
    /// and sinks included) acked it. `None` with checkpointing off or if
    /// no epoch fully propagated before end of stream.
    pub last_complete_epoch: Option<u64>,
}

impl RunReport {
    /// The report of one actor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actor(&self, id: ActorId) -> &ActorReport {
        &self.actors[id.0]
    }

    /// Measured topology throughput, per the paper's definition (§5.2):
    /// the combined departure rate of the source actors. Multi-source
    /// topologies sum the per-source rates; `None` if no source produced a
    /// measurable rate (fewer than two departures everywhere).
    pub fn source_throughput(&self) -> Option<f64> {
        let rates: Vec<f64> = self
            .actors
            .iter()
            .filter(|a| a.items_in == 0 && a.items_out > 0)
            .filter_map(|a| a.departure_rate())
            .collect();
        if rates.is_empty() {
            None
        } else {
            Some(rates.iter().sum())
        }
    }

    /// Total items dropped anywhere (should be zero with an adequate send
    /// timeout; §5.1 sets it well above the largest service time).
    pub fn total_dropped(&self) -> u64 {
        self.actors.iter().map(|a| a.dropped).sum()
    }

    /// Total caught operator panics across all actors.
    pub fn total_panics(&self) -> u64 {
        self.actors.iter().map(|a| a.panics).sum()
    }

    /// Total operator restarts across all actors.
    pub fn total_restarts(&self) -> u64 {
        self.actors.iter().map(|a| a.restarts).sum()
    }

    /// Total dead letters across all actors (equals
    /// `self.dead_letters.total()`).
    pub fn total_dead_letters(&self) -> u64 {
        self.actors.iter().map(|a| a.dead_letters).sum()
    }

    /// Total snapshot-restore recoveries across all actors.
    pub fn total_recoveries(&self) -> u64 {
        self.actors.iter().map(|a| a.recoveries).sum()
    }

    /// Total tuples replayed during recoveries across all actors.
    pub fn total_replayed(&self) -> u64 {
        self.actors.iter().map(|a| a.replayed).sum()
    }

    /// Total replay-buffer overflows across all actors.
    pub fn total_replay_overflows(&self) -> u64 {
        self.actors.iter().map(|a| a.replay_overflows).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(items_out: u64, first_ns: u64, last_ns: u64) -> ActorReport {
        ActorReport {
            id: ActorId(0),
            name: "a".into(),
            items_in: 0,
            items_out,
            dropped: 0,
            busy: Duration::ZERO,
            blocked: Duration::ZERO,
            first_out_ns: first_ns,
            last_out_ns: last_ns,
            panics: 0,
            restarts: 0,
            backoff: Duration::ZERO,
            dead_letters: 0,
            snapshots: 0,
            snapshot_bytes: 0,
            align_stall: Duration::ZERO,
            recoveries: 0,
            replayed: 0,
            replay_overflows: 0,
            last_restored_epoch: None,
        }
    }

    #[test]
    fn departure_rate_from_span() {
        // 11 items across 1 second -> 10 intervals/s.
        let r = report(11, 0, 1_000_000_000);
        assert!((r.departure_rate().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn departure_rate_needs_two_items() {
        assert_eq!(report(1, 0, 5).departure_rate(), None);
        assert_eq!(report(0, u64::MAX, 0).departure_rate(), None);
        assert_eq!(report(5, 100, 100).departure_rate(), None);
    }

    #[test]
    fn blocked_fraction() {
        let mut r = report(2, 0, 10);
        r.blocked = Duration::from_millis(250);
        assert!((r.blocked_fraction(Duration::from_secs(1)) - 0.25).abs() < 1e-9);
        assert_eq!(r.blocked_fraction(Duration::ZERO), 0.0);
    }

    #[test]
    fn record_out_tracks_first_and_last() {
        let m = ActorMetrics::new();
        m.record_out_n(100, 1);
        m.record_out_n(500, 0); // no departures: must not stamp
        m.record_out_n(900, 2);
        let snap = m.snapshot("x", ActorId(3));
        assert_eq!(snap.items_out, 3);
        assert_eq!(snap.first_out_ns, 100);
        assert_eq!(snap.last_out_ns, 900);
        assert_eq!(snap.id, ActorId(3));
    }

    #[test]
    fn run_report_source_throughput_picks_sourcelike_actor() {
        let source = ActorReport {
            items_in: 0,
            ..report(101, 0, 1_000_000_000)
        };
        let worker = ActorReport {
            id: ActorId(1),
            items_in: 101,
            ..report(101, 0, 1_000_000_000)
        };
        let rep = RunReport {
            actors: vec![source, worker],
            wall: Duration::from_secs(1),
            started_at: Instant::now(),
            dead_letters: DeadLetterLog::default(),
            last_complete_epoch: None,
        };
        assert!((rep.source_throughput().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(rep.total_dropped(), 0);
        assert_eq!(rep.total_panics(), 0);
        assert_eq!(rep.total_restarts(), 0);
        assert_eq!(rep.total_dead_letters(), 0);
        assert!(rep.dead_letters.is_empty());
    }

    #[test]
    fn run_report_source_throughput_sums_all_sources() {
        // Two independent sources (no arrivals, >0 departures) at 100/s and
        // 50/s feeding one worker: topology throughput is their sum.
        let source_a = ActorReport {
            items_in: 0,
            ..report(101, 0, 1_000_000_000)
        };
        let source_b = ActorReport {
            id: ActorId(1),
            items_in: 0,
            ..report(51, 0, 1_000_000_000)
        };
        let worker = ActorReport {
            id: ActorId(2),
            items_in: 152,
            ..report(152, 0, 1_000_000_000)
        };
        let rep = RunReport {
            actors: vec![source_a, source_b, worker],
            wall: Duration::from_secs(1),
            started_at: Instant::now(),
            dead_letters: DeadLetterLog::default(),
            last_complete_epoch: None,
        };
        assert!((rep.source_throughput().unwrap() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn run_report_source_throughput_skips_unmeasurable_sources() {
        // A one-shot source (single departure, no measurable rate) must not
        // hide the measurable one, and an all-unmeasurable report is None.
        let one_shot = ActorReport {
            items_in: 0,
            ..report(1, 0, 0)
        };
        let steady = ActorReport {
            id: ActorId(1),
            items_in: 0,
            ..report(101, 0, 1_000_000_000)
        };
        let rep = RunReport {
            actors: vec![one_shot.clone(), steady],
            wall: Duration::from_secs(1),
            started_at: Instant::now(),
            dead_letters: DeadLetterLog::default(),
            last_complete_epoch: None,
        };
        assert!((rep.source_throughput().unwrap() - 100.0).abs() < 1e-9);
        let rep = RunReport {
            actors: vec![one_shot],
            wall: Duration::from_secs(1),
            started_at: Instant::now(),
            dead_letters: DeadLetterLog::default(),
            last_complete_epoch: None,
        };
        assert_eq!(rep.source_throughput(), None);
    }
}
