//! Best-effort CPU affinity: pinning engine threads to cores.
//!
//! Stream-processing hot loops are dominated by cache behaviour: a ring
//! mailbox whose producer and consumer keep migrating between cores pays
//! for every slot transfer with coherence misses. Pinning the engine's
//! threads — and sharding actors by topological stage so adjacent stages
//! sit on adjacent cores — keeps each ring's working set core-local.
//!
//! Affinity is inherently platform-specific. On Linux this module calls
//! `sched_setaffinity(2)` directly (the symbol comes from the already
//! linked C runtime, no extra dependency); everywhere else pinning is a
//! graceful no-op that warns once and lets the run proceed unpinned, as
//! required for a *best-effort* optimization knob.

use std::sync::atomic::{AtomicBool, Ordering};

/// Core-pinning policy for an engine run.
///
/// An empty core list disables pinning entirely (the default). With cores
/// `[c0, c1, …]` the engine pins, in stage order:
///
/// * **thread-per-actor** — actors are sharded by topological stage
///   (Kahn rank): contiguous rank bands map onto the core list, so an
///   operator and its downstream neighbour land on the same or adjacent
///   cores and their connecting ring stays core-local;
/// * **worker pool** — pool worker `w` is pinned to `cores[w % len]`;
///   source threads are pinned round-robin over the list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PinningConfig {
    /// The cores to pin onto, in stage order. Empty = no pinning.
    pub cores: Vec<usize>,
}

impl PinningConfig {
    /// No pinning (the default).
    pub fn disabled() -> Self {
        PinningConfig::default()
    }

    /// Pin onto the given cores, in stage order.
    pub fn on_cores(cores: Vec<usize>) -> Self {
        PinningConfig { cores }
    }

    /// True if a core list was configured.
    pub fn is_enabled(&self) -> bool {
        !self.cores.is_empty()
    }

    /// Parses a comma-separated core list, e.g. `"0,1,3"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry if the list is empty,
    /// contains a non-integer, or repeats a core.
    pub fn parse(list: &str) -> Result<Self, String> {
        let mut cores = Vec::new();
        for part in list.split(',') {
            let part = part.trim();
            let core: usize = part
                .parse()
                .map_err(|_| format!("bad core id {part:?} in pin-cores list"))?;
            if cores.contains(&core) {
                return Err(format!("core {core} repeated in pin-cores list"));
            }
            cores.push(core);
        }
        if cores.is_empty() {
            return Err("pin-cores list is empty".into());
        }
        Ok(PinningConfig { cores })
    }
}

/// Set once the first pinning failure has been reported, so a run with
/// many threads warns exactly once.
static WARNED: AtomicBool = AtomicBool::new(false);

/// Pins the calling thread to `core`. Returns `true` on success.
///
/// On failure (or on platforms without affinity support) this warns once
/// per process and returns `false`; the caller keeps running unpinned.
pub fn pin_current_thread(core: usize) -> bool {
    if pin_impl(core) {
        return true;
    }
    if !WARNED.swap(true, Ordering::Relaxed) {
        eprintln!(
            "spinstreams: pinning to core {core} failed or is unsupported \
             on this platform; continuing unpinned"
        );
    }
    false
}

#[cfg(target_os = "linux")]
fn pin_impl(core: usize) -> bool {
    // A fixed 1024-bit mask covers every machine this targets; the
    // kernel only reads `cpusetsize` bytes.
    const WORDS: usize = 16;
    if core >= WORDS * 64 {
        return false;
    }
    let mut mask = [0u64; WORDS];
    mask[core / 64] = 1u64 << (core % 64);
    extern "C" {
        // From the C runtime the binary already links; pid 0 = this thread.
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_lists_and_rejects_garbage() {
        assert_eq!(PinningConfig::parse("0").unwrap().cores, vec![0]);
        assert_eq!(PinningConfig::parse("0, 2,1").unwrap().cores, vec![0, 2, 1]);
        assert!(PinningConfig::parse("").is_err());
        assert!(PinningConfig::parse("a,b").is_err());
        assert!(PinningConfig::parse("1,1").is_err());
        assert!(PinningConfig::parse("-1").is_err());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!PinningConfig::default().is_enabled());
        assert!(!PinningConfig::disabled().is_enabled());
        assert!(PinningConfig::on_cores(vec![0]).is_enabled());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_core_zero_succeeds_on_linux() {
        // Core 0 always exists; pinning to it must work.
        assert!(pin_current_thread(0));
    }

    #[test]
    fn pinning_to_absurd_core_is_a_graceful_no_op() {
        // Way past any real CPU count: must return false, not panic.
        assert!(!pin_current_thread(100_000));
    }
}
