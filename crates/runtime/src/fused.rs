//! Monomorphized fused chains: the static counterpart of [`crate::MetaOperator`].
//!
//! Algorithm 3 fusion groups whose members are *stateless, known* kinds
//! wired as a linear chain do not need the interpreted work-list of
//! Algorithm 4: the group is a pure function `tail ∘ … ∘ front` applied to
//! each input tuple. [`FusedChain`] executes exactly that, stage by stage
//! over ping-pong buffers, with every member dispatched statically through
//! a [`Kernel`] (typically an enum of concrete operator structs) instead
//! of a `Box<dyn StreamOperator>` hop per member per tuple.
//!
//! Equivalence with the interpreted meta-operator is structural: for a
//! linear chain the breadth-first work-list of Algorithm 4 visits items in
//! stage-sequential order, which is precisely the order the ping-pong
//! stages produce, and an all-`Unicast` route table draws no randomness —
//! so a `FusedChain` and the `MetaOperator` it replaces emit byte-identical
//! output streams. The codegen layer only monomorphizes groups that satisfy
//! these conditions and falls back to the meta-operator otherwise.

use crate::{Outputs, StreamOperator};
use spinstreams_core::Tuple;

/// A statically dispatched operator stage inside a [`FusedChain`].
///
/// `apply` has the same contract as [`StreamOperator::process`] restricted
/// to stateless operators that emit on the default port: consume one item,
/// emit zero or more. Implementors are typically enums matching on the
/// concrete operator type, so the whole chain runs without dynamic
/// dispatch.
pub trait Kernel: Send {
    /// Processes one input item, emitting any number of outputs.
    fn apply(&mut self, item: Tuple, out: &mut Outputs);
}

/// A fusion group compiled to a statically dispatched stage pipeline.
///
/// Stages run path-sequentially: each input tuple is pushed through stage
/// 0, every emitted item through stage 1, and so on; whatever survives the
/// final stage leaves on the chain's single external output port. The two
/// stage buffers are owned by the chain and only ever `clear()`ed, so the
/// steady-state path performs no allocation once their capacity has grown
/// to the group's peak fan-out.
pub struct FusedChain<K> {
    name: String,
    kernels: Vec<K>,
    out_port: usize,
    ping: Outputs,
    pong: Outputs,
}

impl<K: Kernel> FusedChain<K> {
    /// Creates a chain executing `kernels` front-to-tail, emitting the
    /// tail's output on external port `out_port`.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty — a fusion group has at least one
    /// member.
    pub fn new(name: impl Into<String>, kernels: Vec<K>, out_port: usize) -> Self {
        assert!(
            !kernels.is_empty(),
            "a fused chain needs at least one stage"
        );
        FusedChain {
            name: name.into(),
            kernels,
            out_port,
            ping: Outputs::new(),
            pong: Outputs::new(),
        }
    }

    /// Number of fused stages.
    pub fn num_stages(&self) -> usize {
        self.kernels.len()
    }
}

impl<K: Kernel> StreamOperator for FusedChain<K> {
    fn process(&mut self, item: Tuple, out: &mut Outputs) {
        let (first, rest) = self
            .kernels
            .split_first_mut()
            .expect("chain is non-empty by construction");
        self.ping.clear();
        first.apply(item, &mut self.ping);
        for k in rest {
            if self.ping.is_empty() {
                break; // filtered out: nothing left to push downstream
            }
            self.pong.clear();
            for (_, t) in self.ping.drain() {
                k.apply(t, &mut self.pong);
            }
            std::mem::swap(&mut self.ping, &mut self.pong);
        }
        for (_, t) in self.ping.drain() {
            out.emit(self.out_port, t);
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        // Stages are stateless by the monomorphization eligibility rule;
        // only the scratch buffers could carry residue.
        self.ping.clear();
        self.pong.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal kernel set covering map / filter / fan-out shapes.
    enum TestKernel {
        Add(f64),
        DropBelow(f64),
        Dup,
    }

    impl Kernel for TestKernel {
        fn apply(&mut self, item: Tuple, out: &mut Outputs) {
            match self {
                TestKernel::Add(d) => {
                    out.emit_default(item.with_value(0, item.values[0] + *d));
                }
                TestKernel::DropBelow(t) => {
                    if item.values[0] >= *t {
                        out.emit_default(item);
                    }
                }
                TestKernel::Dup => {
                    out.emit_default(item);
                    out.emit_default(item);
                }
            }
        }
    }

    #[test]
    fn stages_apply_in_order() {
        let mut c = FusedChain::new("F", vec![TestKernel::Add(1.0), TestKernel::Add(10.0)], 0);
        let mut out = Outputs::new();
        c.process(Tuple::splat(0, 0, 0.0), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out.items()[0].1.values[0], 11.0);
        assert_eq!(c.num_stages(), 2);
    }

    #[test]
    fn filter_stage_short_circuits() {
        let mut c = FusedChain::new(
            "F",
            vec![TestKernel::DropBelow(0.5), TestKernel::Add(1.0)],
            0,
        );
        let mut out = Outputs::new();
        c.process(Tuple::splat(0, 0, 0.1), &mut out);
        assert!(out.is_empty());
        c.process(Tuple::splat(0, 1, 0.9), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn fanout_preserves_stage_sequential_order() {
        // Dup then Add: both copies of each input pass the Add stage in
        // emission order, matching the meta-operator's BFS order on a
        // linear chain.
        let mut c = FusedChain::new("F", vec![TestKernel::Dup, TestKernel::Add(1.0)], 3);
        let mut out = Outputs::new();
        c.process(Tuple::splat(0, 7, 2.0), &mut out);
        assert_eq!(out.len(), 2);
        for (port, t) in out.items() {
            assert_eq!(*port, 3, "externals leave on the configured port");
            assert_eq!(t.values[0], 3.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_chain_panics() {
        let _ = FusedChain::<TestKernel>::new("F", vec![], 0);
    }
}
