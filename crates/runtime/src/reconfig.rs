//! Live plan migration: apply a new deployment plan to a *running* actor
//! graph without stopping the stream.
//!
//! The adaptive control loop (analysis crate) decides *what* should change
//! — replica counts, key partitionings — and posts the decision here as
//! [`ReconfigOp`]s through a [`ReconfigHandle`]. The engine applies them
//! at epoch barriers, riding the checkpoint machinery:
//!
//! * **Route swap** — an emitter replaces the route on one of its output
//!   ports exactly when it completes alignment of the target epoch. The
//!   marker broadcast that precedes the swap flushes all pre-barrier data,
//!   so every replica sees the barrier before any post-swap tuple: the
//!   swap is atomic at the barrier.
//! * **Key handoff (pause–drain–resume)** — when a `KeyMap` swap moves
//!   keys between partitioned-stateful replicas, the old owner extracts
//!   the moving keys' state at its own alignment of the same epoch and
//!   publishes it out-of-band in the shared [`ReconfigShared::handoffs`]
//!   map; the emitter *pauses* post-swap tuples of the moving keys until
//!   every expected handoff is published, then pushes one in-band
//!   [`Envelope::Handoff`](crate::mailbox::Envelope) ordering token to
//!   each new owner followed by the released tuples. FIFO mailbox order
//!   guarantees the new owner merges the state before processing any
//!   moved-key data — per-key order and exactly-once are preserved.
//!
//! Replica "spawn/retire" uses pre-provisioned slots (the
//! max-parallelism approach): codegen deploys every replica actor up
//! front and rescaling only changes which slots the emitter's data route
//! targets. Inactive slots still receive markers and EOS (they sit on a
//! never-emitting second emitter port), so the wiring — mailboxes, EOS
//! counts, alignment quorums — is static while activity is dynamic.
//!
//! With no handle installed ([`EngineConfig::reconfig`] is `None`,
//! the default) the hot path carries a single `Option` check per batch.

use crate::checkpoint::StateSnapshot;
use crate::Route;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One key-range handoff riding a route swap: the state of `keys` moves
/// from replica `from` to replica `to`.
#[derive(Debug, Clone)]
pub struct KeyHandoff {
    /// Unique handoff id (unique across the whole run).
    pub id: u64,
    /// Actor id of the old owner (extracts and publishes).
    pub from: usize,
    /// Actor id of the new owner (receives the in-band token and merges).
    pub to: usize,
    /// The moving keys.
    pub keys: Vec<u64>,
}

/// One migration instruction, applied at an epoch barrier. All ops are
/// posted to the *emitter* actor that owns the route being swapped; the
/// extraction requests it carries are forwarded in-band (FIFO, behind the
/// barrier marker) so old owners extract exactly their barrier-consistent
/// state — no independent epoch race.
#[derive(Debug, Clone)]
pub enum ReconfigOp {
    /// Replace the route on output `port` when the actor completes
    /// alignment of the first epoch `>= at_epoch`.
    SwapRoute {
        /// Output port whose route is replaced.
        port: usize,
        /// The new route. Every destination must already be wired (a
        /// provisioned replica slot): the swap cannot create mailboxes.
        route: Route,
        /// Barrier epoch; the swap applies at the first completed epoch
        /// `>= at_epoch` so a controller can post slightly ahead.
        at_epoch: u64,
        /// Keys whose post-swap tuples are held in a pause buffer until
        /// every handoff is published (empty for stateless rescaling).
        pause_keys: Vec<u64>,
        /// Key-state handoffs this swap requires (empty for stateless
        /// rescaling).
        handoffs: Vec<KeyHandoff>,
    },
}

/// State shared between the controller-facing [`ReconfigHandle`] and every
/// actor's per-task reconfiguration state.
#[derive(Debug, Default)]
pub(crate) struct ReconfigShared {
    /// Bumped on every [`ReconfigHandle::post`]; actors compare it against
    /// their last-seen value once per batch — the whole steady-state cost
    /// of having the layer armed.
    pub(crate) generation: AtomicU64,
    /// Ops posted but not yet pulled by their actor, keyed by actor id.
    pub(crate) pending: Mutex<HashMap<usize, Vec<ReconfigOp>>>,
    /// Extraction requests awaiting their old owner: handoff id → moving
    /// keys. Inserted by the emitter at swap time, consumed by the old
    /// owner when the in-band [`Envelope::Handoff`](crate::mailbox::Envelope)
    /// token reaches it.
    pub(crate) extract_requests: Mutex<HashMap<u64, Vec<u64>>>,
    /// Published key-state handoffs awaiting their new owner. A handoff
    /// stays in the map until the new owner has *checkpointed* the merged
    /// state, so a supervised restart between merge and next barrier can
    /// re-inject it (checkpoint epoch vs reconfiguration epoch ordering).
    pub(crate) handoffs: Mutex<HashMap<u64, StateSnapshot>>,
    /// Route swaps fully applied (paused tuples released), across all
    /// actors — the observable completion signal for controllers/tests.
    pub(crate) applied: AtomicU64,
    /// Key-state handoffs merged into their new owner.
    pub(crate) migrated: AtomicU64,
}

/// Controller-facing handle for posting live migrations into a running
/// engine. Install one via [`crate::EngineConfig::reconfig`]; keep a clone
/// to post ops while [`crate::run`] blocks.
#[derive(Debug, Clone, Default)]
pub struct ReconfigHandle {
    pub(crate) shared: Arc<ReconfigShared>,
}

impl ReconfigHandle {
    /// Creates a fresh, unposted handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts one batch of migration ops (`(actor id, op)` pairs) and bumps
    /// the generation so actors pull them on their next batch. Ops gated
    /// on an epoch the run never reaches are dropped at shutdown — watch
    /// [`applied`](Self::applied) to confirm completion.
    pub fn post(&self, ops: Vec<(usize, ReconfigOp)>) {
        let mut pending = self
            .shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for (actor, op) in ops {
            pending.entry(actor).or_default().push(op);
        }
        drop(pending);
        self.shared.generation.fetch_add(1, Ordering::Release);
    }

    /// Route swaps fully applied so far (pause buffers released).
    pub fn applied(&self) -> u64 {
        self.shared.applied.load(Ordering::Acquire)
    }

    /// Key-state handoffs merged into their new owners so far.
    pub fn migrated(&self) -> u64 {
        self.shared.migrated.load(Ordering::Acquire)
    }
}

/// Per-actor reconfiguration state, present only when a handle is
/// installed.
pub(crate) struct ReconfigTaskState {
    pub(crate) shared: Arc<ReconfigShared>,
    /// Last generation pulled from the shared state.
    pub(crate) seen_generation: u64,
    /// Ops pulled but not yet applied (awaiting their epoch barrier).
    pub(crate) staged: Vec<ReconfigOp>,
    /// Active pause set (emitter mid-migration): tuples with these keys on
    /// port 0 are buffered instead of routed.
    pub(crate) pause_keys: Vec<u64>,
    /// Tuples held while the pause set is active, in arrival order.
    pub(crate) paused: Vec<spinstreams_core::Tuple>,
    /// Handoffs the emitter is waiting on before releasing `paused`.
    pub(crate) expect_handoffs: Vec<(u64, usize)>,
    /// Route swaps whose `applied` bump is deferred until their paused
    /// tuples are released.
    pub(crate) pending_release: u64,
    /// Handoffs merged by *this* actor since its last snapshot: kept so a
    /// supervised restart before the next barrier can re-inject them (the
    /// restored snapshot predates the merge and the replay log only holds
    /// data tuples).
    pub(crate) merged_since_snapshot: Vec<u64>,
    /// Keys extracted by *this* actor since its last snapshot, by handoff:
    /// a restart restores pre-extraction state, so recovery re-drops them
    /// after replay (their published copy is authoritative; stale local
    /// state would double-emit at flush).
    pub(crate) extracted_since_snapshot: Vec<(u64, Vec<u64>)>,
}

impl ReconfigTaskState {
    pub(crate) fn new(shared: Arc<ReconfigShared>) -> Self {
        ReconfigTaskState {
            shared,
            seen_generation: 0,
            staged: Vec::new(),
            pause_keys: Vec::new(),
            paused: Vec::new(),
            expect_handoffs: Vec::new(),
            pending_release: 0,
            merged_since_snapshot: Vec::new(),
            extracted_since_snapshot: Vec::new(),
        }
    }

    /// True when the generation counter moved past what this actor has
    /// already pulled — the once-per-batch fast check.
    #[inline]
    pub(crate) fn outdated(&self) -> bool {
        self.shared.generation.load(Ordering::Acquire) != self.seen_generation
    }

    /// Pulls this actor's pending ops into the staged list.
    pub(crate) fn pull(&mut self, actor: usize) {
        self.seen_generation = self.shared.generation.load(Ordering::Acquire);
        let mut pending = self
            .shared
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(ops) = pending.remove(&actor) {
            self.staged.extend(ops);
        }
    }

    /// True once every expected handoff has been published.
    pub(crate) fn handoffs_ready(&self) -> bool {
        if self.expect_handoffs.is_empty() {
            return true;
        }
        let map = self
            .shared
            .handoffs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.expect_handoffs
            .iter()
            .all(|(id, _)| map.contains_key(id))
    }
}
